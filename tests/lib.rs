//! Shared fixtures for the V2V integration tests (see `tests/tests/`).

use v2v_container::VideoStream;
use v2v_frame::{marker, Frame, FrameType};
use v2v_time::{r, Rational};

/// A lossless gray stream whose frames carry index markers.
pub fn marked_stream(n: usize, gop: u32) -> VideoStream {
    let ty = FrameType::gray8(64, 32);
    let params = v2v_codec::CodecParams::new(ty, gop, 0);
    let mut w = v2v_container::StreamWriter::new(params, Rational::ZERO, r(1, 30));
    for i in 0..n {
        let mut f = Frame::black(ty);
        marker::embed(&mut f, i as u32);
        w.push_frame(&f).unwrap();
    }
    w.finish().unwrap()
}

/// Output settings matching [`marked_stream`] so copies stay legal.
pub fn marked_output() -> v2v_spec::OutputSettings {
    v2v_spec::OutputSettings {
        frame_ty: FrameType::gray8(64, 32),
        frame_dur: r(1, 30),
        gop_size: 30,
        quantizer: 0,
    }
}

/// Reads the marker of every decoded frame.
pub fn markers_of(stream: &VideoStream) -> Vec<Option<u32>> {
    let (frames, _) = stream.decode_range(0, stream.len()).unwrap();
    frames.iter().map(marker::read).collect()
}
