//! Acceptance tests for multi-query work sharing: daemon-level
//! single-flight coalescing of identical requests, engine-level
//! exactly-once rendering of overlapping segments across concurrent
//! queries, and byte-identity of every shared response against
//! unshared direct runs.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};
use v2v_container::svc_to_bytes;
use v2v_core::{EngineConfig, V2vEngine};
use v2v_exec::{Catalog, FragmentFlight, RenderCache};
use v2v_integration_tests::{marked_output, marked_stream};
use v2v_serve::http::client;
use v2v_serve::{ServeConfig, V2vServer};
use v2v_spec::builder::blur;
use v2v_spec::{OutputSettings, Spec, SpecBuilder};
use v2v_time::{r, Rational};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("v2v_work_share_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A big-frame stream: renders over it are slow enough (hundreds of
/// milliseconds) to hold the daemon's single admission slot while the
/// test orchestrates the coalescing cohort behind it.
fn big_stream(frames: usize) -> v2v_container::VideoStream {
    let ty = v2v_frame::FrameType::gray8(128, 128);
    let params = v2v_codec::CodecParams::new(ty, 30, 0);
    let mut w = v2v_container::StreamWriter::new(params, Rational::ZERO, r(1, 30));
    for i in 0..frames {
        let mut f = v2v_frame::Frame::black(ty);
        v2v_frame::marker::embed(&mut f, i as u32);
        w.push_frame(&f).unwrap();
    }
    w.finish().unwrap()
}

fn big_output() -> OutputSettings {
    OutputSettings {
        frame_ty: v2v_frame::FrameType::gray8(128, 128),
        frame_dur: r(1, 30),
        gop_size: 30,
        quantizer: 0,
    }
}

fn daemon_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_video("src", marked_stream(300, 30));
    c.add_video("big", big_stream(600));
    c
}

/// The slow blocker: a 20 s blur over the big source.
fn blocker_spec() -> Spec {
    SpecBuilder::new(big_output())
        .video("big", "big.svc")
        .append_filtered("big", r(0, 1), Rational::from_int(20), |e| blur(e, 1.0))
        .build()
}

/// The coalescing target: a quick 1 s blur over the small source.
fn target_spec() -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(0, 1), Rational::from_int(1), |e| blur(e, 1.0))
        .build()
}

fn status(addr: std::net::SocketAddr) -> serde_json::Value {
    let resp = client::request(addr, "GET", "/status", b"").expect("status");
    serde_json::from_slice(&resp.body).expect("status json")
}

fn status_u64(v: &serde_json::Value, path: &[&str]) -> u64 {
    path.iter()
        .try_fold(v, |node, key| node.get(key))
        .and_then(|x| x.as_u64())
        .unwrap_or_else(|| panic!("status missing {path:?}: {v:?}"))
}

/// Polls `/status` until `pred` holds (10 s timeout).
fn wait_for(
    addr: std::net::SocketAddr,
    what: &str,
    pred: impl Fn(&serde_json::Value) -> bool,
) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let v = status(addr);
        if pred(&v) {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last status: {v}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// K identical requests against a busy single-slot daemon: exactly one
/// of them renders; the rest coalesce into the in-flight render and
/// receive byte-identical responses marked with `inflight_hits`.
#[test]
fn identical_inflight_requests_render_exactly_once() {
    const FOLLOWERS: usize = 3;
    let config = ServeConfig {
        max_concurrent: 1,
        queue_depth: 16,
        ..Default::default()
    };
    let mut handle = V2vServer::new(daemon_catalog())
        .with_config(config)
        .start("127.0.0.1:0")
        .unwrap();
    let addr = handle.addr();

    // Ground truth: an unshared direct run of the target query.
    let mut direct = V2vEngine::new(daemon_catalog());
    let expect = svc_to_bytes(&direct.run(&target_spec()).expect("direct run").output).unwrap();

    // Occupy the only admission slot with the slow blocker, then post
    // the identical cohort. The cohort's leader registers its plan
    // fingerprint *before* queueing at the gate, so every duplicate
    // coalesces while the blocker still renders — none of this is
    // timing-sensitive as long as the blocker outlives the (ms-scale)
    // cohort setup, and the explicit waits below pin each step.
    let blocker = {
        let spec = blocker_spec().to_json();
        std::thread::spawn(move || client::post_query(addr, spec.as_bytes()).unwrap())
    };
    wait_for(addr, "blocker admitted", |v| {
        status_u64(v, &["active"]) == 1
    });

    let cohort: Vec<_> = (0..=FOLLOWERS)
        .map(|_| {
            let spec = target_spec().to_json();
            std::thread::spawn(move || client::post_query(addr, spec.as_bytes()).unwrap())
        })
        .collect();
    // All duplicates parked on the leader's flight: the coalescing is
    // now a fact, not a race.
    wait_for(addr, "cohort coalesced", |v| {
        status_u64(v, &["sharing", "waiting"]) == FOLLOWERS as u64
    });

    let mut leaders = 0;
    let mut followers = 0;
    for h in cohort {
        let resp = h.join().unwrap();
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        assert_eq!(resp.body, expect, "shared response must match direct run");
        let stats: serde_json::Value =
            serde_json::from_str(resp.header_value("x-v2v-stats").unwrap()).unwrap();
        let inflight_hits = status_u64(&stats, &["cache", "inflight_hits"]);
        let encoded = status_u64(&stats, &["frames_encoded"]);
        if inflight_hits == 0 {
            leaders += 1;
            assert_eq!(encoded, 30, "the one leader renders the full result");
        } else {
            followers += 1;
            assert_eq!(inflight_hits, 1);
            assert_eq!(encoded, 0, "followers must not render");
        }
    }
    assert_eq!((leaders, followers), (1, FOLLOWERS));
    assert_eq!(blocker.join().unwrap().status, 200);

    let v = status(addr);
    assert_eq!(
        status_u64(&v, &["sharing", "inflight_hits"]),
        FOLLOWERS as u64
    );
    assert_eq!(
        status_u64(&v, &["sharing", "inflight"]),
        0,
        "flights drained"
    );
    let (done, failed, rejected) = handle.job_counts();
    assert_eq!(
        (done, failed, rejected),
        (2 + FOLLOWERS as u64, 0, 0),
        "every coalesced request counts as completed"
    );
    handle.stop();
}

/// Clip `i` (one second, GOP-aligned) of the small source, blurred.
fn clip_query(clips: &[i64]) -> Spec {
    let mut b = SpecBuilder::new(marked_output()).video("src", "src.svc");
    for &clip in clips {
        b = b.append_filtered("src", r(clip, 1), r(1, 1), |e| blur(e, 1.0));
    }
    b.build()
}

fn shared_engine(
    cache: &Arc<RenderCache>,
    flight: &Arc<FragmentFlight>,
    threads: usize,
) -> V2vEngine {
    let mut config = EngineConfig {
        render_cache: Some(Arc::clone(cache)),
        work_share: Some(Arc::clone(flight)),
        ..EngineConfig::default()
    };
    config.exec.num_threads = threads;
    let mut c = Catalog::new();
    c.add_video("src", marked_stream(300, 30));
    V2vEngine::new(c).with_config(config)
}

fn direct_bytes(spec: &Spec) -> Vec<u8> {
    let mut c = Catalog::new();
    c.add_video("src", marked_stream(300, 30));
    let report = V2vEngine::new(c).run(spec).expect("direct run");
    svc_to_bytes(&report.output).unwrap()
}

/// Two overlapping queries run concurrently against a shared cache and
/// fragment flight, across executor thread counts: each unique segment
/// is rendered exactly once (summed `frames_encoded` equals the unique
/// frame count), and both outputs are byte-identical to unshared
/// direct runs.
#[test]
fn overlapping_queries_render_shared_segments_once() {
    // A covers clips {0,1}, B covers {1,2}: 3 unique one-second clips.
    let spec_a = clip_query(&[0, 1]);
    let spec_b = clip_query(&[1, 2]);
    let expect_a = direct_bytes(&spec_a);
    let expect_b = direct_bytes(&spec_b);

    for threads in [1usize, 2, 8] {
        let dir = temp_dir(&format!("overlap_{threads}"));
        let cache = Arc::new(RenderCache::open(&dir, 1 << 30).unwrap());
        let flight = Arc::new(FragmentFlight::new());
        let barrier = Arc::new(Barrier::new(2));
        let run = |spec: Spec| {
            let cache = Arc::clone(&cache);
            let flight = Arc::clone(&flight);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut engine = shared_engine(&cache, &flight, threads);
                barrier.wait();
                engine.run(&spec).expect("shared run")
            })
        };
        let (ha, hb) = (run(spec_a.clone()), run(spec_b.clone()));
        let (ra, rb) = (ha.join().unwrap(), hb.join().unwrap());

        assert_eq!(
            svc_to_bytes(&ra.output).unwrap(),
            expect_a,
            "threads={threads}: A must match its direct run"
        );
        assert_eq!(
            svc_to_bytes(&rb.output).unwrap(),
            expect_b,
            "threads={threads}: B must match its direct run"
        );
        // 3 unique clips × 30 frames: any duplicated render would push
        // the combined encode count past 90.
        assert_eq!(
            ra.stats.frames_encoded + rb.stats.frames_encoded,
            90,
            "threads={threads}: each shared segment renders exactly once"
        );
        let reuse = ra.stats.cache.shared_segment_hits
            + rb.stats.cache.shared_segment_hits
            + ra.stats.cache.segment_hits
            + rb.stats.cache.segment_hits;
        assert!(
            reuse >= 1,
            "threads={threads}: the common clip must be reused via some tier"
        );
        assert_eq!(flight.inflight(), 0, "threads={threads}: flights drained");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Eight engines race the *same* two-segment query over a shared cache
/// and flight: across all eight runs each segment is rendered exactly
/// once, whichever engine happens to own it, and every output is
/// byte-identical.
#[test]
fn identical_engine_runs_share_exactly_one_render() {
    const ENGINES: usize = 8;
    let spec = clip_query(&[4, 5]);
    let expect = direct_bytes(&spec);

    let dir = temp_dir("contend");
    let cache = Arc::new(RenderCache::open(&dir, 1 << 30).unwrap());
    let flight = Arc::new(FragmentFlight::new());
    let barrier = Arc::new(Barrier::new(ENGINES));
    let handles: Vec<_> = (0..ENGINES)
        .map(|_| {
            let cache = Arc::clone(&cache);
            let flight = Arc::clone(&flight);
            let barrier = Arc::clone(&barrier);
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut engine = shared_engine(&cache, &flight, 2);
                barrier.wait();
                engine.run(&spec).expect("contended run")
            })
        })
        .collect();

    let mut total_encoded = 0;
    for h in handles {
        let report = h.join().unwrap();
        assert_eq!(svc_to_bytes(&report.output).unwrap(), expect);
        total_encoded += report.stats.frames_encoded;
    }
    // 2 unique clips × 30 frames, rendered once across all 8 runs; the
    // other seven runs were fed by the flight, the disk tier, or the
    // whole-result cache.
    assert_eq!(total_encoded, 60, "work done exactly once across engines");
    assert_eq!(flight.inflight(), 0, "flights drained");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The single-flight *error* fan-out audit: a leader that fails after
/// followers attach must hand every follower the taxonomy-mapped
/// status — here a mid-render corrupt packet becomes 422
/// `corrupt_data` for the whole cohort, never a generic 500.
#[test]
fn leader_render_error_fans_out_with_its_taxonomy_status() {
    const FOLLOWERS: usize = 4;
    let config = ServeConfig {
        max_concurrent: 1,
        queue_depth: 16,
        ..Default::default()
    };
    // Packet 10 of "src" carries an invalid packet-kind byte: planning
    // and fingerprinting succeed (they only hash bytes), so the cohort
    // coalesces normally — but the leader's decode of frame 10 fails
    // with CorruptData only after it is admitted, i.e. after the
    // followers are already parked on its flight. (A FaultInjector
    // cannot stage this: arming one deliberately disables plan
    // fingerprints, and with them the single-flight tier under test.)
    let catalog = {
        let mut c = Catalog::new();
        let s = marked_stream(300, 30);
        let mut packets = s.packets().to_vec();
        let mut data = packets[10].data.to_vec();
        data[0] = 0xFF;
        packets[10].data = bytes::Bytes::from(data);
        c.add_video(
            "src",
            v2v_container::VideoStream::new(*s.params(), s.start(), s.frame_dur(), packets)
                .unwrap(),
        );
        c.add_video("big", big_stream(600));
        c
    };
    let mut handle = V2vServer::new(catalog)
        .with_config(config)
        .start("127.0.0.1:0")
        .unwrap();
    let addr = handle.addr();

    // Occupy the only admission slot (the blocker reads "big", which
    // the injector ignores), then post the doomed identical cohort.
    let blocker = {
        let spec = blocker_spec().to_json();
        std::thread::spawn(move || client::post_query(addr, spec.as_bytes()).unwrap())
    };
    wait_for(addr, "blocker admitted", |v| {
        status_u64(v, &["active"]) == 1
    });

    let cohort: Vec<_> = (0..=FOLLOWERS)
        .map(|_| {
            let spec = target_spec().to_json();
            std::thread::spawn(move || client::post_query(addr, spec.as_bytes()).unwrap())
        })
        .collect();
    wait_for(addr, "cohort coalesced", |v| {
        status_u64(v, &["sharing", "waiting"]) == FOLLOWERS as u64
    });

    for h in cohort {
        let resp = h.join().unwrap();
        assert_eq!(
            resp.status,
            422,
            "every cohort member gets the mapped status: {}",
            String::from_utf8_lossy(&resp.body)
        );
        let body: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(
            body.get("error")
                .and_then(|e| e.get("kind"))
                .and_then(|k| k.as_str()),
            Some("corrupt_data"),
            "kind must survive the fan-out: {body}"
        );
    }
    assert_eq!(blocker.join().unwrap().status, 200, "blocker unaffected");

    let v = status(addr);
    assert_eq!(
        status_u64(&v, &["sharing", "inflight_hits"]),
        FOLLOWERS as u64,
        "the error was shared, not re-rendered: {v}"
    );
    assert_eq!(status_u64(&v, &["sharing", "inflight"]), 0, "drained: {v}");
    let (done, failed, _) = handle.job_counts();
    assert_eq!(done, 1, "only the blocker succeeded");
    assert_eq!(failed, 1 + FOLLOWERS as u64, "whole cohort counted failed");
    handle.stop();
}
