//! The closed query algebra (paper §I): a synthesis result is itself a
//! video, so it can feed further queries. Also covers the engine-level
//! streaming entry point.

use v2v_core::V2vEngine;
use v2v_exec::Catalog;
use v2v_integration_tests::{marked_output, marked_stream, markers_of};
use v2v_spec::builder::grayscale;
use v2v_spec::SpecBuilder;
use v2v_time::{r, Rational};

#[test]
fn output_of_one_query_feeds_the_next() {
    let mut catalog = Catalog::new();
    catalog.add_video("src", marked_stream(300, 30));
    let mut engine = V2vEngine::new(catalog);

    // Stage 1: a supercut of two segments.
    let stage1 = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(1, 1), Rational::from_int(2))
        .append_clip("src", r(6, 1), Rational::from_int(2))
        .build();
    let r1 = engine.run_into_catalog("stage1", &stage1).unwrap();
    assert_eq!(r1.output.len(), 120);

    // Stage 2: clip the middle of stage 1 — a compound query over the
    // synthesized result.
    let stage2 = SpecBuilder::new(marked_output())
        .video("stage1", "catalog")
        .append_clip("stage1", r(1, 1), Rational::from_int(2))
        .build();
    let r2 = engine.run(&stage2).unwrap();
    assert_eq!(r2.output.len(), 60);
    // Stage 1 frame 30.. = src 30+30; stage 1 frame 60.. = src 180.
    let markers = markers_of(&r2.output);
    assert_eq!(markers[0], Some(60), "stage1 frame 30 = src frame 60");
    assert_eq!(markers[29], Some(89));
    assert_eq!(markers[30], Some(180), "stage1 frame 60 = src frame 180");

    // Stage 2 over stage 1 can itself stream-copy: stage 1's output has
    // its own keyframes.
    assert!(r2.stats.packets_copied > 0 || r2.stats.frames_encoded > 0);
}

#[test]
fn algebra_composes_with_transforms() {
    let mut catalog = Catalog::new();
    catalog.add_video("src", marked_stream(150, 30));
    let mut engine = V2vEngine::new(catalog);

    let stage1 = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(0, 1), Rational::from_int(2), grayscale)
        .build();
    engine.run_into_catalog("gray", &stage1).unwrap();

    let stage2 = SpecBuilder::new(marked_output())
        .video("gray", "catalog")
        .append_clip("gray", r(0, 1), Rational::from_int(1))
        .build();
    let r2 = engine.run(&stage2).unwrap();
    // Markers pass through both stages intact (gray8 is chroma-free
    // already, so grayscale is pixel-preserving here).
    for (k, m) in markers_of(&r2.output).into_iter().enumerate() {
        assert_eq!(m, Some(k as u32), "frame {k}");
    }
}

#[test]
fn engine_streaming_matches_batch() {
    let mut catalog = Catalog::new();
    catalog.add_video("src", marked_stream(300, 30));
    let mut engine = V2vEngine::new(catalog);
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(1, 1), Rational::from_int(4))
        .append_filtered("src", r(6, 1), Rational::from_int(2), |e| {
            v2v_spec::builder::blur(e, 0.8)
        })
        .build();
    let mut first_keyframe = None;
    let (report, streaming) = engine
        .run_streaming(&spec, |p| {
            if first_keyframe.is_none() {
                first_keyframe = Some(p.keyframe);
            }
        })
        .unwrap();
    assert_eq!(first_keyframe, Some(true));
    assert!(streaming.time_to_first_packet <= streaming.total);
    let batch = engine.run(&spec).unwrap();
    assert_eq!(markers_of(&report.output), markers_of(&batch.output));
}
