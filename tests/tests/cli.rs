//! End-to-end CLI tests: drive the `v2v` binary over on-disk artifacts.
//!
//! Skips silently when the binary has not been built (e.g. `cargo test
//! -p v2v-integration-tests` without a prior workspace build).

use std::path::PathBuf;
use std::process::Command;
use v2v_integration_tests::{marked_output, marked_stream};
use v2v_spec::SpecBuilder;
use v2v_time::{r, Rational};

fn v2v_binary() -> Option<PathBuf> {
    // target/{debug,release}/v2v next to this test binary's directory.
    let mut dir = std::env::current_exe().ok()?;
    dir.pop(); // test binary name
    if dir.ends_with("deps") {
        dir.pop();
    }
    let candidate = dir.join("v2v");
    candidate.exists().then_some(candidate)
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join("v2v_cli_tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Writes a video + a spec referencing it by absolute path; returns the
/// spec path and expected frame count.
fn fixture(tag: &str) -> (PathBuf, usize) {
    let dir = workdir();
    let video_path = dir.join(format!("{tag}_src.svc"));
    v2v_container::write_svc(&marked_stream(120, 30), &video_path).unwrap();
    let spec = SpecBuilder::new(marked_output())
        .video("src", video_path.to_string_lossy())
        .append_clip("src", r(1, 1), Rational::from_int(2))
        .build();
    let spec_path = dir.join(format!("{tag}_spec.json"));
    std::fs::write(&spec_path, spec.to_json()).unwrap();
    (spec_path, 60)
}

#[test]
fn cli_run_and_info() {
    let Some(bin) = v2v_binary() else {
        eprintln!("skipping: v2v binary not built");
        return;
    };
    let (spec_path, frames) = fixture("run");
    let out_path = workdir().join("run_out.svc");
    let output = Command::new(&bin)
        .args([
            "run",
            spec_path.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn v2v run");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains(&format!("{frames} frames")), "{stdout}");

    let result = v2v_container::read_svc(&out_path).unwrap();
    assert_eq!(result.len(), frames);

    let info = Command::new(&bin)
        .args(["info", out_path.to_str().unwrap()])
        .output()
        .expect("spawn v2v info");
    assert!(info.status.success());
    let text = String::from_utf8_lossy(&info.stdout);
    assert!(text.contains("frames     : 60"), "{text}");
}

#[test]
fn cli_explain_and_check() {
    let Some(bin) = v2v_binary() else {
        eprintln!("skipping: v2v binary not built");
        return;
    };
    let (spec_path, _) = fixture("explain");
    let explain = Command::new(&bin)
        .args(["explain", spec_path.to_str().unwrap()])
        .output()
        .expect("spawn v2v explain");
    assert!(explain.status.success());
    let text = String::from_utf8_lossy(&explain.stdout);
    assert!(text.contains("unoptimized logical plan"), "{text}");
    assert!(
        text.contains("StreamCopy") || text.contains("Render"),
        "{text}"
    );

    let check = Command::new(&bin)
        .args(["check", spec_path.to_str().unwrap()])
        .output()
        .expect("spawn v2v check");
    assert!(check.status.success());
    assert!(String::from_utf8_lossy(&check.stdout).contains("spec OK"));
}

#[test]
fn cli_rejects_bad_input() {
    let Some(bin) = v2v_binary() else {
        eprintln!("skipping: v2v binary not built");
        return;
    };
    let bad = Command::new(&bin)
        .args(["run", "/nonexistent/spec.json"])
        .output()
        .expect("spawn v2v run");
    assert!(!bad.status.success());

    let nonsense = Command::new(&bin)
        .args(["frobnicate"])
        .output()
        .expect("spawn v2v");
    assert!(!nonsense.status.success());
}

#[test]
fn cli_run_with_sql_database() {
    let Some(bin) = v2v_binary() else {
        eprintln!("skipping: v2v binary not built");
        return;
    };
    let dir = workdir();
    let video_path = dir.join("db_src.svc");
    v2v_container::write_svc(&marked_stream(120, 30), &video_path).unwrap();

    // Detection table: boxes only in the first half-second.
    let rows: Vec<serde_json::Value> = (0..60)
        .map(|i| {
            let boxes = if i < 15 {
                serde_json::json!([{"x": 0.3, "y": 0.6, "w": 0.2, "h": 0.2, "label": "zebra"}])
            } else {
                serde_json::json!([])
            };
            serde_json::json!(["cam", "yolov5m", [i, 30], boxes])
        })
        .collect();
    let db = serde_json::json!({
        "tables": [{
            "name": "video_objects",
            "columns": ["video", "model", "timestamp", "frame_objects"],
            "rows": rows,
        }]
    });
    let db_path = dir.join("tables.json");
    std::fs::write(&db_path, serde_json::to_string(&db).unwrap()).unwrap();

    let spec = SpecBuilder::new(marked_output())
        .video("src", video_path.to_string_lossy())
        .data_array(
            "dets",
            "sql:SELECT timestamp, frame_objects FROM video_objects WHERE video = 'cam'",
        )
        .append_filtered("src", r(0, 1), Rational::from_int(2), |e| {
            v2v_spec::builder::bounding_box(e, "dets")
        })
        .build();
    let spec_path = dir.join("db_spec.json");
    std::fs::write(&spec_path, spec.to_json()).unwrap();

    let out_path = dir.join("db_out.svc");
    let output = Command::new(&bin)
        .args([
            "run",
            spec_path.to_str().unwrap(),
            "--db",
            db_path.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn v2v run --db");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("dde rewrites 1"), "{stdout}");
    let result = v2v_container::read_svc(&out_path).unwrap();
    assert_eq!(result.len(), 60);

    // Without --db, the sql: locator cannot bind.
    let no_db = Command::new(&bin)
        .args(["run", spec_path.to_str().unwrap()])
        .output()
        .expect("spawn v2v run");
    assert!(!no_db.status.success());
}

#[test]
fn cli_inspect_reports_gop_layout() {
    let Some(bin) = v2v_binary() else {
        eprintln!("skipping: v2v binary not built");
        return;
    };
    let dir = workdir();
    let video_path = dir.join("inspect_src.svc");
    v2v_container::write_svc(&marked_stream(120, 30), &video_path).unwrap();
    let output = Command::new(&bin)
        .args(["inspect", video_path.to_str().unwrap()])
        .output()
        .expect("spawn v2v inspect");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = String::from_utf8_lossy(&output.stdout);
    assert!(text.contains("frames     : 120"), "{text}");
    assert!(text.contains("gops       : 4"), "{text}");
    assert!(text.contains("min 30 / mean 30.0 / max 30"), "{text}");
    assert!(text.contains("sealed     : yes"), "{text}");
}

/// Offline store lifecycle through the binary: materialize, ls, then a
/// `run --store --variant dense` that is byte-identical to a storeless
/// run of the same spec.
#[test]
fn cli_store_materialize_ls_drop_and_run_with_variants() {
    let Some(bin) = v2v_binary() else {
        eprintln!("skipping: v2v binary not built");
        return;
    };
    let dir = workdir();
    let store_dir = dir.join("cli_store");
    let _ = std::fs::remove_dir_all(&store_dir);
    let video_path = dir.join("store_src.svc");
    // Long-GOP source: the shape dense variants exist for.
    v2v_container::write_svc(&marked_stream(300, 300), &video_path).unwrap();

    let mat = Command::new(&bin)
        .args([
            "store",
            "materialize",
            "src",
            video_path.to_str().unwrap(),
            "dense",
            "--store",
            store_dir.to_str().unwrap(),
        ])
        .output()
        .expect("spawn v2v store materialize");
    assert!(
        mat.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&mat.stderr)
    );
    assert!(String::from_utf8_lossy(&mat.stdout).contains("materialized src@dense"));

    let ls = Command::new(&bin)
        .args(["store", "ls", "--store", store_dir.to_str().unwrap()])
        .output()
        .expect("spawn v2v store ls");
    assert!(ls.status.success());
    let text = String::from_utf8_lossy(&ls.stdout);
    assert!(text.contains("dense"), "{text}");
    assert!(text.contains("300 frames"), "{text}");

    // A mid-GOP filtered spec over the source.
    let spec = SpecBuilder::new(marked_output())
        .video("src", video_path.to_string_lossy())
        .append_filtered("src", r(3, 1), r(1, 1), |e| v2v_spec::builder::blur(e, 1.0))
        .build();
    let spec_path = dir.join("store_spec.json");
    std::fs::write(&spec_path, spec.to_json()).unwrap();

    let plain_out = dir.join("store_plain.svc");
    let plain = Command::new(&bin)
        .args([
            "run",
            spec_path.to_str().unwrap(),
            "-o",
            plain_out.to_str().unwrap(),
        ])
        .output()
        .expect("spawn v2v run");
    assert!(plain.status.success());

    let variant_out = dir.join("store_variant.svc");
    let with_store = Command::new(&bin)
        .args([
            "run",
            spec_path.to_str().unwrap(),
            "-o",
            variant_out.to_str().unwrap(),
            "--store",
            store_dir.to_str().unwrap(),
            "--variant",
            "dense",
        ])
        .output()
        .expect("spawn v2v run --store");
    assert!(
        with_store.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&with_store.stderr)
    );
    assert!(
        String::from_utf8_lossy(&with_store.stdout).contains("attached 1 variant(s)"),
        "{}",
        String::from_utf8_lossy(&with_store.stdout)
    );
    assert_eq!(
        std::fs::read(&plain_out).unwrap(),
        std::fs::read(&variant_out).unwrap(),
        "variant-served run must be byte-identical"
    );

    let drop = Command::new(&bin)
        .args([
            "store",
            "drop",
            "src",
            "dense",
            "--store",
            store_dir.to_str().unwrap(),
        ])
        .output()
        .expect("spawn v2v store drop");
    assert!(drop.status.success());
    assert!(String::from_utf8_lossy(&drop.stdout).contains("dropped src@dense"));
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn cli_frame_export() {
    let Some(bin) = v2v_binary() else {
        eprintln!("skipping: v2v binary not built");
        return;
    };
    let dir = workdir();
    let video_path = dir.join("frame_src.svc");
    v2v_container::write_svc(&marked_stream(60, 30), &video_path).unwrap();
    let still = dir.join("still.ppm");
    let output = Command::new(&bin)
        .args([
            "frame",
            video_path.to_str().unwrap(),
            "7/30",
            "-o",
            still.to_str().unwrap(),
        ])
        .output()
        .expect("spawn v2v frame");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let img = v2v_frame::ppm::read_ppm(&still).unwrap();
    assert_eq!((img.width(), img.height()), (64, 32));
    // The exported still shows source frame 7.
    assert_eq!(v2v_frame::marker::read(&img.to_yuv420p()), Some(7));
    // Off-grid timestamps error.
    let bad = Command::new(&bin)
        .args(["frame", video_path.to_str().unwrap(), "1/7"])
        .output()
        .expect("spawn v2v frame");
    assert!(!bad.status.success());
}
