//! Engine-level acceptance tests for the persistent render cache: a
//! repeated query is a zero-decode whole-result hit, an overlapping
//! query splices shared segments, corrupt entries are evicted and
//! transparently re-rendered, and the byte budget is enforced with
//! run-visible evictions.

use std::sync::Arc;
use v2v_container::svc_to_bytes;
use v2v_core::{EngineConfig, V2vEngine};
use v2v_exec::{Catalog, RenderCache};
use v2v_integration_tests::{marked_output, marked_stream};
use v2v_spec::builder::blur;
use v2v_spec::{Spec, SpecBuilder};
use v2v_time::{r, Rational};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("v2v_cache_accept_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_video("src", marked_stream(300, 30));
    c
}

fn engine_with_cache(cache: &Arc<RenderCache>) -> V2vEngine {
    let config = EngineConfig {
        render_cache: Some(Arc::clone(cache)),
        ..EngineConfig::default()
    };
    V2vEngine::new(catalog()).with_config(config)
}

/// A render-heavy query: a 4 s blur (sharded across GOPs) plus a
/// stream-copied clip.
fn filtered_spec() -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(0, 1), Rational::from_int(4), |e| blur(e, 1.0))
        .append_clip("src", r(6, 1), Rational::from_int(1))
        .build()
}

/// Overlaps [`filtered_spec`]: the same blur segment, but shifted to a
/// different output position behind a new leading clip. Distinct plan
/// fingerprint, shared segment keys.
fn overlapping_spec() -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(8, 1), Rational::from_int(1))
        .append_filtered("src", r(0, 1), Rational::from_int(4), |e| blur(e, 1.0))
        .build()
}

#[test]
fn repeat_query_is_a_zero_decode_result_hit() {
    let dir = temp_dir("repeat");
    let cache = Arc::new(RenderCache::open(&dir, 1 << 30).unwrap());
    let mut engine = engine_with_cache(&cache);
    let spec = filtered_spec();

    let cold = engine.run(&spec).expect("cold run");
    assert_eq!(cold.stats.cache.result_hits, 0);
    assert!(cold.stats.bytes_decoded > 0, "cold run must decode");

    let warm = engine.run(&spec).expect("warm run");
    assert_eq!(warm.stats.cache.result_hits, 1);
    assert_eq!(warm.stats.bytes_decoded, 0, "repeat must not decode");
    assert_eq!(warm.stats.frames_encoded, 0, "repeat must not encode");
    assert!(warm.stats.cache.bytes_reused > 0);
    assert_eq!(
        svc_to_bytes(&warm.output).unwrap(),
        svc_to_bytes(&cold.output).unwrap(),
        "cached result must be byte-identical"
    );

    // The entry survives a reopen (simulated process restart).
    drop(engine);
    drop(cache);
    let cache = Arc::new(RenderCache::open(&dir, 1 << 30).unwrap());
    let mut engine = engine_with_cache(&cache);
    let reopened = engine.run(&spec).expect("run after reopen");
    assert_eq!(reopened.stats.cache.result_hits, 1);
    assert_eq!(reopened.stats.bytes_decoded, 0);
    assert_eq!(
        svc_to_bytes(&reopened.output).unwrap(),
        svc_to_bytes(&cold.output).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overlapping_query_splices_shared_segments() {
    let dir = temp_dir("overlap");
    let cache = Arc::new(RenderCache::open(&dir, 1 << 30).unwrap());
    let mut engine = engine_with_cache(&cache);

    // Warm the segment cache with the first query.
    engine.run(&filtered_spec()).expect("first query");

    // The overlapping query has a different fingerprint (no result
    // hit) but shares the rendered blur segments.
    let warm = engine.run(&overlapping_spec()).expect("overlapping query");
    assert_eq!(warm.stats.cache.result_hits, 0);
    assert!(
        warm.stats.cache.segment_hits > 0,
        "shared segments must come from the cache: {:?}",
        warm.stats.cache
    );
    assert!(warm.stats.cache.bytes_reused > 0);

    // Reuse must not change a single byte: compare against a cacheless
    // engine running the same query.
    let cold = V2vEngine::new(catalog())
        .run(&overlapping_spec())
        .expect("cacheless run");
    assert_eq!(
        svc_to_bytes(&warm.output).unwrap(),
        svc_to_bytes(&cold.output).unwrap(),
        "spliced output must be byte-identical to a fresh render"
    );
    assert!(
        warm.stats.bytes_decoded < cold.stats.bytes_decoded,
        "reuse must shrink decode work ({} vs {})",
        warm.stats.bytes_decoded,
        cold.stats.bytes_decoded
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_result_entry_is_evicted_and_rerendered() {
    let dir = temp_dir("corrupt");
    let cache = Arc::new(RenderCache::open(&dir, 1 << 30).unwrap());
    let mut engine = engine_with_cache(&cache);
    let spec = filtered_spec();

    let cold = engine.run(&spec).expect("cold run");
    let baseline = svc_to_bytes(&cold.output).unwrap();

    // Flip a byte in the stored whole-result entry's packet table.
    let result_file = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("res-"))
        })
        .expect("whole-result entry on disk");
    let mut bytes = std::fs::read(&result_file).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    std::fs::write(&result_file, &bytes).unwrap();

    // The corrupt entry must be evicted and the query transparently
    // re-rendered, byte-identical to the original.
    let evictions_before = cache.evictions();
    let rerun = engine.run(&spec).expect("run over corrupt entry");
    assert_eq!(rerun.stats.cache.result_hits, 0, "corrupt entry must miss");
    assert!(
        cache.evictions() > evictions_before,
        "corrupt entry evicted"
    );
    assert_eq!(svc_to_bytes(&rerun.output).unwrap(), baseline);
    // The re-render re-stored the slot: the file on disk is no longer
    // the corrupted bytes.
    assert_ne!(
        std::fs::read(&result_file).unwrap(),
        bytes,
        "entry replaced"
    );

    // The re-render repopulated the slot: the next run hits again.
    let warm = engine.run(&spec).expect("run after repair");
    assert_eq!(warm.stats.cache.result_hits, 1);
    assert_eq!(svc_to_bytes(&warm.output).unwrap(), baseline);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn byte_budget_forces_run_visible_evictions() {
    // Size the budget from a dry run so it holds one query's entries
    // with a little headroom but not two queries' worth.
    let probe_dir = temp_dir("budget_probe");
    let probe = Arc::new(RenderCache::open(&probe_dir, 1 << 30).unwrap());
    engine_with_cache(&probe).run(&filtered_spec()).unwrap();
    let one_query = probe.bytes_held();
    assert!(one_query > 0);
    drop(probe);
    let _ = std::fs::remove_dir_all(&probe_dir);

    let dir = temp_dir("budget");
    let budget = one_query + one_query / 2;
    let cache = Arc::new(RenderCache::open(&dir, budget).unwrap());
    let mut engine = engine_with_cache(&cache);
    engine.run(&filtered_spec()).expect("first query");

    // A second, distinct render-heavy query overflows the budget; its
    // stores evict the first query's entries mid-run.
    let second = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(4, 1), Rational::from_int(4), |e| blur(e, 2.0))
        .build();
    let report = engine.run(&second).expect("second query");
    assert!(
        report.stats.cache.evictions > 0,
        "budget pressure must surface as run-visible evictions: {:?}",
        report.stats.cache
    );
    assert!(cache.bytes_held() <= budget, "budget invariant holds");
    let _ = std::fs::remove_dir_all(&dir);
}
