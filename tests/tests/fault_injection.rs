//! The fault-injection matrix: degraded-mode execution under
//! deterministic faults.
//!
//! `ExecOptions::fault` injects I/O errors, corrupt packets, and
//! truncated reads at exact (video, source-frame) coordinates, so the
//! same fault fires identically whatever the scheduler does. This suite
//! pins the degraded-mode contract across `{serial, pipelined,
//! runtime-split} × {batch, streaming}`:
//!
//! * zero-fault runs with a non-default policy stay byte-identical to
//!   the clean serial baseline (the fault layer is free when unused);
//! * a transient fault plus retry budget recovers to byte-identical
//!   output, reported as a `recovered` entry;
//! * a persistent fault under `Abort` fails the run;
//! * under `SkipSegment` the run completes minus the faulted frames,
//!   with a structured error report naming the hole;
//! * under `SubstituteBlack` the run completes at full length with
//!   black frames in the hole.
//!
//! Under *active* faults with runtime splitting enabled, the failing
//! part's extent depends on where splits landed, so cross-arm byte
//! identity is only asserted for recovered (transient) runs and
//! zero-fault runs — skip/black holes are checked per-arm against the
//! plan's segment table instead.

use std::sync::Arc;
use v2v_container::VideoStream;
use v2v_exec::{
    execute, execute_streaming_with, execute_traced, Catalog, ErrorPolicy, ExecOptions,
    FaultInjector, FaultKind, SegmentFault,
};
use v2v_frame::{marker, Frame, FrameType};
use v2v_integration_tests::{marked_output, marked_stream};
use v2v_plan::{lower_spec, optimize, OptimizerConfig, PhysicalPlan};
use v2v_spec::builder::blur;
use v2v_spec::SpecBuilder;
use v2v_time::r;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_video("src", marked_stream(300, 30));
    c
}

/// copy(1s..3s) + blur(4s..6s) + copy(7s..8s): the middle render
/// segment decodes source frames 120..180, where faults are aimed.
fn plan(catalog: &Catalog) -> PhysicalPlan {
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(1, 1), r(2, 1))
        .append_filtered("src", r(4, 1), r(2, 1), |e| blur(e, 1.0))
        .append_clip("src", r(7, 1), r(1, 1))
        .build();
    let logical = lower_spec(&spec).unwrap();
    optimize(
        &logical,
        &catalog.plan_context(),
        &OptimizerConfig {
            // One render segment so fault extent is predictable.
            shard_min_frames: u64::MAX,
            ..Default::default()
        },
    )
    .unwrap()
}

/// A fault aimed at a source frame only the blur segment decodes.
const FAULTED_SOURCE_FRAME: u64 = 130;
/// The blur segment's place in the output.
const RENDER_OUT_START: usize = 60;
const RENDER_FRAMES: usize = 60;
const TOTAL_FRAMES: usize = 150;

/// The scheduler arms named by the acceptance matrix.
fn arms() -> Vec<(&'static str, ExecOptions)> {
    vec![
        (
            "serial",
            ExecOptions {
                parallel: false,
                ..Default::default()
            },
        ),
        (
            "pipelined",
            ExecOptions {
                runtime_split: false,
                num_threads: 4,
                ..Default::default()
            },
        ),
        (
            "split",
            ExecOptions {
                num_threads: 4,
                ..Default::default()
            },
        ),
    ]
}

fn baseline(plan: &PhysicalPlan, catalog: &Catalog) -> VideoStream {
    let (out, _, _) = execute(
        plan,
        catalog,
        &ExecOptions {
            parallel: false,
            ..Default::default()
        },
    )
    .unwrap();
    out
}

#[test]
fn zero_fault_runs_with_policies_stay_byte_identical() {
    let catalog = catalog();
    let plan = plan(&catalog);
    let clean = baseline(&plan, &catalog);
    for policy in [ErrorPolicy::SkipSegment, ErrorPolicy::SubstituteBlack] {
        for (arm, base) in arms() {
            // An injector with no rules: the hook is armed but silent.
            let opts = ExecOptions {
                fault: Some(Arc::new(FaultInjector::new())),
                on_error: policy,
                max_retries: 3,
                ..base
            };
            let label = format!("{policy:?}/{arm}");
            let (batch, trace, _) = execute_traced(&plan, &catalog, &opts).unwrap();
            assert_eq!(clean.packets(), batch.packets(), "batch/{label}");
            assert!(trace.errors.is_empty(), "batch/{label}: spurious faults");
            assert_eq!(trace.totals.faults_injected, 0, "batch/{label}");

            let (streamed, stats) = execute_streaming_with(&plan, &catalog, &opts, |_| {}).unwrap();
            assert_eq!(clean.packets(), streamed.packets(), "streaming/{label}");
            assert!(
                stats.errors.is_empty(),
                "streaming/{label}: spurious faults"
            );
        }
    }
}

#[test]
fn transient_fault_recovers_byte_identical_everywhere() {
    let catalog = catalog();
    let plan = plan(&catalog);
    let clean = baseline(&plan, &catalog);
    for kind in [
        FaultKind::Io,
        FaultKind::CorruptPacket,
        FaultKind::TruncatedRead,
    ] {
        for (arm, base) in arms() {
            // Fires once, then the retry succeeds — under every policy
            // the result must be the clean bytes, because recovery beat
            // the policy to it.
            let injector = FaultInjector::new().fail_times("src", FAULTED_SOURCE_FRAME, kind, 1);
            let opts = ExecOptions {
                fault: Some(Arc::new(injector)),
                on_error: ErrorPolicy::SkipSegment,
                max_retries: 3,
                ..base
            };
            let label = format!("{kind:?}/{arm}");
            let (out, trace, _) = execute_traced(&plan, &catalog, &opts).unwrap();
            assert_eq!(clean.packets(), out.packets(), "batch/{label}");
            assert_eq!(trace.totals.faults_injected, 1, "batch/{label}");
            assert!(
                trace.totals.retries >= 1,
                "batch/{label}: {:?}",
                trace.totals
            );
            let recovered: Vec<&SegmentFault> = trace
                .errors
                .iter()
                .filter(|f| f.action.name() == "recovered")
                .collect();
            assert_eq!(recovered.len(), 1, "batch/{label}: {:?}", trace.errors);
            assert_eq!(trace.totals.parts_skipped, 0, "batch/{label}");

            let injector = FaultInjector::new().fail_times("src", FAULTED_SOURCE_FRAME, kind, 1);
            let opts = ExecOptions {
                fault: Some(Arc::new(injector)),
                ..opts
            };
            let (streamed, stats) = execute_streaming_with(&plan, &catalog, &opts, |_| {}).unwrap();
            assert_eq!(clean.packets(), streamed.packets(), "streaming/{label}");
            assert_eq!(stats.exec.faults_injected, 1, "streaming/{label}");
            assert_eq!(stats.errors.len(), 1, "streaming/{label}");
        }
    }
}

#[test]
fn persistent_fault_under_abort_fails_the_run() {
    let catalog = catalog();
    let plan = plan(&catalog);
    for (arm, base) in arms() {
        let injector = FaultInjector::new().fail("src", FAULTED_SOURCE_FRAME, FaultKind::Io);
        let opts = ExecOptions {
            fault: Some(Arc::new(injector)),
            on_error: ErrorPolicy::Abort,
            max_retries: 2,
            ..base
        };
        assert!(execute(&plan, &catalog, &opts).is_err(), "batch/{arm}");
        let injector = FaultInjector::new().fail("src", FAULTED_SOURCE_FRAME, FaultKind::Io);
        let opts = ExecOptions {
            fault: Some(Arc::new(injector)),
            ..opts
        };
        assert!(
            execute_streaming_with(&plan, &catalog, &opts, |_| {}).is_err(),
            "streaming/{arm}"
        );
    }
}

/// Shared checks on a skip-policy error report.
fn assert_skip_report(errors: &[SegmentFault], label: &str) {
    assert!(!errors.is_empty(), "{label}: no error report");
    for f in errors {
        assert_eq!(f.action.name(), "skipped", "{label}: {f:?}");
        assert_eq!(f.kind, "io", "{label}: {f:?}");
        assert!(f.retries >= 1, "{label}: {f:?}");
        assert!(!f.error.is_empty(), "{label}: {f:?}");
    }
}

#[test]
fn skip_segment_completes_with_a_reported_hole() {
    let catalog = catalog();
    let plan = plan(&catalog);
    let clean = baseline(&plan, &catalog);
    for (arm, base) in arms() {
        let mk = || FaultInjector::new().fail("src", FAULTED_SOURCE_FRAME, FaultKind::Io);
        let opts = ExecOptions {
            fault: Some(Arc::new(mk())),
            on_error: ErrorPolicy::SkipSegment,
            max_retries: 1,
            ..base
        };
        let (out, trace, _) = execute_traced(&plan, &catalog, &opts).unwrap();
        // The run completed; the hole removed at most the render
        // segment, and under splits at least the faulted part.
        assert!(out.len() < clean.len(), "batch/{arm}: nothing skipped");
        assert!(
            out.len() >= TOTAL_FRAMES - RENDER_FRAMES,
            "batch/{arm}: skipped more than the render segment ({} frames)",
            out.len()
        );
        assert!(trace.totals.parts_skipped >= 1, "batch/{arm}");
        assert_skip_report(&trace.errors, &format!("batch/{arm}"));
        // The surviving copy segments are intact: first and last output
        // frames still carry their source markers.
        let (frames, _) = out.decode_range(0, 1).unwrap();
        assert_eq!(marker::read(&frames[0]), Some(30), "batch/{arm}");

        let opts = ExecOptions {
            fault: Some(Arc::new(mk())),
            ..opts
        };
        let mut sunk = 0usize;
        let (streamed, stats) =
            execute_streaming_with(&plan, &catalog, &opts, |_| sunk += 1).unwrap();
        assert_eq!(streamed.len(), sunk, "streaming/{arm}: sink diverged");
        assert!(streamed.len() < clean.len(), "streaming/{arm}");
        assert_skip_report(&stats.errors, &format!("streaming/{arm}"));
    }
}

#[test]
fn substitute_black_completes_at_full_length() {
    let catalog = catalog();
    let plan = plan(&catalog);
    let clean = baseline(&plan, &catalog);
    let black = Frame::black(FrameType::gray8(64, 32));
    for (arm, base) in arms() {
        let mk = || FaultInjector::new().fail("src", FAULTED_SOURCE_FRAME, FaultKind::Io);
        let opts = ExecOptions {
            fault: Some(Arc::new(mk())),
            on_error: ErrorPolicy::SubstituteBlack,
            max_retries: 1,
            ..base
        };
        let (out, trace, _) = execute_traced(&plan, &catalog, &opts).unwrap();
        assert_eq!(
            out.len(),
            clean.len(),
            "batch/{arm}: output not hole-filled"
        );
        assert!(trace.totals.parts_substituted >= 1, "batch/{arm}");
        assert!(
            trace.totals.frames_substituted >= 1
                && trace.totals.frames_substituted <= RENDER_FRAMES as u64,
            "batch/{arm}: {:?}",
            trace.totals
        );
        for f in &trace.errors {
            assert_eq!(f.action.name(), "substituted_black", "batch/{arm}: {f:?}");
        }
        // The copy segments are untouched; inside the render segment the
        // substituted frames are pure black (the faulted source marker
        // can no longer appear).
        let (frames, _) = out.decode_range(0, out.len()).unwrap();
        assert_eq!(marker::read(&frames[0]), Some(30), "batch/{arm}");
        assert_eq!(
            marker::read(&frames[TOTAL_FRAMES - 1]),
            Some(239),
            "batch/{arm}"
        );
        let substituted = frames[RENDER_OUT_START..RENDER_OUT_START + RENDER_FRAMES]
            .iter()
            .filter(|f| **f == black)
            .count() as u64;
        assert!(
            substituted >= trace.totals.frames_substituted,
            "batch/{arm}: {substituted} black frames vs {:?}",
            trace.totals
        );

        let opts = ExecOptions {
            fault: Some(Arc::new(mk())),
            ..opts
        };
        let (streamed, stats) = execute_streaming_with(&plan, &catalog, &opts, |_| {}).unwrap();
        assert_eq!(streamed.len(), clean.len(), "streaming/{arm}");
        assert!(stats.exec.parts_substituted >= 1, "streaming/{arm}");
        assert!(!stats.errors.is_empty(), "streaming/{arm}");
    }
}

#[test]
fn fault_report_round_trips_through_the_engine() {
    // End-to-end: the engine surfaces the structured report on
    // RunReport.errors, the exec.faults.* counters land in the trace
    // metrics, and the artifact survives JSON.
    use v2v_core::{EngineConfig, V2vEngine};
    let catalog = catalog();
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(1, 1), r(2, 1))
        .append_filtered("src", r(4, 1), r(2, 1), |e| blur(e, 1.0))
        .append_clip("src", r(7, 1), r(1, 1))
        .build();
    let injector = FaultInjector::new().fail("src", FAULTED_SOURCE_FRAME, FaultKind::Io);
    let config = EngineConfig {
        exec: ExecOptions {
            fault: Some(Arc::new(injector)),
            on_error: ErrorPolicy::SubstituteBlack,
            max_retries: 1,
            parallel: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let mut engine = V2vEngine::new(catalog).with_config(config);
    let (report, trace) = engine.run_traced(&spec).unwrap();
    assert!(!report.errors.is_empty(), "RunReport.errors empty");
    assert_eq!(report.errors, trace.exec.errors);
    assert!(trace.metrics.counter("exec.faults.injected") >= 1);
    assert!(trace.metrics.counter("exec.faults.parts_substituted") >= 1);
    assert_eq!(
        trace.metrics.counter("exec.faults.frames_substituted"),
        report.stats.frames_substituted
    );
    let back = v2v_core::RunTrace::from_json(&trace.to_json()).unwrap();
    assert_eq!(back, trace);
}
