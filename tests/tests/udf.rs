//! User-defined transformations end to end (paper §III-C: "More
//! transformations can be added through UDFs").
//!
//! Registers a custom "sepia-ish" kernel, uses it from a spec via
//! `TransformOp::Udf(id)`, and verifies checking, JSON round-tripping,
//! optimized/unoptimized equivalence, and error paths.

use std::sync::Arc;
use v2v_core::V2vEngine;
use v2v_data::Value;
use v2v_exec::Catalog;
use v2v_frame::Frame;
use v2v_integration_tests::{marked_output, marked_stream, markers_of};
use v2v_spec::{Arg, ArgKind, DataExpr, DataType, RenderExpr, SpecBuilder, TransformOp};
use v2v_time::{r, Rational};

const SEPIA: u16 = 42;

/// Brightness-shift kernel standing in for a real user transform.
fn sepia_kernel(_t: Rational, frames: &[Frame], data: &[Value]) -> Result<Frame, String> {
    let amount = data
        .first()
        .and_then(|v| v.as_f64())
        .ok_or_else(|| "sepia needs a numeric amount".to_string())?;
    if !(0.0..=255.0).contains(&amount) {
        return Err(format!("amount {amount} out of range"));
    }
    let mut out = frames[0].clone();
    for v in out.plane_mut(0).data_mut() {
        *v = v.saturating_add(amount as u8);
    }
    Ok(out)
}

fn catalog_with_udf() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.add_video("src", marked_stream(120, 30));
    catalog.register_udf(
        SEPIA,
        "sepia",
        vec![ArgKind::Frame, ArgKind::Data(DataType::Number)],
        Arc::new(sepia_kernel),
    );
    catalog
}

fn udf_spec(amount: f64) -> v2v_spec::Spec {
    SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(1, 1), Rational::from_int(2), |e| {
            RenderExpr::transform(
                TransformOp::Udf(SEPIA),
                vec![Arg::Frame(e), Arg::Data(DataExpr::constant(amount))],
            )
        })
        .build()
}

#[test]
fn udf_runs_in_both_executors() {
    let spec = udf_spec(40.0);
    let mut engine = V2vEngine::new(catalog_with_udf());
    let opt = engine.run(&spec).unwrap();
    let unopt = engine.run_unoptimized(&spec).unwrap();
    assert_eq!(opt.output.len(), 60);
    let (fa, _) = opt.output.decode_range(0, 60).unwrap();
    let (fb, _) = unopt.output.decode_range(0, 60).unwrap();
    assert_eq!(fa, fb, "UDF must behave identically in both arms");
    // The kernel actually ran: markers got brightened past recognition is
    // not guaranteed, but some pixel must exceed the source's max marker
    // luma of 235.
    assert!(fa[0].plane(0).data().iter().any(|&v| v > 240));
}

#[test]
fn udf_survives_json_round_trip() {
    let spec = udf_spec(25.0);
    let js = spec.to_json();
    assert!(
        js.contains("\"udf\": 42") || js.contains("\"udf\":42"),
        "{js}"
    );
    let back = v2v_spec::Spec::from_json(&js).unwrap();
    assert_eq!(spec, back);
    let mut engine = V2vEngine::new(catalog_with_udf());
    let a = engine.run(&spec).unwrap();
    let b = engine.run(&back).unwrap();
    assert_eq!(markers_of(&a.output), markers_of(&b.output));
}

#[test]
fn unregistered_udf_fails_check() {
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(0, 1), Rational::from_int(1), |e| {
            RenderExpr::transform(TransformOp::Udf(999), vec![Arg::Frame(e)])
        })
        .build();
    let mut catalog = Catalog::new();
    catalog.add_video("src", marked_stream(60, 30));
    let mut engine = V2vEngine::new(catalog);
    let err = engine.run(&spec).unwrap_err();
    assert!(
        err.to_string().contains("unknown UDF #999"),
        "unexpected error: {err}"
    );
}

#[test]
fn udf_signature_arity_checked() {
    // Wrong arity against the registered signature.
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(0, 1), Rational::from_int(1), |e| {
            RenderExpr::transform(TransformOp::Udf(SEPIA), vec![Arg::Frame(e)])
        })
        .build();
    let mut engine = V2vEngine::new(catalog_with_udf());
    let err = engine.run(&spec).unwrap_err();
    assert!(err.to_string().contains("expects 2 arguments"), "{err}");
}

#[test]
fn udf_kernel_failure_surfaces() {
    // Amount out of the kernel's accepted range: the kernel's message
    // must reach the caller.
    let spec = udf_spec(-5.0);
    let mut engine = V2vEngine::new(catalog_with_udf());
    let err = engine.run(&spec).unwrap_err();
    assert!(err.to_string().contains("out of range"), "{err}");
}

#[test]
fn udf_composes_with_builtins_and_dde() {
    // BoundingBox over empty detections collapses around the UDF; the
    // UDF itself is opaque to the rewriter and still runs.
    let mut catalog = catalog_with_udf();
    catalog.add_array("bb", v2v_data::DataArray::new());
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .data_array("bb", "catalog")
        .append_filtered("src", r(0, 1), Rational::from_int(1), |e| {
            let boxed = v2v_spec::builder::bounding_box(e, "bb");
            RenderExpr::transform(
                TransformOp::Udf(SEPIA),
                vec![Arg::Frame(boxed), Arg::Data(DataExpr::constant(10.0))],
            )
        })
        .build();
    let mut engine = V2vEngine::new(catalog);
    let report = engine.run(&spec).unwrap();
    assert_eq!(report.dde_rewrites, 1, "inner BoundingBox elided");
    assert_eq!(report.output.len(), 30);
    assert_eq!(report.stats.frames_encoded, 30, "UDF still renders");
}
