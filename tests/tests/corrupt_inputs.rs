//! Corrupt-input hardening: no decode entry point may panic on hostile
//! bytes.
//!
//! The decode surface reaches untrusted data at three layers — the
//! `.svc` file parser (`read_svc`), the stream assembly and seek logic
//! (`VideoStream`), and the packet bitstream (`Decoder`) — and each used
//! to panic on specific malformed inputs. This suite pins the contract
//! that every layer returns `Err` instead:
//!
//! * proptest mutation harnesses bit-flip, truncate, and extend valid
//!   `.svc` bytes (and individual packet payloads) and drive every
//!   decode entry point over the result;
//! * direct regression tests reproduce the three seed panics: the
//!   unchecked `pos + n` slice in `Reader::bytes` (huge byte-run
//!   request), the `RunDecoder` fill overrun on a lying run length, and
//!   the `expect("stream starts with a keyframe")` on keyframeless
//!   streams.
//!
//! A mutation that happens to still parse is fine — the property is
//! "Result, never panic", not "always Err".

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use v2v_codec::bitstream::{put_varint, zigzag, Reader, RunDecoder};
use v2v_codec::{CodecError, Decoder, Packet};
use v2v_container::{read_svc, write_svc, ContainerError, VideoStream};
use v2v_integration_tests::marked_stream;

/// A small valid stream: 60 frames, 4 GOPs, lossless gray.
fn valid_stream() -> VideoStream {
    marked_stream(60, 15)
}

/// The serialized `.svc` bytes of [`valid_stream`].
fn valid_svc_bytes() -> Vec<u8> {
    let path = scratch_path("valid");
    write_svc(&valid_stream(), &path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    bytes
}

/// A unique temp path per call (tests run in parallel threads).
fn scratch_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join("v2v_corrupt_inputs");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("{tag}_{}_{n}.svc", std::process::id()))
}

/// Writes `bytes` to disk and drives the full decode surface over them:
/// `read_svc`, then (if the file parses) `decode_range`,
/// `decode_frame_at`, and a `copy_packet_range` → re-decode round trip.
/// The return value only reports whether parsing succeeded; the point is
/// that nothing in here may panic.
fn exercise_decode_surface(bytes: &[u8], tag: &str) -> bool {
    let path = scratch_path(tag);
    std::fs::write(&path, bytes).unwrap();
    let parsed = read_svc(&path);
    let _ = std::fs::remove_file(&path);
    let Ok(stream) = parsed else {
        return false;
    };
    // The file parsed; every decode path over it must still be
    // panic-free (payload bytes are independent of the packet table).
    let _ = stream.decode_range(0, stream.len());
    if let Some(t) = stream.pts_of(stream.len() / 2) {
        let _ = stream.decode_frame_at(t);
    }
    if stream.len() >= 2 {
        if let Ok(packets) = stream.copy_packet_range(0, stream.len() / 2, stream.start()) {
            if let Ok(sub) = VideoStream::new(
                *stream.params(),
                stream.start(),
                stream.frame_dur(),
                packets,
            ) {
                let _ = sub.decode_range(0, sub.len());
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-bit flips anywhere in the file: header, packet table, or
    /// payload. Every decode entry point returns a `Result`.
    #[test]
    fn bit_flipped_files_never_panic(pos in 0usize..4096, bit in 0u8..8) {
        let mut bytes = valid_svc_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= 1 << bit;
        exercise_decode_surface(&bytes, "flip");
    }

    /// Truncation at every possible boundary: mid-magic, mid-header,
    /// mid-tag, mid-payload.
    #[test]
    fn truncated_files_never_panic(keep in 0usize..4096) {
        let bytes = valid_svc_bytes();
        let keep = keep % (bytes.len() + 1);
        exercise_decode_surface(&bytes[..keep], "trunc");
    }

    /// Appending garbage (and garbage-only files): trailing bytes after
    /// the packet table must not confuse the parser, and pure noise must
    /// be rejected cleanly.
    #[test]
    fn extended_and_garbage_files_never_panic(
        tail in prop::collection::vec(any::<u8>(), 0..512),
        garbage_only in any::<bool>(),
    ) {
        let mut bytes = if garbage_only { Vec::new() } else { valid_svc_bytes() };
        bytes.extend_from_slice(&tail);
        exercise_decode_surface(&bytes, "extend");
    }

    /// Multi-byte corruption of a single packet payload, fed straight to
    /// the codec: the decoder must return `Err` or a frame, never panic,
    /// for flips, truncations, and extensions of real compressed data.
    #[test]
    fn mutated_packet_payloads_never_panic(
        pkt_idx in 0usize..60,
        flips in prop::collection::vec((0usize..4096, 0u8..8), 0..8),
        cut in 0usize..4096,
        tail in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let stream = valid_stream();
        let src = &stream.packets()[pkt_idx % stream.len()];
        let mut data: Vec<u8> = src.data.to_vec();
        for (pos, bit) in flips {
            if !data.is_empty() {
                let pos = pos % data.len();
                data[pos] ^= 1 << bit;
            }
        }
        data.truncate(cut.max(1) % (data.len() + 1));
        data.extend_from_slice(&tail);
        let mangled = Packet::new(src.pts, src.keyframe, data.into());
        let mut dec = Decoder::new(*stream.params());
        // Establish a reference first so inter packets are decodable at
        // all, then feed the mangled packet.
        let _ = dec.decode(&stream.packets()[0]);
        let _ = dec.decode(&mangled);
    }
}

// ---------------------------------------------------------------------
// Direct regressions for the three seed panics.
// ---------------------------------------------------------------------

/// Seed panic 1 — `bitstream.rs` `Reader::bytes` sliced with unchecked
/// `pos + n`: a varint-supplied length near `usize::MAX` used to either
/// wrap the add or slice out of bounds. Both must be `Corrupt`, and a
/// failed read must not advance the cursor.
#[test]
fn seed_panic_huge_byte_run_request_returns_corrupt() {
    let buf = [10u8, 20, 30];
    let mut r = Reader::new(&buf);
    assert!(matches!(r.bytes(usize::MAX), Err(CodecError::Corrupt(_))));
    assert!(matches!(r.bytes(4), Err(CodecError::Corrupt(_))));
    // The cursor did not move: the whole buffer is still readable.
    assert_eq!(r.bytes(3).unwrap(), &buf);
}

/// Seed panic 2 — `RunDecoder::next_residuals` trusted the stream's run
/// length and could overrun the output fill: a (run, value) pair
/// claiming more zeroes than residuals remain must be `Corrupt`, through
/// both the bulk fill and the scalar path.
#[test]
fn seed_panic_lying_run_length_returns_corrupt() {
    let mut payload = Vec::new();
    put_varint(&mut payload, 1_000_000); // run ≫ declared residual count
    put_varint(&mut payload, zigzag(42));

    let mut r = Reader::new(&payload);
    let mut dec = RunDecoder::new(&mut r, 8);
    let mut out = [0i32; 8];
    assert!(matches!(
        dec.next_residuals(&mut out),
        Err(CodecError::Corrupt(_))
    ));

    let mut r = Reader::new(&payload);
    let mut dec = RunDecoder::new(&mut r, 8);
    assert!(matches!(dec.next_residual(), Err(CodecError::Corrupt(_))));
}

/// Seed panic 3 — `stream.rs` decode paths used
/// `expect("stream starts with a keyframe")`: a stream whose packet
/// table carries no keyframe flag at all (trivial to fabricate on disk
/// by clearing tag bits) used to panic on first decode. Now the
/// keyframeless stream is rejected at assembly with
/// `SpliceNotKeyframe`, and the on-disk variant fails `read_svc`
/// cleanly.
#[test]
fn seed_panic_keyframeless_stream_is_rejected_not_panicking() {
    let stream = valid_stream();
    // In-memory: rebuilding the same packets with keyframe flags cleared
    // must fail stream assembly (previously it assembled fine and blew
    // up later inside decode's keyframe seek).
    let stripped: Vec<Packet> = stream
        .packets()
        .iter()
        .map(|p| Packet::new(p.pts, false, p.data.clone()))
        .collect();
    let assembled = VideoStream::new(
        *stream.params(),
        stream.start(),
        stream.frame_dur(),
        stripped,
    );
    assert!(matches!(assembled, Err(ContainerError::SpliceNotKeyframe)));

    // On disk: clear the keyframe bit of every packet tag in a valid
    // file and walk the decode surface; the file must be rejected (or at
    // minimum decode must error), never panic.
    let mut bytes = valid_svc_bytes();
    let hdr_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
    let mut off = 8 + hdr_len;
    while off + 4 <= bytes.len() {
        let tag = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        bytes[off..off + 4].copy_from_slice(&(tag & !1).to_le_bytes());
        off += 4 + (tag >> 1) as usize;
    }
    assert!(
        !exercise_decode_surface(&bytes, "keyframeless"),
        "a keyframeless .svc must not parse into a decodable stream"
    );
}

/// Companion to seed panic 3: the `copy_packet_range` → decode round
/// trip. A copied sub-range always re-validates its own keyframe
/// invariant, so mid-GOP copy attempts error instead of producing a
/// stream that panics on decode.
#[test]
fn mid_gop_copy_errors_instead_of_deferring_a_panic() {
    let stream = valid_stream();
    // Offset 7 is mid-GOP (GOP size 15): no keyframe at the cut.
    let err = stream.copy_packet_range(7, 20, stream.start());
    assert!(err.is_err(), "mid-GOP copy must be rejected");
    // A legal copy still assembles and decodes end to end.
    let packets = stream.copy_packet_range(15, 45, stream.start()).unwrap();
    let sub = VideoStream::new(
        *stream.params(),
        stream.start(),
        stream.frame_dur(),
        packets,
    )
    .unwrap();
    let (frames, _) = sub.decode_range(0, sub.len()).unwrap();
    assert_eq!(frames.len(), 30);
}
