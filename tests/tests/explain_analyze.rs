//! `EXPLAIN ANALYZE` ground truth: the measured per-operator metrics
//! must equal what the plan provably does.
//!
//! The spec is built so every operator's cost is knowable by hand:
//! a keyframe-aligned 1 s clip (30 copied packets, zero raster work)
//! spliced with a 1 s blurred clip over exactly one source GOP
//! (30 decoded, 30 encoded frames). Serial execution keeps the counts
//! deterministic.

use v2v_core::{EngineConfig, V2vEngine};
use v2v_exec::Catalog;
use v2v_integration_tests::{marked_output, marked_stream};
use v2v_spec::builder::blur;
use v2v_spec::SpecBuilder;
use v2v_time::{r, Rational};

fn engine() -> V2vEngine {
    let mut catalog = Catalog::new();
    catalog.add_video("src", marked_stream(120, 30));
    let mut config = EngineConfig::default();
    config.exec.parallel = false;
    V2vEngine::new(catalog).with_config(config)
}

#[test]
fn analyze_counts_equal_ground_truth() {
    let mut engine = engine();
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        // Frames 30..60 of the source: starts on a keyframe → pure copy.
        .append_clip("src", r(1, 1), Rational::from_int(1))
        // Frames 60..90 blurred: exactly the GOP at keyframe 60.
        .append_filtered("src", r(2, 1), Rational::from_int(1), |e| blur(e, 1.0))
        .build();
    let report = engine.explain_analyze(&spec).unwrap();

    assert_eq!(report.output_frames, 60);
    assert_eq!(report.exec.segments.len(), 2, "{:#?}", report.exec.segments);

    let copy = &report.exec.segments[0];
    assert_eq!(copy.kind, "stream_copy");
    assert_eq!(copy.out_start, 0);
    assert_eq!(copy.frames, 30);
    assert_eq!(copy.stats.packets_copied, 30);
    assert_eq!(copy.stats.frames_decoded, 0);
    assert_eq!(copy.stats.frames_encoded, 0);
    assert!(copy.stats.bytes_copied > 0);

    let render = &report.exec.segments[1];
    assert_eq!(render.kind, "render");
    assert_eq!(render.out_start, 30);
    assert_eq!(render.frames, 30);
    assert_eq!(render.stats.packets_copied, 0);
    assert_eq!(
        render.stats.frames_decoded, 30,
        "the blur reads exactly one 30-frame GOP"
    );
    assert_eq!(render.stats.frames_encoded, 30);
    assert_eq!(render.stats.seeks, 1, "one keyframe entry at frame 60");
    assert!(render.stats.bytes_decoded > 0);
    assert!(render.stats.bytes_encoded > 0);

    // Totals are exactly the segment sums (plus once-per-run cache
    // accounting: the single GOP decode is the only cache miss).
    let t = report.stats();
    assert_eq!(t.segments, 2);
    assert_eq!(t.frames_decoded, 30);
    assert_eq!(t.frames_encoded, 30);
    assert_eq!(t.packets_copied, 30);
    assert_eq!(t.gop_cache_misses, 1);
    assert_eq!(t.gop_cache_hits, 0);

    // The planning side of the report agrees with what executed.
    assert_eq!(report.explain.trace.fired("stream_copy"), 1);
    assert_eq!(report.explain.plan_stats.frames_copied, 30);
    assert_eq!(report.explain.plan_stats.frames_rendered, 30);

    // And the run-level counts match a plain `run` of the same spec.
    let mut engine2 = engine_clone();
    let run = engine2.run(&spec).unwrap();
    assert_eq!(run.stats, t);
}

fn engine_clone() -> V2vEngine {
    engine()
}

#[test]
fn analyze_matches_trace_artifact() {
    // `explain_analyze` and `run_traced` must tell the same story.
    let mut a = engine();
    let mut b = engine();
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(1, 2), Rational::from_int(2))
        .build();
    let analyze = a.explain_analyze(&spec).unwrap();
    let (_, trace) = b.run_traced(&spec).unwrap();
    assert_eq!(analyze.exec.totals, trace.exec.totals);
    assert_eq!(
        analyze.explain.trace.rules_fired(),
        trace.rewrites.rules_fired()
    );
    assert_eq!(
        trace.metrics.counter("exec.frames_decoded"),
        analyze.exec.totals.frames_decoded
    );
}
