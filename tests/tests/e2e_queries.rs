//! End-to-end equivalence: for every benchmark query shape, the optimized
//! V2V pipeline and the naive unoptimized executor must produce
//! frame-identical output on lossless sources — verified through the
//! embedded frame markers (the paper's frame-exactness methodology).

use v2v_core::{EngineConfig, V2vEngine};
use v2v_exec::Catalog;
use v2v_integration_tests::{marked_output, marked_stream, markers_of};
use v2v_spec::builder::{blur, bounding_box, grid4};
use v2v_spec::{RenderExpr, Spec, SpecBuilder};
use v2v_time::{r, Rational};

fn engine() -> V2vEngine {
    let mut catalog = Catalog::new();
    catalog.add_video("src", marked_stream(300, 30));
    V2vEngine::new(catalog)
}

fn assert_arms_agree(spec: &Spec, engine: &mut V2vEngine) -> (u64, u64) {
    let opt = engine.run(spec).expect("optimized");
    let unopt = engine.run_unoptimized(spec).expect("unoptimized");
    assert_eq!(opt.output.len(), unopt.output.len());
    let (fa, _) = opt.output.decode_range(0, opt.output.len()).unwrap();
    let (fb, _) = unopt.output.decode_range(0, unopt.output.len()).unwrap();
    for (i, (a, b)) in fa.iter().zip(&fb).enumerate() {
        assert_eq!(a, b, "frame {i} differs between arms");
    }
    (opt.stats.packets_copied, unopt.stats.frames_encoded)
}

#[test]
fn q1_clip() {
    let mut e = engine();
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(3, 2), Rational::from_int(3))
        .build();
    let (copied, _) = assert_arms_agree(&spec, &mut e);
    assert!(copied > 0, "mid-GOP clip should smart-cut");
    // Frame-exactness: output frame k shows source frame 45 + k.
    let report = e.run(&spec).unwrap();
    for (k, m) in markers_of(&report.output).into_iter().enumerate() {
        assert_eq!(m, Some(45 + k as u32), "output frame {k}");
    }
}

#[test]
fn q2_splice() {
    let mut e = engine();
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(0, 1), Rational::from_int(2))
        .append_clip("src", r(4, 1), Rational::from_int(2))
        .append_clip("src", r(8, 1), Rational::from_int(1))
        .append_clip("src", r(2, 1), Rational::from_int(2))
        .build();
    assert_arms_agree(&spec, &mut e);
    let report = e.run(&spec).unwrap();
    let markers = markers_of(&report.output);
    assert_eq!(markers[0], Some(0));
    assert_eq!(markers[60], Some(120)); // second segment starts at src 4s
    assert_eq!(markers[120], Some(240));
    assert_eq!(markers[150], Some(60));
    assert_eq!(markers.len(), 210);
}

#[test]
fn q3_grid() {
    let mut e = engine();
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_with(Rational::from_int(2), |_| {
            grid4(
                RenderExpr::video("src"),
                RenderExpr::video_shifted("src", r(2, 1)),
                RenderExpr::video_shifted("src", r(4, 1)),
                RenderExpr::video_shifted("src", r(6, 1)),
            )
        })
        .build();
    assert_arms_agree(&spec, &mut e);
}

#[test]
fn q4_blur() {
    let mut e = engine();
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(1, 1), Rational::from_int(2), |f| blur(f, 1.0))
        .build();
    assert_arms_agree(&spec, &mut e);
}

#[test]
fn q5_bounding_boxes_with_sparse_data() {
    let mut e = engine();
    let mut bb = v2v_data::DataArray::new();
    // Boxes only during the second second of the clip.
    for i in 30..60 {
        bb.insert(
            r(i, 30),
            v2v_data::Value::Boxes(vec![v2v_frame::BoxCoord::new(0.2, 0.2, 0.3, 0.3, "z")]),
        );
    }
    e.catalog_mut().add_array("bb", bb);
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .data_array("bb", "catalog")
        .append_filtered("src", r(0, 1), Rational::from_int(3), |f| {
            bounding_box(f, "bb")
        })
        .build();
    let (copied, _) = assert_arms_agree(&spec, &mut e);
    assert!(copied > 0, "dde must copy the box-free spans");
}

#[test]
fn smart_cut_equals_full_reencode_frames() {
    // The optimized smart-cut output and a forced full re-encode must
    // show identical frames at q=0.
    let mut e = engine();
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(5, 6), Rational::from_int(4)) // frame 25, mid-GOP
        .build();
    let opt = e.run(&spec).unwrap();
    let mut config = EngineConfig::default();
    config.optimizer.stream_copy = false;
    config.optimizer.smart_cut = false;
    let mut e2 = V2vEngine::new(e.catalog().clone()).with_config(config);
    let reencode = e2.run(&spec).unwrap();
    assert_eq!(markers_of(&opt.output), markers_of(&reencode.output));
    let (fa, _) = opt.output.decode_range(0, opt.output.len()).unwrap();
    let (fb, _) = reencode
        .output
        .decode_range(0, reencode.output.len())
        .unwrap();
    assert_eq!(fa, fb);
}

#[test]
fn dde_interleaved_condition_stays_exact() {
    // A per-frame alternating IfThenElse: dde produces many single-frame
    // segments; the output must still be frame-exact and equal to the
    // dde-off run.
    let mut e = engine();
    let mut flags = v2v_data::DataArray::new();
    for i in 0..60 {
        flags.insert(r(i, 30), v2v_data::Value::Int(i % 3));
    }
    e.catalog_mut().add_array("k", flags);
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .data_array("k", "catalog")
        .append_with(Rational::from_int(2), |_| {
            v2v_spec::builder::if_then_else(
                v2v_spec::DataExpr::lt(
                    v2v_spec::DataExpr::array("k"),
                    v2v_spec::DataExpr::constant(1i64),
                ),
                RenderExpr::video("src"),
                RenderExpr::video_shifted("src", r(5, 1)),
            )
        })
        .build();
    let on = e.run(&spec).unwrap();
    let config = EngineConfig {
        data_rewrites: false,
        ..Default::default()
    };
    let mut e_off = V2vEngine::new(e.catalog().clone()).with_config(config);
    let off = e_off.run(&spec).unwrap();
    let markers_on = markers_of(&on.output);
    assert_eq!(markers_on, markers_of(&off.output));
    // Frame k shows src k when k % 3 == 0, else src k + 150.
    for (k, m) in markers_on.into_iter().enumerate() {
        let expect = if k % 3 == 0 { k as u32 } else { k as u32 + 150 };
        assert_eq!(m, Some(expect), "frame {k}");
    }
}

#[test]
fn retimed_clip_double_speed() {
    // vid[2·t]: a 2-second output consuming 4 seconds of source.
    let mut e = engine();
    let domain =
        v2v_time::TimeSet::from_range(v2v_time::TimeRange::new(r(0, 1), r(2, 1), r(1, 30)));
    let spec = Spec {
        time_domain: domain,
        render: RenderExpr::FrameRef {
            video: "src".into(),
            time: v2v_time::AffineTimeMap::retime(r(2, 1)),
        },
        videos: [("src".to_string(), "src.svc".to_string())].into(),
        data_arrays: Default::default(),
        output: marked_output(),
    };
    assert_arms_agree(&spec, &mut e);
    let report = e.run(&spec).unwrap();
    let markers = markers_of(&report.output);
    assert_eq!(markers[0], Some(0));
    assert_eq!(markers[1], Some(2));
    assert_eq!(markers[59], Some(118));
}

#[test]
fn conservative_tail_smart_cut_stays_exact() {
    // B-frame-style smart cut (both partial GOPs re-encoded) must still
    // be frame-exact and equal to the default cut.
    let mut e = engine();
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(1, 2), Rational::from_int(2))
        .build();
    let default = e.run(&spec).unwrap();
    let mut config = EngineConfig::default();
    config.optimizer.conservative_tail = true;
    let mut e2 = V2vEngine::new(e.catalog().clone()).with_config(config);
    let conservative = e2.run(&spec).unwrap();
    assert!(conservative.stats.frames_encoded > default.stats.frames_encoded);
    assert_eq!(
        markers_of(&default.output),
        markers_of(&conservative.output)
    );
    let (fa, _) = default
        .output
        .decode_range(0, default.output.len())
        .unwrap();
    let (fb, _) = conservative
        .output
        .decode_range(0, conservative.output.len())
        .unwrap();
    assert_eq!(fa, fb);
}

#[test]
fn reverse_playback() {
    // vid[-t + c]: reversed playback through a negative-scale time map.
    let mut e = engine();
    let domain =
        v2v_time::TimeSet::from_range(v2v_time::TimeRange::new(r(0, 1), r(2, 1), r(1, 30)));
    let spec = Spec {
        time_domain: domain,
        render: RenderExpr::FrameRef {
            video: "src".into(),
            time: v2v_time::AffineTimeMap::new(r(-1, 1), r(59, 30)),
        },
        videos: [("src".to_string(), "src.svc".to_string())].into(),
        data_arrays: Default::default(),
        output: marked_output(),
    };
    assert_arms_agree(&spec, &mut e);
    let report = e.run(&spec).unwrap();
    let markers = markers_of(&report.output);
    assert_eq!(markers[0], Some(59));
    assert_eq!(markers[1], Some(58));
    assert_eq!(markers[59], Some(0));
}
