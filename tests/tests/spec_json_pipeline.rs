//! Serialized-spec pipeline: specs survive the JSON round trip and
//! SQL-backed data arrays bind through the engine — the paper's
//! "executable binary reads serialized JSON specs" path end to end,
//! including on-disk `.svc` video locators.

use v2v_core::V2vEngine;
use v2v_data::{Database, Value};
use v2v_exec::Catalog;
use v2v_integration_tests::{marked_output, marked_stream, markers_of};
use v2v_spec::builder::bounding_box;
use v2v_spec::{Spec, SpecBuilder};
use v2v_time::{r, Rational};

#[test]
fn json_round_trip_produces_identical_output() {
    let mut catalog = Catalog::new();
    catalog.add_video("src", marked_stream(180, 30));
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(1, 1), Rational::from_int(2))
        .append_filtered("src", r(4, 1), Rational::from_int(1), |e| {
            v2v_spec::builder::blur(e, 1.0)
        })
        .build();
    let round_tripped = Spec::from_json(&spec.to_json()).expect("round trip");
    assert_eq!(spec, round_tripped);

    let mut e1 = V2vEngine::new(catalog.clone());
    let mut e2 = V2vEngine::new(catalog);
    let a = e1.run(&spec).unwrap();
    let b = e2.run(&round_tripped).unwrap();
    assert_eq!(markers_of(&a.output), markers_of(&b.output));
}

#[test]
fn svc_file_locators_bind_from_disk() {
    let dir = std::env::temp_dir().join("v2v_it_files");
    std::fs::create_dir_all(&dir).unwrap();
    let video_path = dir.join("src_video.svc");
    v2v_container::write_svc(&marked_stream(120, 30), &video_path).unwrap();

    let spec = SpecBuilder::new(marked_output())
        .video("src", video_path.to_string_lossy())
        .append_clip("src", r(1, 1), Rational::from_int(2))
        .build();
    // Empty catalog: the engine must load the video from its locator.
    let mut engine = V2vEngine::new(Catalog::new());
    let report = engine.run(&spec).unwrap();
    assert_eq!(report.output.len(), 60);
    assert_eq!(markers_of(&report.output)[0], Some(30));
    std::fs::remove_file(video_path).unwrap();
}

#[test]
fn json_annotation_locators_bind_from_disk() {
    let dir = std::env::temp_dir().join("v2v_it_files");
    std::fs::create_dir_all(&dir).unwrap();
    let annot_path = dir.join("boxes.json");
    let mut array = v2v_data::DataArray::new();
    for i in 0..30 {
        let boxes = if i < 10 {
            vec![v2v_frame::BoxCoord::new(0.1, 0.1, 0.2, 0.2, "obj")]
        } else {
            vec![]
        };
        array.insert(r(i, 30), Value::Boxes(boxes));
    }
    std::fs::write(&annot_path, v2v_data::json::to_annotation_json(&array)).unwrap();

    let mut catalog = Catalog::new();
    // 10-frame GOPs: the box-free span [10, 30) starts on a keyframe.
    catalog.add_video("src", marked_stream(60, 10));
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .data_array("bb", annot_path.to_string_lossy())
        .append_filtered("src", r(0, 1), Rational::from_int(1), |e| {
            bounding_box(e, "bb")
        })
        .build();
    let mut engine = V2vEngine::new(catalog);
    let report = engine.run(&spec).unwrap();
    assert!(report.dde_rewrites >= 1);
    assert!(report.stats.packets_copied > 0, "box-free tail copies");
    std::fs::remove_file(annot_path).unwrap();
}

#[test]
fn sql_locator_full_pipeline() {
    let mut t = v2v_data::Table::new(
        "video_objects",
        vec![
            "video".into(),
            "model".into(),
            "timestamp".into(),
            "frame_objects".into(),
        ],
    );
    for i in 0..60 {
        let boxes = if (20..40).contains(&i) {
            Value::Boxes(vec![v2v_frame::BoxCoord::new(0.3, 0.6, 0.2, 0.2, "zebra")])
        } else {
            Value::Boxes(vec![])
        };
        t.push_row(vec![
            Value::from("src"),
            Value::from("yolov5m"),
            Value::Rational(r(i, 30)),
            boxes,
        ]);
    }
    let mut db = Database::new();
    db.add_table(t);
    let mut catalog = Catalog::new();
    catalog.add_video("src", marked_stream(90, 30));
    let mut engine = V2vEngine::new(catalog).with_database(db);
    let spec = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .data_array(
            "dets",
            "sql:SELECT timestamp, frame_objects FROM video_objects \
             WHERE video = 'src' AND model = 'yolov5m'",
        )
        .append_filtered("src", r(0, 1), Rational::from_int(2), |e| {
            bounding_box(e, "dets")
        })
        .build();
    let report = engine.run(&spec).unwrap();
    assert_eq!(report.output.len(), 60);
    assert!(report.dde_rewrites >= 1);
    // Boxed frames render, the rest copy.
    assert!(report.stats.frames_encoded >= 20);
    assert!(report.stats.packets_copied > 0);
    // Markers intact everywhere (boxes avoid the marker corner).
    for (k, m) in markers_of(&report.output).into_iter().enumerate() {
        assert_eq!(m, Some(k as u32), "frame {k}");
    }
}
