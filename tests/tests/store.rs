//! Adaptive physical storage acceptance: pixel-identical variants
//! decode frame-for-frame identical to their originals, the planner's
//! variant choice never changes a single output byte across smart-cut,
//! scan, splice, and preview query shapes, dense variants provably cut
//! decode work on smart-cut-heavy queries, live appends after a
//! materialization stay byte-identical through `/subscribe`, and the
//! daemon's compactor evicts over-budget variants.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use v2v_container::{svc_to_bytes, VideoStream};
use v2v_core::{EngineConfig, V2vEngine};
use v2v_exec::{Catalog, ExecStats};
use v2v_frame::{marker, Frame, FrameType};
use v2v_integration_tests::{marked_output, marked_stream};
use v2v_plan::{VariantKind, VariantPolicy};
use v2v_serve::http::client;
use v2v_serve::sub::{read_delta, DeltaApplier};
use v2v_serve::{ServeConfig, StoreServeConfig, V2vServer};
use v2v_spec::builder::blur;
use v2v_spec::{OutputSettings, Spec, SpecBuilder};
use v2v_store::{transcode, TranscodeSpec};
use v2v_time::{r, Rational};

/// A long-GOP source: 300 frames, one keyframe. The worst case for
/// mid-GOP reads and the best case for sequential scans.
const LONG_GOP_FRAMES: usize = 300;
const LONG_GOP: u32 = 300;

/// Catalog holding the long-GOP source with dense and archive variants
/// attached (transcoded in memory — the store's disk path is covered by
/// its own tests and the serve suite).
fn catalog_with_variants() -> Catalog {
    let original = marked_stream(LONG_GOP_FRAMES, LONG_GOP);
    let mut c = Catalog::new();
    for kind in [VariantKind::Dense, VariantKind::Archive] {
        let variant = transcode(&original, TranscodeSpec::for_kind(kind)).unwrap();
        let covered = variant.len() as u64;
        c.add_variant("src", kind, Arc::new(variant), covered);
    }
    c.add_video("src", original);
    c
}

fn run_with(catalog: &Catalog, spec: &Spec, policy: VariantPolicy) -> (Vec<u8>, ExecStats) {
    let config = EngineConfig {
        variants: policy,
        ..EngineConfig::default()
    };
    let mut engine = V2vEngine::new(catalog.clone()).with_config(config);
    let report = engine.run(spec).expect("run");
    (svc_to_bytes(&report.output).unwrap(), report.stats)
}

/// A 1-second filtered read starting mid-GOP: the smart-cut shape.
fn smart_cut_spec() -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(3, 1), r(1, 1), |e| blur(e, 1.0))
        .build()
}

/// The whole source through a filter: the scan shape.
fn scan_spec() -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(0, 1), r(10, 1), |e| blur(e, 1.0))
        .build()
}

/// A mid-GOP copy splice: render head, copied tail.
fn splice_spec() -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(3, 1), Rational::from_int(2))
        .build()
}

#[test]
fn forced_variants_are_byte_identical_across_query_shapes() {
    let catalog = catalog_with_variants();
    for (name, spec) in [
        ("smart_cut", smart_cut_spec()),
        ("scan", scan_spec()),
        ("splice", splice_spec()),
    ] {
        let (baseline, _) = run_with(&catalog, &spec, VariantPolicy::Disabled);
        for policy in [
            VariantPolicy::Auto,
            VariantPolicy::Force(VariantKind::Dense),
            VariantPolicy::Force(VariantKind::Archive),
        ] {
            let (bytes, _) = run_with(&catalog, &spec, policy);
            assert_eq!(
                bytes, baseline,
                "{name} under {policy:?} must be byte-identical to the variant-free run"
            );
        }
    }
}

#[test]
fn dense_variant_cuts_decode_work_on_smart_cuts() {
    let catalog = catalog_with_variants();
    let spec = smart_cut_spec();
    let (baseline_bytes, baseline) = run_with(&catalog, &spec, VariantPolicy::Disabled);
    let (dense_bytes, dense) = run_with(&catalog, &spec, VariantPolicy::Force(VariantKind::Dense));
    assert_eq!(dense_bytes, baseline_bytes);
    // Original: roll in from the single keyframe at 0 (90 frames of
    // roll-in for a 30-frame read). Dense: keyframes every ~37 frames.
    assert!(
        dense.frames_decoded < baseline.frames_decoded,
        "dense {} vs original {}",
        dense.frames_decoded,
        baseline.frames_decoded
    );
    assert!(
        dense.bytes_decoded < baseline.bytes_decoded,
        "dense {} vs original {}",
        dense.bytes_decoded,
        baseline.bytes_decoded
    );
    // And the cost model agrees without forcing.
    let (auto_bytes, auto) = run_with(&catalog, &spec, VariantPolicy::Auto);
    assert_eq!(auto_bytes, baseline_bytes);
    assert_eq!(auto.frames_decoded, dense.frames_decoded);
}

#[test]
fn proxy_serves_preview_queries_byte_identically() {
    let original = marked_stream(120, 30);
    let proxy = transcode(&original, TranscodeSpec::for_kind(VariantKind::Proxy)).unwrap();
    assert_eq!(proxy.params().frame_ty, FrameType::gray8(32, 16));
    let covered = proxy.len() as u64;
    let mut catalog = Catalog::new();
    catalog.add_variant("src", VariantKind::Proxy, Arc::new(proxy), covered);
    catalog.add_video("src", original);

    // A preview query: output at the proxy's geometry.
    let output = OutputSettings {
        frame_ty: FrameType::gray8(32, 16),
        frame_dur: r(1, 30),
        gop_size: 30,
        quantizer: 0,
    };
    let spec = SpecBuilder::new(output)
        .video("src", "src.svc")
        .append_filtered("src", r(0, 1), r(2, 1), |e| blur(e, 1.0))
        .build();
    let (baseline, base_stats) = run_with(&catalog, &spec, VariantPolicy::Disabled);
    let (bytes, stats) = run_with(&catalog, &spec, VariantPolicy::Force(VariantKind::Proxy));
    assert_eq!(
        bytes, baseline,
        "proxy-served preview must be byte-identical"
    );
    assert!(
        stats.bytes_decoded < base_stats.bytes_decoded,
        "proxy {} vs original {}",
        stats.bytes_decoded,
        base_stats.bytes_decoded
    );

    // At full output geometry the proxy is NOT decode-sufficient and
    // must never be chosen, even when forced.
    let full = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(0, 1), r(2, 1), |e| blur(e, 1.0))
        .build();
    let (base_full, _) = run_with(&catalog, &full, VariantPolicy::Disabled);
    let (forced_full, _) = run_with(&catalog, &full, VariantPolicy::Force(VariantKind::Proxy));
    assert_eq!(forced_full, base_full);
}

/// A stream whose frames carry markers plus seeded pseudo-random
/// content, so transcode equivalence is exercised on non-trivial
/// bitstreams, not just black frames.
fn noisy_stream(n: usize, gop: u32, seed: u64) -> VideoStream {
    let ty = FrameType::gray8(64, 32);
    let params = v2v_codec::CodecParams::new(ty, gop, 0);
    let mut w = v2v_container::StreamWriter::new(params, Rational::ZERO, r(1, 30));
    let mut state = seed | 1;
    for i in 0..n {
        let mut f = Frame::black(ty);
        for p in f.planes_mut() {
            for b in p.data_mut() {
                // xorshift64: cheap deterministic noise.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *b = (state >> 24) as u8;
            }
        }
        marker::embed(&mut f, i as u32);
        w.push_frame(&f).unwrap();
    }
    w.finish().unwrap()
}

fn frames_of(s: &VideoStream) -> Vec<Vec<u8>> {
    let (frames, _) = s.decode_range(0, s.len()).unwrap();
    frames
        .iter()
        .map(|f| {
            f.planes()
                .iter()
                .flat_map(|p| p.data().iter().copied())
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pixel-identical variants decode frame-for-frame identical to the
    /// original, for arbitrary content and GOP cadences.
    #[test]
    fn prop_pixel_identical_variants_decode_identically(
        n in 8usize..48,
        gop in 2u32..16,
        seed in any::<u64>(),
    ) {
        let original = noisy_stream(n, gop, seed);
        let truth = frames_of(&original);
        for kind in [VariantKind::Dense, VariantKind::Archive] {
            let variant = transcode(&original, TranscodeSpec::for_kind(kind)).unwrap();
            prop_assert_eq!(variant.len(), original.len());
            prop_assert_eq!(
                &frames_of(&variant),
                &truth,
                "{} must decode identically",
                kind.name()
            );
        }
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("v2v_store_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The live history for the append regression: 150 frames delivered as
/// a 120-frame prefix plus one appended installment.
fn live_prefix(n: usize) -> VideoStream {
    let s = marked_stream(150, 30);
    let packets = s.copy_packet_range(0, n, s.start()).unwrap();
    VideoStream::new(*s.params(), s.start(), s.frame_dur(), packets).unwrap()
}

fn installment(from: usize, to: usize) -> Vec<u8> {
    let s = marked_stream(150, 30);
    let at = s.start() + s.frame_dur() * Rational::from_int(from as i64);
    let packets = s.copy_packet_range(from, to, at).unwrap();
    let tail = VideoStream::new(*s.params(), at, s.frame_dur(), packets).unwrap();
    svc_to_bytes(&tail).unwrap()
}

fn growth_spec() -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(0, 1), r(10, 1), |e| blur(e, 1.0))
        .build()
}

/// Ground truth at a given source length, with no store anywhere.
fn direct_bytes(frames: usize) -> Vec<u8> {
    let spec = growth_spec();
    let mut c = Catalog::new();
    c.add_video("src", live_prefix(frames));
    let mut engine = V2vEngine::new(c);
    engine.bind(&spec).expect("bind");
    let mut clamped = spec.clone();
    clamped.time_domain = v2v_spec::servable_domain(&spec, &engine.catalog().source_infos());
    let report = engine.run(&clamped).expect("direct run");
    svc_to_bytes(&report.output).unwrap()
}

/// The live-source regression: a variant materialized over the
/// committed prefix must keep `/subscribe` byte-identical across later
/// appends — the variant covers the old prefix, the original serves the
/// appended tail.
#[test]
fn append_after_materialize_keeps_subscribe_byte_identical() {
    let dir = temp_dir("append");
    let mut catalog = Catalog::new();
    catalog.add_video("src", live_prefix(120));
    let config = ServeConfig {
        store: Some(StoreServeConfig::at(&dir)),
        ..ServeConfig::default()
    };
    let mut handle = V2vServer::new(catalog)
        .with_config(config)
        .start("127.0.0.1:0")
        .unwrap();
    let addr = handle.addr();

    // Materialize dense over the 120-frame committed prefix.
    let resp = client::request(addr, "POST", "/store/materialize/src/dense", b"").unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v.get("covered_frames").and_then(|x| x.as_u64()), Some(120));

    let mut resp = client::open_stream(
        addr,
        "POST",
        "/subscribe",
        growth_spec().to_json().as_bytes(),
    )
    .expect("subscribe");
    assert_eq!(resp.status, 200);
    resp.reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    let mut applier = DeltaApplier::new();
    let (h0, svc0) = read_delta(&mut resp.reader).unwrap().expect("first delta");
    let cum = applier.apply(&h0, &svc0).unwrap();
    assert_eq!(cum.len(), 120);
    assert_eq!(
        svc_to_bytes(cum).unwrap(),
        direct_bytes(120),
        "prefix render over the dense variant must match a storeless cold run"
    );

    // Append the tail the variant does not cover.
    let append = client::request(addr, "POST", "/append/src", &installment(120, 150)).unwrap();
    assert_eq!(
        append.status,
        200,
        "{}",
        String::from_utf8_lossy(&append.body)
    );

    let (h1, svc1) = read_delta(&mut resp.reader).unwrap().expect("second delta");
    let cum = applier.apply(&h1, &svc1).unwrap();
    assert_eq!(cum.len(), 150);
    assert_eq!(
        svc_to_bytes(cum).unwrap(),
        direct_bytes(150),
        "post-append delta must stay byte-identical: variant covers the old prefix only"
    );

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Budget enforcement end to end: a demanded-but-over-budget variant is
/// evicted by the compaction pass.
#[test]
fn compaction_evicts_over_budget_variants() {
    let dir = temp_dir("budget");
    let mut catalog = Catalog::new();
    catalog.add_video("src", marked_stream(LONG_GOP_FRAMES, LONG_GOP));
    let config = ServeConfig {
        store: Some(StoreServeConfig {
            root: dir.clone(),
            budget_bytes: 1, // nothing fits
            compact_interval: Duration::ZERO,
        }),
        ..ServeConfig::default()
    };
    let handle = V2vServer::new(catalog)
        .with_config(config)
        .start("127.0.0.1:0")
        .unwrap();
    let addr = handle.addr();

    // Create smart-cut demand so the drop is the budget's doing, not
    // the wanted-filter's.
    let spec = smart_cut_spec();
    let q = client::post_query(addr, spec.to_json().as_bytes()).unwrap();
    assert_eq!(q.status, 200, "{}", String::from_utf8_lossy(&q.body));

    let resp = client::request(addr, "POST", "/store/materialize/src/dense", b"").unwrap();
    assert_eq!(resp.status, 200);
    let resp = client::request(addr, "POST", "/store/compact", b"").unwrap();
    assert_eq!(resp.status, 200);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    let actions = v
        .get("actions")
        .and_then(|a| a.as_array())
        .cloned()
        .unwrap();
    assert!(
        actions.iter().any(|a| {
            a.get("kind").and_then(|k| k.as_str()) == Some("dense")
                && a.get("op").and_then(|o| o.as_str()) == Some("drop")
        }),
        "over-budget dense variant must be evicted: {v}"
    );

    let ls = client::request(addr, "GET", "/store", b"").unwrap();
    let v: serde_json::Value = serde_json::from_slice(&ls.body).unwrap();
    assert_eq!(v.get("managed_bytes").and_then(|x| x.as_u64()), Some(0));
    let _ = std::fs::remove_dir_all(&dir);
}
