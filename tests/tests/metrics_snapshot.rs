//! CI metrics-snapshot job: golden-trace checks over example queries.
//!
//! Drives the built `v2v` binary over four deterministic example queries
//! (Q1–Q4: aligned clip, mid-GOP clip, splice, filtered render) with
//! `--trace`, reduces each trace artifact to its *stable* subset —
//! schema version, rewrites fired, per-operator frames
//! decoded/copied/encoded, per-segment GOP-cache hits/misses — and
//! diffs it against committed goldens under `tests/golden/`. Wall
//! times, spans, part counts, and byte counts are excluded: they are
//! machine- or codec-tuning-dependent.
//!
//! The runs use the *parallel* scheduler deliberately: the shared GOP
//! cache decodes each GOP exactly once and attributes every hit/miss to
//! exactly one cursor, so per-segment counts are schedule-independent
//! for these queries (their segments read disjoint GOP sets). This job
//! is what pins that invariant; it used to require `--serial`.
//!
//! Regenerate goldens after an intentional optimizer/executor change:
//!
//! ```text
//! cargo build --release -p v2v-cli
//! V2V_UPDATE_GOLDENS=1 cargo test --release -p v2v-integration-tests --test metrics_snapshot
//! ```
//!
//! When `V2V_TRACE_OUT_DIR` is set, full trace artifacts are copied
//! there (CI uploads them as workflow artifacts).
//!
//! Skips silently when the `v2v` binary has not been built.

use std::path::PathBuf;
use std::process::Command;
use v2v_integration_tests::{marked_output, marked_stream};
use v2v_spec::builder::blur;
use v2v_spec::{Spec, SpecBuilder};
use v2v_time::{r, Rational};

fn v2v_binary() -> Option<PathBuf> {
    let mut dir = std::env::current_exe().ok()?;
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let candidate = dir.join("v2v");
    candidate.exists().then_some(candidate)
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join("v2v_metrics_snapshot");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden")
}

/// The example queries: `(name, spec)` against one 300-frame gop-30
/// marked source. Each exercises a different rewrite mix.
fn example_queries(video_path: &str) -> Vec<(&'static str, Spec)> {
    let src = |b: SpecBuilder| b.video("src", video_path);
    vec![
        // Q1: keyframe-aligned clip → pure stream copy.
        (
            "q1_aligned_clip",
            src(SpecBuilder::new(marked_output()))
                .append_clip("src", r(1, 1), Rational::from_int(2))
                .build(),
        ),
        // Q2: mid-GOP clip → smart cut (re-encoded head, copied rest).
        (
            "q2_smart_cut",
            src(SpecBuilder::new(marked_output()))
                .append_clip("src", r(1, 2), Rational::from_int(2))
                .build(),
        ),
        // Q3: splice of two aligned clips → concat flatten + two copies.
        (
            "q3_splice",
            src(SpecBuilder::new(marked_output()))
                .append_clip("src", r(1, 1), Rational::from_int(1))
                .append_clip("src", r(3, 1), Rational::from_int(1))
                .build(),
        ),
        // Q4: filtered clip → fused render, temporally sharded.
        (
            "q4_filtered",
            src(SpecBuilder::new(marked_output()))
                .append_filtered("src", r(0, 1), Rational::from_int(4), |e| blur(e, 1.0))
                .build(),
        ),
    ]
}

/// Field lookup that panics with the path on a malformed trace.
fn g<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
    v.get(key)
        .unwrap_or_else(|| panic!("trace missing field '{key}'"))
}

/// Reduces a full `RunTrace` JSON document to the machine-independent
/// subset the goldens pin.
fn stable_subset(trace: &serde_json::Value) -> serde_json::Value {
    let rewrites = g(g(trace, "rewrites"), "events")
        .as_array()
        .expect("events array")
        .iter()
        .map(|e| {
            serde_json::json!({
                "rule": g(e, "rule"),
                "out_start": g(e, "out_start"),
                "nodes_before": g(e, "nodes_before"),
                "nodes_after": g(e, "nodes_after"),
            })
        })
        .collect::<Vec<_>>();
    let seg_subset = |s: &serde_json::Value| {
        let stats = g(s, "stats");
        serde_json::json!({
            "kind": g(s, "kind"),
            "out_start": g(s, "out_start"),
            "frames": g(s, "frames"),
            "frames_decoded": g(stats, "frames_decoded"),
            "frames_encoded": g(stats, "frames_encoded"),
            "packets_copied": g(stats, "packets_copied"),
            "seeks": g(stats, "seeks"),
            "gop_cache_hits": g(stats, "gop_cache_hits"),
            "gop_cache_misses": g(stats, "gop_cache_misses"),
        })
    };
    let segments = g(g(trace, "exec"), "segments")
        .as_array()
        .expect("segments array")
        .iter()
        .map(seg_subset)
        .collect::<Vec<_>>();
    let totals = g(g(trace, "exec"), "totals");
    let cache = g(totals, "cache");
    serde_json::json!({
        "schema_version": g(trace, "schema_version"),
        "dde_rewrites": g(trace, "dde_rewrites"),
        "rewrites": rewrites,
        "plan_stats": g(trace, "plan_stats"),
        "segments": segments,
        "totals": {
            "frames_decoded": g(totals, "frames_decoded"),
            "frames_encoded": g(totals, "frames_encoded"),
            "packets_copied": g(totals, "packets_copied"),
            "seeks": g(totals, "seeks"),
            "segments": g(totals, "segments"),
            "gop_cache_hits": g(totals, "gop_cache_hits"),
            "gop_cache_misses": g(totals, "gop_cache_misses"),
            // The render-cache / work-sharing counter block: these
            // runs are uncached and unshared, so the goldens pin the
            // fields (schema) at zero rather than measured reuse.
            "cache": {
                "result_hits": g(cache, "result_hits"),
                "segment_hits": g(cache, "segment_hits"),
                "inflight_hits": g(cache, "inflight_hits"),
                "shared_segment_hits": g(cache, "shared_segment_hits"),
                "mem_hits": g(cache, "mem_hits"),
                "evictions": g(cache, "evictions"),
            },
        },
    })
}

#[test]
fn traces_match_committed_goldens() {
    let Some(bin) = v2v_binary() else {
        eprintln!("skipping: v2v binary not built");
        return;
    };
    let update = std::env::var("V2V_UPDATE_GOLDENS").is_ok();
    let artifact_dir = std::env::var("V2V_TRACE_OUT_DIR").ok().map(PathBuf::from);
    if let Some(dir) = &artifact_dir {
        std::fs::create_dir_all(dir).expect("artifact dir");
    }

    let dir = workdir();
    let video_path = dir.join("src.svc");
    v2v_container::write_svc(&marked_stream(300, 30), &video_path).unwrap();

    let mut failures = Vec::new();
    for (name, spec) in example_queries(&video_path.to_string_lossy()) {
        let spec_path = dir.join(format!("{name}.json"));
        std::fs::write(&spec_path, spec.to_json()).unwrap();
        let out_path = dir.join(format!("{name}.svc"));
        let trace_path = dir.join(format!("{name}.trace.json"));
        let output = Command::new(&bin)
            .args([
                "run",
                spec_path.to_str().unwrap(),
                "-o",
                out_path.to_str().unwrap(),
                "--trace",
                trace_path.to_str().unwrap(),
            ])
            .output()
            .expect("spawn v2v run --trace");
        assert!(
            output.status.success(),
            "{name}: {}",
            String::from_utf8_lossy(&output.stderr)
        );

        let trace_text = std::fs::read_to_string(&trace_path).expect("trace written");
        if let Some(adir) = &artifact_dir {
            std::fs::copy(&trace_path, adir.join(format!("{name}.trace.json"))).unwrap();
        }
        let trace: serde_json::Value = serde_json::from_str(&trace_text).expect("trace parses");
        let subset = stable_subset(&trace);
        let subset_pretty = serde_json::to_string_pretty(&subset).unwrap();

        let golden_path = golden_dir().join(format!("{name}.trace.json"));
        if update {
            std::fs::write(&golden_path, format!("{subset_pretty}\n")).unwrap();
            eprintln!("updated {}", golden_path.display());
            continue;
        }
        let golden_text = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden {} ({e}); regenerate with V2V_UPDATE_GOLDENS=1",
                golden_path.display()
            )
        });
        let golden: serde_json::Value = serde_json::from_str(&golden_text).expect("golden parses");
        if subset != golden {
            failures.push(format!(
                "{name}: trace drifted from golden {}\n--- measured ---\n{subset_pretty}\n--- golden ---\n{}",
                golden_path.display(),
                serde_json::to_string_pretty(&golden).unwrap()
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

#[test]
fn golden_rewrites_cover_the_rule_set() {
    // Sanity on the committed goldens themselves (no binary needed):
    // together the four example queries must exercise the core rewrite
    // rules, or the snapshot job is pinning a trivial trace.
    let mut fired = std::collections::BTreeSet::new();
    let mut missing = Vec::new();
    for name in [
        "q1_aligned_clip",
        "q2_smart_cut",
        "q3_splice",
        "q4_filtered",
    ] {
        let path = golden_dir().join(format!("{name}.trace.json"));
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let v: serde_json::Value = serde_json::from_str(&text).expect("golden parses");
                for e in g(&v, "rewrites").as_array().expect("rewrites array") {
                    fired.insert(g(e, "rule").as_str().expect("rule string").to_string());
                }
            }
            Err(_) => missing.push(path.display().to_string()),
        }
    }
    assert!(
        missing.is_empty(),
        "goldens not committed: {missing:?} (run with V2V_UPDATE_GOLDENS=1)"
    );
    for rule in ["stream_copy", "smart_cut", "shard"] {
        assert!(
            fired.contains(rule),
            "no golden exercises '{rule}': {fired:?}"
        );
    }
}
