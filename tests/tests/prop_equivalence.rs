//! Property-based end-to-end equivalence: random specs over lossless
//! sources must produce identical frames through
//!
//! * the optimized pipeline (dde + optimizer + parallel execution),
//! * the optimized pipeline with every copy-class pass disabled,
//! * the naive unoptimized executor.

use proptest::prelude::*;
use v2v_core::{EngineConfig, V2vEngine};
use v2v_exec::Catalog;
use v2v_integration_tests::{marked_output, marked_stream, markers_of};
use v2v_spec::builder::{blur, grid4, if_then_else};
use v2v_spec::{DataExpr, RenderExpr, SpecBuilder};
use v2v_time::r;

/// One randomly chosen segment recipe.
#[derive(Clone, Debug)]
enum SegKind {
    Clip { start_frames: u8, len_frames: u8 },
    Blur { start_frames: u8, len_frames: u8 },
    Grid { start_frames: u8 },
    Branch { start_frames: u8, threshold: i64 },
}

fn seg_strategy() -> impl Strategy<Value = SegKind> {
    prop_oneof![
        (0u8..60, 4u8..40).prop_map(|(s, l)| SegKind::Clip {
            start_frames: s,
            len_frames: l
        }),
        (0u8..60, 4u8..20).prop_map(|(s, l)| SegKind::Blur {
            start_frames: s,
            len_frames: l
        }),
        (0u8..40).prop_map(|s| SegKind::Grid { start_frames: s }),
        (0u8..60, 0i64..4).prop_map(|(s, t)| SegKind::Branch {
            start_frames: s,
            threshold: t
        }),
    ]
}

fn build_spec(segs: &[SegKind]) -> v2v_spec::Spec {
    let mut b = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .data_array("k", "catalog");
    for seg in segs {
        match seg {
            SegKind::Clip {
                start_frames,
                len_frames,
            } => {
                b = b.append_clip(
                    "src",
                    r(*start_frames as i64, 30),
                    r(*len_frames as i64, 30),
                );
            }
            SegKind::Blur {
                start_frames,
                len_frames,
            } => {
                b = b.append_filtered(
                    "src",
                    r(*start_frames as i64, 30),
                    r(*len_frames as i64, 30),
                    |e| blur(e, 0.8),
                );
            }
            SegKind::Grid { start_frames } => {
                let s = *start_frames as i64;
                b = b.append_with(r(10, 30), move |out_start| {
                    let cell = |off: i64| RenderExpr::FrameRef {
                        video: "src".into(),
                        time: v2v_time::AffineTimeMap::shift(r(s + off, 30) - out_start),
                    };
                    grid4(cell(0), cell(30), cell(60), cell(90))
                });
            }
            SegKind::Branch {
                start_frames,
                threshold,
            } => {
                let s = *start_frames as i64;
                let thr = *threshold;
                b = b.append_with(r(12, 30), move |out_start| {
                    if_then_else(
                        DataExpr::lt(DataExpr::array("k"), DataExpr::constant(thr)),
                        RenderExpr::FrameRef {
                            video: "src".into(),
                            time: v2v_time::AffineTimeMap::shift(r(s, 30) - out_start),
                        },
                        RenderExpr::FrameRef {
                            video: "src".into(),
                            time: v2v_time::AffineTimeMap::shift(r(s + 120, 30) - out_start),
                        },
                    )
                });
            }
        }
    }
    b.build()
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_video("src", marked_stream(300, 25));
    // Modulo data array driving Branch segments.
    let mut k = v2v_data::DataArray::new();
    for i in 0..300 {
        k.insert(r(i, 30), v2v_data::Value::Int(i % 7));
    }
    c.add_array("k", k);
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_executors_agree(segs in prop::collection::vec(seg_strategy(), 1..4)) {
        let spec = build_spec(&segs);
        if spec.time_domain.is_empty() {
            return Ok(());
        }
        let cat = catalog();

        let mut full = V2vEngine::new(cat.clone());
        let a = full.run(&spec).unwrap();

        let mut cfg = EngineConfig::default();
        cfg.optimizer.stream_copy = false;
        cfg.optimizer.smart_cut = false;
        cfg.optimizer.shard = false;
        cfg.exec.parallel = false;
        cfg.data_rewrites = false;
        let mut plain = V2vEngine::new(cat.clone()).with_config(cfg);
        let b = plain.run(&spec).unwrap();

        let mut naive = V2vEngine::new(cat);
        let c = naive.run_unoptimized(&spec).unwrap();

        let ma = markers_of(&a.output);
        prop_assert_eq!(&ma, &markers_of(&b.output));
        prop_assert_eq!(&ma, &markers_of(&c.output));

        // Raster-level agreement, not just markers.
        let (fa, _) = a.output.decode_range(0, a.output.len()).unwrap();
        let (fb, _) = b.output.decode_range(0, b.output.len()).unwrap();
        let (fc, _) = c.output.decode_range(0, c.output.len()).unwrap();
        prop_assert_eq!(&fa, &fb);
        prop_assert_eq!(&fa, &fc);
    }
}
