//! Stress test for [`GopCache`]'s exactly-once decode guarantee: many
//! threads racing over overlapping GOP ranges must trigger exactly one
//! decode per unique GOP, share the decoded frames, and never deadlock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use v2v_exec::{GopCache, GopFrames};
use v2v_frame::{marker, Frame, FrameType};

const THREADS: usize = 16;
const GOPS: u64 = 24;
const VIDEOS: [&str; 2] = ["a", "b"];
const FRAMES_PER_GOP: usize = 4;

/// A fake decode: frames whose markers encode (video, gop) so sharing
/// across threads can be verified against the key that was asked for.
fn decode(video_idx: usize, gop: u64) -> GopFrames {
    let ty = FrameType::gray8(64, 32);
    let frames = (0..FRAMES_PER_GOP)
        .map(|k| {
            let mut f = Frame::black(ty);
            marker::embed(
                &mut f,
                (video_idx as u32) << 16 | (gop as u32) << 4 | k as u32,
            );
            Arc::new(f)
        })
        .collect::<Vec<_>>();
    Arc::new(frames)
}

#[test]
fn sixteen_threads_decode_each_gop_exactly_once() {
    // Capacity far above the working set: an eviction would force a
    // legitimate second decode and invalidate the exactly-once count.
    let cache = Arc::new(GopCache::new(1_000_000));
    let decodes = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let decodes = Arc::clone(&decodes);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut served = 0u64;
                // Each thread walks every (video, gop) pair, but starts
                // at a different offset and strides differently, so at
                // any instant many threads contend on the same key
                // while others race ahead.
                let total = VIDEOS.len() as u64 * GOPS;
                let stride = (t as u64 % 5) + 1;
                for i in 0..total {
                    let j = (t as u64 + i * stride) % total;
                    let (vi, gop) = ((j / GOPS) as usize, j % GOPS);
                    let (frames, _was_hit) = cache
                        .get_or_insert_with::<std::convert::Infallible>(VIDEOS[vi], gop, || {
                            decodes.fetch_add(1, Ordering::Relaxed);
                            // Widen the race window so concurrent
                            // requesters of this key pile up on the
                            // condvar rather than winning by luck.
                            std::thread::sleep(std::time::Duration::from_micros(200));
                            Ok(decode(vi, gop))
                        })
                        .expect("decode is infallible");
                    assert_eq!(frames.len(), FRAMES_PER_GOP);
                    // The shared frames must be the ones for the key we
                    // asked for, not some other racer's GOP.
                    let m = marker::read(&frames[0]).expect("marker frame");
                    assert_eq!(m, (vi as u32) << 16 | (gop as u32) << 4);
                    served += 1;
                }
                served
            })
        })
        .collect();

    let mut total_served = 0u64;
    for h in handles {
        total_served += h.join().expect("no panics, no deadlock");
    }

    let unique = VIDEOS.len() as u64 * GOPS;
    assert_eq!(total_served, THREADS as u64 * unique);
    assert_eq!(
        decodes.load(Ordering::Relaxed),
        unique,
        "every GOP must decode exactly once process-wide"
    );
    assert_eq!(cache.misses(), unique);
    assert_eq!(cache.hits(), THREADS as u64 * unique - unique);
}
