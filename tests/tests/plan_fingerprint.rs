//! Properties of the canonical plan fingerprint (`v2v_plan::fingerprint`):
//!
//! * **invariant** under how the optimizer happened to carve the plan —
//!   sharding on/off, any sharding factor, rule application order (the
//!   smart-cut head split vs. whole-clip copy decisions permute segment
//!   boundaries, not semantics);
//! * **sensitive** to anything that changes the output bytes — clip
//!   ranges, programs, output parameters, and the *content* of the
//!   source streams (a name does not pin bytes).

use proptest::prelude::*;
use v2v_exec::Catalog;
use v2v_integration_tests::{marked_output, marked_stream};
use v2v_plan::{
    lower_spec, optimize, plan_fingerprint, OptimizerConfig, SourceDigests, VideoDigest,
};
use v2v_spec::builder::blur;
use v2v_spec::{Spec, SpecBuilder};
use v2v_time::{r, Rational};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_video("src", marked_stream(240, 30));
    c
}

fn digests(catalog: &Catalog) -> SourceDigests {
    let mut d = SourceDigests::default();
    d.videos.insert(
        "src".into(),
        VideoDigest::of(catalog.video("src").expect("bound")),
    );
    d
}

/// A mixed spec: a copyable clip, a rendered filter (long enough to
/// shard), and a second clip — exercises copy, render, and merge paths.
fn mixed_spec() -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(1, 1), Rational::from_int(2))
        .append_filtered("src", r(0, 1), Rational::from_int(4), |e| blur(e, 1.0))
        .append_clip("src", r(5, 1), Rational::from_int(1))
        .build()
}

fn fingerprint_with(spec: &Spec, catalog: &Catalog, cfg: &OptimizerConfig) -> u64 {
    let logical = lower_spec(spec).expect("lower");
    let plan = optimize(&logical, &catalog.plan_context(), cfg).expect("optimize");
    plan_fingerprint(&plan, &digests(catalog))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// However the optimizer shards (or refuses to shard) render
    /// segments, the canonical fingerprint is the one the default
    /// configuration produces.
    #[test]
    fn fingerprint_invariant_under_rewrite_carving(
        shard in any::<bool>(),
        shard_gops in 1u64..8,
        shard_min_frames in 1u64..256,
        conservative_tail in any::<bool>(),
    ) {
        let catalog = catalog();
        let spec = mixed_spec();
        let baseline = fingerprint_with(&spec, &catalog, &OptimizerConfig::default());
        let cfg = OptimizerConfig {
            shard,
            shard_gops,
            shard_min_frames,
            conservative_tail,
            ..OptimizerConfig::default()
        };
        prop_assert_eq!(fingerprint_with(&spec, &catalog, &cfg), baseline);
    }

    /// Clip-range changes (different output semantics) always move the
    /// fingerprint, whatever the sharding configuration.
    #[test]
    fn fingerprint_tracks_spec_semantics(
        shard_gops in 1u64..8,
        start_frames in 0i64..60,
    ) {
        let catalog = catalog();
        let cfg = OptimizerConfig { shard_gops, ..OptimizerConfig::default() };
        let base = mixed_spec();
        let shifted = SpecBuilder::new(marked_output())
            .video("src", "src.svc")
            .append_clip("src", r(1, 1), Rational::from_int(2))
            .append_filtered(
                "src",
                r(start_frames + 1, 30),
                Rational::from_int(4),
                |e| blur(e, 1.0),
            )
            .append_clip("src", r(5, 1), Rational::from_int(1))
            .build();
        prop_assert_ne!(
            fingerprint_with(&base, &catalog, &cfg),
            fingerprint_with(&shifted, &catalog, &cfg)
        );
    }
}

/// Re-encoding the source in place (same name, same frame count,
/// different pixels) must change the fingerprint: keys are content-
/// addressed, not name-addressed.
#[test]
fn fingerprint_tracks_source_bytes() {
    let spec = mixed_spec();
    let catalog_a = catalog();

    // Same shape, different content: markers offset by 1000.
    let ty = v2v_frame::FrameType::gray8(64, 32);
    let params = v2v_codec::CodecParams::new(ty, 30, 0);
    let mut w = v2v_container::StreamWriter::new(params, Rational::ZERO, r(1, 30));
    for i in 0..240 {
        let mut f = v2v_frame::Frame::black(ty);
        v2v_frame::marker::embed(&mut f, 1000 + i as u32);
        w.push_frame(&f).unwrap();
    }
    let mut catalog_b = Catalog::new();
    catalog_b.add_video("src", w.finish().unwrap());

    let cfg = OptimizerConfig::default();
    assert_ne!(
        fingerprint_with(&spec, &catalog_a, &cfg),
        fingerprint_with(&spec, &catalog_b, &cfg)
    );
}

/// The fingerprint must also differ from an unrelated query's (sanity:
/// canonicalization does not collapse distinct plans).
#[test]
fn distinct_queries_have_distinct_fingerprints() {
    let catalog = catalog();
    let cfg = OptimizerConfig::default();
    let other = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(0, 1), Rational::from_int(3), |e| blur(e, 2.0))
        .build();
    assert_ne!(
        fingerprint_with(&mixed_spec(), &catalog, &cfg),
        fingerprint_with(&other, &catalog, &cfg)
    );
}
