//! Scale-out acceptance tests: a coordinator dispatching segments to
//! worker daemons must produce output byte-identical to a
//! single-process run — across worker counts, under worker death with
//! re-dispatch, and under corrupt fragments on the wire (rejected and
//! re-rendered, never spliced).

use std::net::TcpListener;
use v2v_container::{fragment_to_wire, svc_to_bytes};
use v2v_core::V2vEngine;
use v2v_exec::Catalog;
use v2v_integration_tests::{marked_output, marked_stream};
use v2v_serve::cluster::WorkerPool;
use v2v_serve::http::{client, read_request, write_response, Response};
use v2v_serve::{ServeConfig, ServeRole, V2vServer};
use v2v_spec::builder::blur;
use v2v_spec::Spec;

/// Every daemon in these tests builds the same in-memory catalog, so
/// content digests (and therefore segment keys) agree across
/// processes exactly as they would over a shared object store.
fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_video("src", marked_stream(300, 30));
    c
}

/// One-second GOP-aligned blurred clips of the shared source; each
/// clip becomes one keyed `Render` segment.
fn clip_query(clips: &[i64]) -> Spec {
    let mut b = v2v_spec::SpecBuilder::new(marked_output()).video("src", "src.svc");
    for &clip in clips {
        b = b.append_filtered("src", v2v_time::r(clip, 1), v2v_time::r(1, 1), |e| {
            blur(e, 1.0)
        });
    }
    b.build()
}

/// Ground truth: a plain single-process engine run.
fn direct_bytes(spec: &Spec) -> Vec<u8> {
    let report = V2vEngine::new(catalog()).run(spec).expect("direct run");
    svc_to_bytes(&report.output).unwrap()
}

fn start_worker() -> v2v_serve::ServerHandle {
    let config = ServeConfig {
        role: ServeRole::Worker,
        ..ServeConfig::default()
    };
    V2vServer::new(catalog())
        .with_config(config)
        .start("127.0.0.1:0")
        .expect("worker start")
}

fn start_coordinator(workers: Vec<String>) -> v2v_serve::ServerHandle {
    let mut config = ServeConfig {
        workers,
        ..ServeConfig::default()
    };
    // One effective core would serialize the scheduler's dispatch loop;
    // four workers per render keep remote dispatches concurrent.
    config.engine.exec.num_threads = 4;
    V2vServer::new(catalog())
        .with_config(config)
        .start("127.0.0.1:0")
        .expect("coordinator start")
}

fn status(addr: std::net::SocketAddr) -> serde_json::Value {
    let resp = client::request(addr, "GET", "/status", b"").expect("status");
    serde_json::from_slice(&resp.body).expect("status json")
}

fn pool_u64(v: &serde_json::Value, field: &str) -> u64 {
    v.get("pool")
        .and_then(|p| p.get(field))
        .and_then(|x| x.as_u64())
        .unwrap_or_else(|| panic!("status missing pool.{field}: {v}"))
}

/// The byte-identity matrix: {0 (local), 1, 2, 4 workers} ×
/// {Q1 aligned clip, Q3 splice, overlapping pair}. Every response must
/// equal the single-process reference bytes, and with workers present
/// the pool counters must prove segments actually went remote.
#[test]
fn multi_worker_output_is_byte_identical() {
    let specs = [
        clip_query(&[0]),    // Q1: one aligned keyed segment
        clip_query(&[0, 2]), // Q3: splice of two segments
        clip_query(&[0, 1]), // overlap pair, first
        clip_query(&[1, 2]), // overlap pair, second (shares clip 1)
    ];
    let expects: Vec<Vec<u8>> = specs.iter().map(direct_bytes).collect();

    for n_workers in [0usize, 1, 2, 4] {
        let workers: Vec<_> = (0..n_workers).map(|_| start_worker()).collect();
        let addrs: Vec<String> = workers.iter().map(|w| w.addr().to_string()).collect();
        let coord = start_coordinator(addrs);
        let mut remote_segments = 0u64;
        for (spec, expect) in specs.iter().zip(&expects) {
            let resp = client::post_query(coord.addr(), spec.to_json().as_bytes()).unwrap();
            assert_eq!(
                resp.status,
                200,
                "workers={n_workers}: {}",
                String::from_utf8_lossy(&resp.body)
            );
            assert_eq!(
                resp.body, *expect,
                "workers={n_workers}: response must be byte-identical to a local run"
            );
            let stats: serde_json::Value =
                serde_json::from_str(resp.header_value("x-v2v-stats").unwrap()).unwrap();
            remote_segments += stats
                .get("cache")
                .and_then(|c| c.get("remote_segments"))
                .and_then(|x| x.as_u64())
                .unwrap_or(0);
        }
        let v = status(coord.addr());
        if n_workers == 0 {
            assert!(v.get("pool").map_or(true, |p| p.is_null()), "no pool: {v}");
            assert_eq!(remote_segments, 0);
        } else {
            assert_eq!(pool_u64(&v, "workers"), n_workers as u64);
            assert_eq!(pool_u64(&v, "alive"), n_workers as u64);
            assert!(
                pool_u64(&v, "dispatched") >= 1,
                "segments must go remote: {v}"
            );
            assert!(pool_u64(&v, "fragment_bytes_in") > 0, "{v}");
            assert!(pool_u64(&v, "fragment_bytes_out") > 0, "{v}");
            assert!(
                remote_segments >= 1,
                "x-v2v-stats must attribute remote segments"
            );
        }
    }
}

/// A worker that dies mid-render: its listener accepts the connection
/// and immediately closes it. Segments homed on it must re-dispatch to
/// the next worker on the ring and the output must stay byte-identical.
#[test]
fn killed_worker_redispatches_to_ring_successor() {
    let live = start_worker();
    let spec = clip_query(&[0, 1]);
    let expect = direct_bytes(&spec);
    let run = V2vEngine::new(catalog()).prepare(&spec).expect("prepare");
    let keys: Vec<u64> = run.segment_keys().iter().map(|k| k.unwrap()).collect();

    // Re-bind the dead listener until its (ephemeral-port-derived) ring
    // position makes it the home worker for at least one of the spec's
    // segments — then a re-dispatch is guaranteed, not probabilistic.
    let mut found = None;
    let mut rejected = Vec::new(); // hold ports so each bind is distinct
    for _ in 0..64 {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = l.local_addr().unwrap();
        let pool = WorkerPool::new(&[a.to_string(), live.addr().to_string()]).unwrap();
        if keys.iter().any(|&k| pool.candidates(k).first() == Some(&0)) {
            found = Some((l, a));
            break;
        }
        rejected.push(l);
    }
    drop(rejected);
    let (dead_listener, dead_addr) = found.expect("a port whose ring homes a segment");
    std::thread::spawn(move || {
        for conn in dead_listener.incoming() {
            drop(conn); // connection torn down mid-request
        }
    });
    let addrs = vec![dead_addr.to_string(), live.addr().to_string()];

    let coord = start_coordinator(addrs);
    let resp = client::post_query(coord.addr(), spec.to_json().as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(
        resp.body, expect,
        "re-dispatched run must stay byte-identical"
    );

    let v = status(coord.addr());
    assert!(
        pool_u64(&v, "re_dispatched") >= 1,
        "dead worker's segments must re-dispatch: {v}"
    );
    assert_eq!(pool_u64(&v, "alive"), 1, "dead worker marked down: {v}");
}

/// A worker that corrupts fragments on the wire: it renders correctly,
/// then flips one payload bit before responding. The coordinator must
/// reject the fragment (checksum mismatch), never splice it, and fall
/// back to rendering locally — output byte-identical throughout.
#[test]
fn corrupt_wire_fragment_is_rejected_and_rerendered() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let evil_addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            let mut reader = std::io::BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            });
            let Ok(req) = read_request(&mut reader) else {
                continue;
            };
            let body: serde_json::Value = serde_json::from_slice(&req.body).unwrap();
            let spec = Spec::from_json(&body.get("spec").unwrap().to_string()).unwrap();
            let seg_index = body.get("seg_index").and_then(|x| x.as_u64()).unwrap() as usize;
            let key =
                u64::from_str_radix(body.get("key").and_then(|x| x.as_str()).unwrap(), 16).unwrap();
            // Render the genuine fragment, then corrupt one payload bit
            // — a plausible wire/storage flip the digest must catch.
            let mut engine = V2vEngine::new(catalog());
            let run = engine.prepare(&spec).unwrap();
            let (frag, _) = engine.render_segment_fragment(&run, seg_index).unwrap();
            let mut bytes = fragment_to_wire(key, &frag).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            let mut writer = stream;
            let _ = write_response(
                &mut writer,
                &Response::new(200, "application/octet-stream", bytes),
            );
        }
    });

    let spec = clip_query(&[0, 1]);
    let expect = direct_bytes(&spec);
    let coord = start_coordinator(vec![evil_addr.to_string()]);
    let resp = client::post_query(coord.addr(), spec.to_json().as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(
        resp.body, expect,
        "corrupt fragments must be re-rendered, not spliced"
    );

    let v = status(coord.addr());
    assert!(pool_u64(&v, "dispatched") >= 2, "{v}");
    // Every remote response was rejected, so no remote segments were
    // attributed and the local fallback did the rendering.
    let stats: serde_json::Value =
        serde_json::from_str(resp.header_value("x-v2v-stats").unwrap()).unwrap();
    assert_eq!(
        stats
            .get("cache")
            .and_then(|c| c.get("remote_segments"))
            .and_then(|x| x.as_u64()),
        Some(0),
        "rejected fragments must not count as remote"
    );
}

/// A worker that dies and *comes back*: the coordinator marks it dead
/// on the first failed dispatch, then the cheap periodic `/status`
/// re-probe — piggybacked on the next dispatch, no dedicated threads —
/// flips it alive again and later queries resume homing segments onto
/// its ring range.
#[test]
fn restarted_worker_is_revived_and_resumes_its_ring_range() {
    let live = start_worker();
    let spec = clip_query(&[0, 1]);
    let expect = direct_bytes(&spec);
    let run = V2vEngine::new(catalog()).prepare(&spec).expect("prepare");
    let keys: Vec<u64> = run.segment_keys().iter().map(|k| k.unwrap()).collect();

    // Pick a port whose ring position homes at least one segment, then
    // release it: until the worker "restarts" there, connections to it
    // are refused and the coordinator must mark it dead.
    let mut found = None;
    let mut rejected = Vec::new(); // hold ports so each bind is distinct
    for _ in 0..64 {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let a = l.local_addr().unwrap();
        let pool = WorkerPool::new(&[a.to_string(), live.addr().to_string()]).unwrap();
        if keys.iter().any(|&k| pool.candidates(k).first() == Some(&0)) {
            found = Some((l, a));
            break;
        }
        rejected.push(l);
    }
    drop(rejected);
    let (listener, flaky_addr) = found.expect("a port whose ring homes a segment");
    drop(listener); // the worker is down

    let coord = start_coordinator(vec![flaky_addr.to_string(), live.addr().to_string()]);
    let resp = client::post_query(coord.addr(), spec.to_json().as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.body, expect, "re-dispatched run stays byte-identical");
    let v = status(coord.addr());
    assert_eq!(pool_u64(&v, "alive"), 1, "down worker marked dead: {v}");

    // Restart the worker at its old address — same ring identity. (If
    // another test grabbed the freed port in the gap there is nothing
    // left to assert; that is a port collision, not a recovery bug.)
    let config = ServeConfig {
        role: ServeRole::Worker,
        ..ServeConfig::default()
    };
    let Ok(revived) = V2vServer::new(catalog())
        .with_config(config)
        .start(&flaky_addr.to_string())
    else {
        return;
    };
    assert_eq!(revived.addr(), flaky_addr);

    // Let the re-probe rate limit lapse, then query again: the probe
    // piggybacked on the dispatch must flip the worker alive and its
    // ring range must render on it again.
    std::thread::sleep(std::time::Duration::from_millis(400));
    let resp = client::post_query(coord.addr(), spec.to_json().as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(resp.body, expect, "output identical after revival");

    let v = status(coord.addr());
    assert_eq!(pool_u64(&v, "alive"), 2, "revived worker rejoins: {v}");
    assert!(pool_u64(&v, "probes") >= 1, "re-probe must have run: {v}");

    // The revived worker renders its homed segments itself. The query
    // above may have raced the in-flight probe (its segments dispatch
    // concurrently and can reroute before the revival lands), so the
    // proof query runs *after* `alive == 2` is confirmed — with a few
    // retries in case a loaded host trips a dispatch deadline and
    // re-marks the worker dead for a beat.
    let mut rendered = 0;
    for _ in 0..10 {
        let resp = client::post_query(coord.addr(), spec.to_json().as_bytes()).unwrap();
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        assert_eq!(resp.body, expect, "output identical after revival");
        let m = client::request(revived.addr(), "GET", "/metrics", b"").unwrap();
        let m: serde_json::Value = serde_json::from_slice(&m.body).unwrap();
        rendered = m
            .get("metrics")
            .and_then(|x| x.get("serve.segments_rendered"))
            .and_then(|x| x.get("Counter"))
            .and_then(|x| x.as_u64())
            .unwrap_or(0);
        if rendered >= 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
    }
    assert!(rendered >= 1, "revived worker must render again");
}

/// Workers are slim by contract: `POST /query` is not served, but
/// `/status` reports the role and `/render-segment` works.
#[test]
fn worker_role_rejects_top_level_queries() {
    let worker = start_worker();
    let resp = client::post_query(worker.addr(), clip_query(&[0]).to_json().as_bytes()).unwrap();
    assert_eq!(resp.status, 404, "workers do not serve /query");
    let v = status(worker.addr());
    assert_eq!(v.get("role").and_then(|x| x.as_str()), Some("worker"));
}
