//! End-to-end smoke test for the `v2v serve` daemon: spawn the release
//! binary, hammer it with a concurrent client matrix (repeat /
//! overlapping / distinct queries), and check that every response is
//! byte-identical to a direct `v2v run` of the same spec and that the
//! persistent render cache serves repeats without decoding.
//!
//! Skips silently when the `v2v` binary has not been built.

use std::io::BufRead;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use v2v_integration_tests::{marked_output, marked_stream};
use v2v_serve::http::client;
use v2v_spec::builder::blur;
use v2v_spec::{Spec, SpecBuilder};
use v2v_time::{r, Rational};

fn v2v_binary() -> Option<PathBuf> {
    let mut dir = std::env::current_exe().ok()?;
    dir.pop();
    if dir.ends_with("deps") {
        dir.pop();
    }
    let candidate = dir.join("v2v");
    candidate.exists().then_some(candidate)
}

fn workdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("v2v_serve_tests_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Kills the daemon when the test ends, pass or fail. Holds the
/// daemon's stdout pipe open for its whole lifetime: dropping the read
/// end would turn the daemon's next `println!` into a fatal EPIPE.
struct Daemon {
    child: Child,
    _stdout: std::io::BufReader<std::process::ChildStdout>,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Starts `v2v serve` on an ephemeral port and parses the bound address
/// from its first stdout line.
fn start_daemon(bin: &PathBuf, cache_dir: &std::path::Path) -> (Daemon, SocketAddr) {
    let mut child = Command::new(bin)
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
            "--max-concurrent",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn v2v serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let addr = loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {
                if let Some(rest) = line.strip_prefix("listening on ") {
                    break rest.trim().parse::<SocketAddr>().expect("bound address");
                }
            }
            _ => {
                let mut err = String::new();
                if let Some(mut e) = child.stderr.take() {
                    use std::io::Read;
                    let _ = e.read_to_string(&mut err);
                }
                panic!("daemon exited before binding: {err}");
            }
        }
    };
    let daemon = Daemon {
        child,
        _stdout: reader,
    };
    (daemon, addr)
}

/// Per-test source file: the two tests run concurrently in one
/// process, and sharing a fixture would let one test truncate the file
/// while the other's daemon reads it.
fn write_fixture(dir: &std::path::Path, tag: &str) -> PathBuf {
    let video_path = dir.join(format!("serve_src_{tag}.svc"));
    v2v_container::write_svc(&marked_stream(300, 30), &video_path).unwrap();
    video_path
}

/// Render-heavy query: 4 s blur plus a copied clip.
fn spec_repeat(video: &std::path::Path) -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", video.to_string_lossy())
        .append_filtered("src", r(0, 1), Rational::from_int(4), |e| blur(e, 1.0))
        .append_clip("src", r(6, 1), Rational::from_int(1))
        .build()
}

/// Shares the blur segment with [`spec_repeat`] at a shifted position.
fn spec_overlap(video: &std::path::Path) -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", video.to_string_lossy())
        .append_clip("src", r(8, 1), Rational::from_int(1))
        .append_filtered("src", r(0, 1), Rational::from_int(4), |e| blur(e, 1.0))
        .build()
}

/// No overlap with the others: pure stream copy.
fn spec_distinct(video: &std::path::Path) -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", video.to_string_lossy())
        .append_clip("src", r(2, 1), Rational::from_int(2))
        .build()
}

/// `v2v run` the spec directly and return the output `.svc` bytes.
fn direct_run(bin: &PathBuf, dir: &std::path::Path, tag: &str, spec: &Spec) -> Vec<u8> {
    let spec_path = dir.join(format!("direct_{tag}.json"));
    std::fs::write(&spec_path, spec.to_json()).unwrap();
    let out_path = dir.join(format!("direct_{tag}.svc"));
    let output = Command::new(bin)
        .args([
            "run",
            spec_path.to_str().unwrap(),
            "-o",
            out_path.to_str().unwrap(),
        ])
        .output()
        .expect("spawn v2v run");
    assert!(
        output.status.success(),
        "direct run {tag} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    std::fs::read(&out_path).unwrap()
}

fn stats_field(resp: &v2v_serve::http::Response, path: &[&str]) -> u64 {
    let raw = resp.header_value("x-v2v-stats").expect("stats header");
    let mut v: serde_json::Value = serde_json::from_str(raw).expect("stats JSON");
    for key in path {
        v = v.get(key).cloned().unwrap_or_else(|| {
            panic!("stats field {path:?} missing in {raw}");
        });
    }
    v.as_u64().expect("numeric stats field")
}

#[test]
fn daemon_matches_direct_runs_and_serves_repeats_from_cache() {
    let Some(bin) = v2v_binary() else {
        eprintln!("skipping: v2v binary not built");
        return;
    };
    let dir = workdir();
    let video = write_fixture(&dir, "matrix");
    let cache_dir = dir.join("cache");
    let _ = std::fs::remove_dir_all(&cache_dir);

    // Ground truth: direct `v2v run` outputs for each query shape.
    let specs = [
        ("repeat", spec_repeat(&video)),
        ("overlap", spec_overlap(&video)),
        ("distinct", spec_distinct(&video)),
    ];
    let truth: Vec<Arc<Vec<u8>>> = specs
        .iter()
        .map(|(tag, spec)| Arc::new(direct_run(&bin, &dir, tag, spec)))
        .collect();

    let (_daemon, addr) = start_daemon(&bin, &cache_dir);

    // Warm-up: one cold render of the repeat query populates the
    // result entry and its segment fragments.
    let warmup = client::post_query(addr, spec_repeat(&video).to_json().as_bytes()).unwrap();
    assert_eq!(
        warmup.status,
        200,
        "{}",
        String::from_utf8_lossy(&warmup.body)
    );
    assert_eq!(warmup.body, *truth[0]);
    assert_eq!(stats_field(&warmup, &["cache", "result_hits"]), 0);

    // Concurrent client matrix: two repeats, one overlapping, one
    // distinct, all in flight together against max_concurrent=2.
    let jobs: Vec<(usize, Arc<Vec<u8>>)> = vec![
        (0, Arc::new(specs[0].1.to_json().into_bytes())),
        (0, Arc::new(specs[0].1.to_json().into_bytes())),
        (1, Arc::new(specs[1].1.to_json().into_bytes())),
        (2, Arc::new(specs[2].1.to_json().into_bytes())),
    ];
    let handles: Vec<_> = jobs
        .into_iter()
        .map(|(which, body)| {
            std::thread::spawn(move || (which, client::post_query(addr, &body).unwrap()))
        })
        .collect();
    let mut overlap_resp = None;
    for h in handles {
        let (which, resp) = h.join().expect("client thread");
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        assert_eq!(
            resp.body, *truth[which],
            "served bytes must match direct `v2v run` for spec {which}"
        );
        if which == 1 {
            overlap_resp = Some(resp);
        }
    }

    // The overlapping query spliced the warm blur segments.
    let overlap_resp = overlap_resp.expect("overlap response");
    assert!(
        stats_field(&overlap_resp, &["cache", "segment_hits"]) > 0,
        "overlapping query must reuse cached segments"
    );

    // A repeat of the warmed query is a zero-decode result hit.
    let repeat = client::post_query(addr, spec_repeat(&video).to_json().as_bytes()).unwrap();
    assert_eq!(repeat.status, 200);
    assert_eq!(repeat.body, *truth[0]);
    assert!(stats_field(&repeat, &["cache", "result_hits"]) >= 1);
    assert_eq!(stats_field(&repeat, &["bytes_decoded"]), 0);
    assert_eq!(stats_field(&repeat, &["frames_encoded"]), 0);

    // Control-plane endpoints answer on the same listener.
    let status = client::request(addr, "GET", "/status", b"").unwrap();
    assert_eq!(status.status, 200);
    let v: serde_json::Value = serde_json::from_slice(&status.body).unwrap();
    assert!(
        v.get("jobs_done").and_then(|x| x.as_u64()).unwrap_or(0) >= 6,
        "{}",
        String::from_utf8_lossy(&status.body)
    );

    let metrics = client::request(addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8_lossy(&metrics.body);
    assert!(text.contains("exec.cache.result_hits"), "{text}");
}

#[test]
fn daemon_reports_errors_without_dying() {
    let Some(bin) = v2v_binary() else {
        eprintln!("skipping: v2v binary not built");
        return;
    };
    let dir = workdir();
    let video = write_fixture(&dir, "errors");
    let cache_dir = dir.join("cache_err");
    let (_daemon, addr) = start_daemon(&bin, &cache_dir);

    // Malformed spec: 400 with a structured error body.
    let bad = client::post_query(addr, b"{not json").unwrap();
    assert_eq!(bad.status, 400);
    let v: serde_json::Value = serde_json::from_slice(&bad.body).unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|k| k.as_str()),
        Some("invalid_request")
    );

    // Spec referencing a missing source: 404, daemon stays up.
    let missing = SpecBuilder::new(marked_output())
        .video("src", "/nonexistent/nope.svc")
        .append_clip("src", r(0, 1), Rational::from_int(1))
        .build();
    let resp = client::post_query(addr, missing.to_json().as_bytes()).unwrap();
    assert_eq!(resp.status, 404, "{}", String::from_utf8_lossy(&resp.body));

    // And a good query still works afterwards.
    let ok = client::post_query(addr, spec_distinct(&video).to_json().as_bytes()).unwrap();
    assert_eq!(ok.status, 200, "{}", String::from_utf8_lossy(&ok.body));
}
