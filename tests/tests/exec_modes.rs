//! Byte-identity across every execution mode.
//!
//! The scheduler (PR 3) may reorder, pipeline, and split work at
//! runtime, but the output container must stay *byte-identical* to the
//! serial executor's — splits land on output-GOP boundaries and packets
//! are re-stamped onto the presentation grid, so no arm is allowed to
//! change a single payload byte. This suite pins that invariant over
//! the full `{batch, streaming} × {serial, parallel, pipelined,
//! runtime-split} × {1, 2, 8 threads}` matrix on adversarial plan
//! shapes:
//!
//! * 1-frame render segments (splits impossible, merge logic stressed),
//! * many small segments (segment count ≫ worker count),
//! * a single giant render segment (runtime splitting is the only
//!   source of parallelism),
//!
//! plus a proptest arm over randomly shaped specs.

use proptest::prelude::*;
use v2v_container::VideoStream;
use v2v_exec::{execute, execute_streaming_with, Catalog, ExecOptions};
use v2v_integration_tests::{marked_output, marked_stream};
use v2v_plan::{lower_spec, optimize, OptimizerConfig, PhysicalPlan};
use v2v_spec::builder::blur;
use v2v_spec::{Spec, SpecBuilder};
use v2v_time::r;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_video("src", marked_stream(300, 30));
    c
}

fn plan_of(spec: &Spec, catalog: &Catalog, cfg: &OptimizerConfig) -> PhysicalPlan {
    let logical = lower_spec(spec).unwrap();
    optimize(&logical, &catalog.plan_context(), cfg).unwrap()
}

/// The adversarial plan shapes, as `(name, plan)`.
fn adversarial_plans(catalog: &Catalog) -> Vec<(&'static str, PhysicalPlan)> {
    // Ten 1-frame mid-GOP clips: every segment renders exactly one
    // frame, so parts can never split and the per-segment merge in the
    // traced executor sees a part per segment.
    let mut one_frame = SpecBuilder::new(marked_output()).video("src", "src.svc");
    for i in 0..10 {
        one_frame = one_frame.append_clip("src", r(7 + 13 * i, 30), r(1, 30));
    }
    // Mixed copy/render plan with many segments (default sharding keeps
    // render segments small, so segment count ≫ a small worker pool).
    let many_small = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_clip("src", r(1, 1), r(2, 1))
        .append_filtered("src", r(0, 1), r(4, 1), |e| blur(e, 1.0))
        .append_clip("src", r(1, 2), r(3, 2))
        .build();
    // One giant render segment: disable static sharding so the whole
    // 8-second blur is a single segment and runtime splitting is the
    // only way more than one worker ever touches it.
    let giant = SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(1, 1), r(8, 1), |e| blur(e, 1.0))
        .build();
    vec![
        (
            "one_frame_segments",
            plan_of(&one_frame.build(), catalog, &OptimizerConfig::default()),
        ),
        (
            "many_small_segments",
            plan_of(&many_small, catalog, &OptimizerConfig::default()),
        ),
        (
            "single_giant_render",
            plan_of(
                &giant,
                catalog,
                &OptimizerConfig {
                    shard_min_frames: u64::MAX,
                    ..Default::default()
                },
            ),
        ),
    ]
}

/// The executor arms: every scheduler feature toggled separately.
fn arms() -> Vec<(&'static str, ExecOptions)> {
    vec![
        (
            "serial",
            ExecOptions {
                parallel: false,
                ..Default::default()
            },
        ),
        (
            "parallel_plain",
            ExecOptions {
                pipeline_depth: 0,
                runtime_split: false,
                ..Default::default()
            },
        ),
        (
            "pipelined",
            ExecOptions {
                runtime_split: false,
                ..Default::default()
            },
        ),
        ("runtime_split", ExecOptions::default()),
    ]
}

fn assert_same_stream(label: &str, baseline: &VideoStream, got: &VideoStream) {
    assert_eq!(
        baseline.packets(),
        got.packets(),
        "{label}: packet stream diverged from the serial baseline"
    );
}

#[test]
fn all_modes_are_byte_identical() {
    let catalog = catalog();
    for (plan_name, plan) in adversarial_plans(&catalog) {
        let (baseline, _, _) = execute(
            &plan,
            &catalog,
            &ExecOptions {
                parallel: false,
                ..Default::default()
            },
        )
        .unwrap();
        for (arm_name, base_opts) in arms() {
            for threads in [1usize, 2, 8] {
                let opts = ExecOptions {
                    num_threads: threads,
                    ..base_opts.clone()
                };
                let label = format!("{plan_name}/{arm_name}/threads={threads}");
                let (batch, _, _) = execute(&plan, &catalog, &opts).unwrap();
                assert_same_stream(&format!("batch/{label}"), &baseline, &batch);

                let mut sunk: Vec<v2v_codec::Packet> = Vec::new();
                let (streamed, _) =
                    execute_streaming_with(&plan, &catalog, &opts, |p| sunk.push(p.clone()))
                        .unwrap();
                assert_same_stream(&format!("streaming/{label}"), &baseline, &streamed);
                // The sink saw the same packets, already on the
                // presentation grid, in presentation order.
                assert_eq!(
                    baseline.packets(),
                    &sunk[..],
                    "streaming sink/{label}: sink packets diverged"
                );
            }
        }
    }
}

#[test]
fn split_heavy_run_splits_and_stays_identical() {
    // The single-giant-render plan at 8 threads must actually exercise
    // the runtime splitter (otherwise the matrix above proves nothing
    // about it) and still match the serial bytes.
    let catalog = catalog();
    let plans = adversarial_plans(&catalog);
    let (_, plan) = plans
        .iter()
        .find(|(n, _)| *n == "single_giant_render")
        .unwrap();
    let (baseline, _, _) = execute(
        plan,
        &catalog,
        &ExecOptions {
            parallel: false,
            ..Default::default()
        },
    )
    .unwrap();
    let opts = ExecOptions {
        num_threads: 8,
        ..Default::default()
    };
    let (out, stats, _) = execute(plan, &catalog, &opts).unwrap();
    assert_same_stream("split_heavy", &baseline, &out);
    assert!(
        stats.splits > 0,
        "8 idle workers against one giant segment must trigger runtime splits: {stats:?}"
    );
    assert_eq!(stats.steals, stats.splits, "every split is stolen");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random clip/blur mixes: scheduler arms agree with serial bytes.
    #[test]
    fn random_specs_are_mode_independent(
        segs in prop::collection::vec((0u8..200, 1u8..70, any::<bool>()), 1..5),
        threads in 1usize..5,
    ) {
        let catalog = catalog();
        let mut b = SpecBuilder::new(marked_output()).video("src", "src.svc");
        for (start, len, filtered) in &segs {
            let start = r(*start as i64, 30);
            let len = r(*len as i64, 30);
            // Keep clips inside the 10 s source.
            if (start + len) > r(300, 30) {
                continue;
            }
            b = if *filtered {
                b.append_filtered("src", start, len, |e| blur(e, 0.8))
            } else {
                b.append_clip("src", start, len)
            };
        }
        let spec = b.build();
        if spec.time_domain.is_empty() {
            return Ok(());
        }
        let plan = plan_of(&spec, &catalog, &OptimizerConfig::default());
        let (baseline, _, _) = execute(&plan, &catalog, &ExecOptions {
            parallel: false,
            ..Default::default()
        }).unwrap();
        let opts = ExecOptions { num_threads: threads, ..Default::default() };
        let (batch, _, _) = execute(&plan, &catalog, &opts).unwrap();
        prop_assert_eq!(baseline.packets(), batch.packets());
        let (streamed, _) = execute_streaming_with(&plan, &catalog, &opts, |_| {}).unwrap();
        prop_assert_eq!(baseline.packets(), streamed.packets());
    }
}
