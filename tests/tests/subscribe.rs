//! End-to-end acceptance for live sources and `POST /subscribe`:
//! append-aware catalogs, incremental delta pushes, byte-identity of
//! the cumulative client stream against cold one-shot runs, and the
//! dirty-only re-render property observed through cache counters.

use std::time::{Duration, Instant};
use v2v_container::svc_to_bytes;
use v2v_core::V2vEngine;
use v2v_exec::{Catalog, RenderCache};
use v2v_integration_tests::{marked_output, marked_stream};
use v2v_serve::http::client;
use v2v_serve::sub::{read_delta, DeltaApplier, DELTA_CONTENT_TYPE};
use v2v_serve::{ServeConfig, V2vServer};
use v2v_spec::builder::blur;
use v2v_spec::{Spec, SpecBuilder};
use v2v_time::r;

/// The whole history: 150 frames (5 s), appended in two installments.
const FULL_FRAMES: usize = 150;
const INITIAL_FRAMES: usize = 120;

fn full_stream() -> v2v_container::VideoStream {
    marked_stream(FULL_FRAMES, 30)
}

/// The first `n` frames of the history as a sealed stream.
fn prefix(n: usize) -> v2v_container::VideoStream {
    let s = full_stream();
    let packets = s.copy_packet_range(0, n, s.start()).unwrap();
    v2v_container::VideoStream::new(*s.params(), s.start(), s.frame_dur(), packets).unwrap()
}

/// The appended installment: frames `from..to`, stamped at their
/// absolute instants so it continues the catalog grid.
fn installment(from: usize, to: usize) -> Vec<u8> {
    let s = full_stream();
    let at = s.start() + s.frame_dur() * v2v_time::Rational::from_int(from as i64);
    let packets = s.copy_packet_range(from, to, at).unwrap();
    let tail = v2v_container::VideoStream::new(*s.params(), at, s.frame_dur(), packets).unwrap();
    svc_to_bytes(&tail).unwrap()
}

fn catalog_with(frames: usize) -> Catalog {
    let mut c = Catalog::new();
    c.add_video("src", prefix(frames));
    c
}

/// The subscribed query: a blur over far more domain than is available
/// yet. The daemon clamps each refresh to the servable prefix.
fn growth_spec() -> Spec {
    SpecBuilder::new(marked_output())
        .video("src", "src.svc")
        .append_filtered("src", r(0, 1), r(10, 1), |e| blur(e, 1.0))
        .build()
}

/// Ground truth at a given source length: clamp the spec exactly as
/// the daemon does, then run it cold on a fresh engine.
fn direct_bytes(frames: usize) -> Vec<u8> {
    let spec = growth_spec();
    let mut engine = V2vEngine::new(catalog_with(frames));
    engine.bind(&spec).expect("bind");
    let mut clamped = spec.clone();
    clamped.time_domain = v2v_spec::servable_domain(&spec, &engine.catalog().source_infos());
    let report = engine.run(&clamped).expect("direct run");
    svc_to_bytes(&report.output).unwrap()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("v2v_subscribe_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn status(addr: std::net::SocketAddr) -> serde_json::Value {
    let resp = client::request(addr, "GET", "/status", b"").expect("status");
    serde_json::from_slice(&resp.body).expect("status json")
}

fn status_u64(v: &serde_json::Value, path: &[&str]) -> u64 {
    path.iter()
        .try_fold(v, |node, key| node.get(key))
        .and_then(|x| x.as_u64())
        .unwrap_or_else(|| panic!("status missing {path:?}: {v:?}"))
}

fn wait_for(
    addr: std::net::SocketAddr,
    what: &str,
    pred: impl Fn(&serde_json::Value) -> bool,
) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let v = status(addr);
        if pred(&v) {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; last status: {v}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The tentpole acceptance: subscribe, append, and after every delta
/// the reassembled client stream is byte-identical to a cold one-shot
/// run at the same source length — while the daemon's second refresh
/// re-renders only the dirty tail (prefix shards come from the render
/// cache) and ships only the changed suffix on the wire.
#[test]
fn subscription_deltas_reproduce_cold_runs_and_rerender_only_the_tail() {
    let dir = temp_dir("deltas");
    let mut config = ServeConfig::default();
    config.engine.render_cache = Some(std::sync::Arc::new(
        RenderCache::open(&dir, 1 << 30).unwrap(),
    ));
    let mut handle = V2vServer::new(catalog_with(INITIAL_FRAMES))
        .with_config(config)
        .start("127.0.0.1:0")
        .unwrap();
    let addr = handle.addr();

    let mut resp = client::open_stream(
        addr,
        "POST",
        "/subscribe",
        growth_spec().to_json().as_bytes(),
    )
    .expect("subscribe");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header_value("content-type"), Some(DELTA_CONTENT_TYPE));
    resp.reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Delta 0: the full servable prefix.
    let mut applier = DeltaApplier::new();
    let (h0, svc0) = read_delta(&mut resp.reader).unwrap().expect("first delta");
    assert_eq!(h0.seq, 0);
    assert_eq!(h0.from_frame, 0);
    let cum = applier.apply(&h0, &svc0).unwrap();
    assert_eq!(cum.len(), INITIAL_FRAMES);
    assert_eq!(
        svc_to_bytes(cum).unwrap(),
        direct_bytes(INITIAL_FRAMES),
        "cumulative after delta 0 must equal a cold run at 120 frames"
    );
    wait_for(addr, "subscription active", |v| {
        status_u64(v, &["subscriptions", "active"]) == 1
    });

    // Append the next installment; the daemon must push only the tail.
    let tail = installment(INITIAL_FRAMES, FULL_FRAMES);
    let append = client::request(addr, "POST", "/append/src", &tail).unwrap();
    assert_eq!(
        append.status,
        200,
        "{}",
        String::from_utf8_lossy(&append.body)
    );

    let (h1, svc1) = read_delta(&mut resp.reader).unwrap().expect("growth delta");
    assert_eq!(h1.seq, 1);
    assert_eq!(
        h1.from_frame, INITIAL_FRAMES as u64,
        "append lands on a GOP boundary: the delta splices exactly at the old length"
    );
    assert_eq!(h1.frames as usize, FULL_FRAMES - INITIAL_FRAMES);
    let cum = applier.apply(&h1, &svc1).unwrap();
    assert_eq!(cum.len(), FULL_FRAMES);
    assert_eq!(
        svc_to_bytes(cum).unwrap(),
        direct_bytes(FULL_FRAMES),
        "cumulative after delta 1 must equal a cold run at 150 frames"
    );

    // Dirty-only: the refresh went through the render cache, so the
    // prefix shards were reused and only the appended range rendered.
    let metrics = client::request(addr, "GET", "/metrics", b"").unwrap();
    let metrics: serde_json::Value = serde_json::from_slice(&metrics.body).unwrap();
    let segment_hits = metrics
        .get("metrics")
        .and_then(|m| m.get("exec.cache.segment_hits"))
        .and_then(|c| c.get("Counter"))
        .and_then(|c| c.as_u64())
        .unwrap_or(0);
    assert!(
        segment_hits >= 1,
        "the second refresh must reuse cached prefix segments: {metrics}"
    );

    let v = status(addr);
    assert_eq!(status_u64(&v, &["subscriptions", "deltas"]), 2, "{v}");
    assert_eq!(status_u64(&v, &["subscriptions", "renders"]), 2, "{v}");
    assert_eq!(status_u64(&v, &["subscriptions", "appends"]), 1, "{v}");
    assert_eq!(
        status_u64(&v, &["subscriptions", "frames_pushed"]),
        FULL_FRAMES as u64,
        "only the changed suffix rides the wire: {v}"
    );
    assert!(status_u64(&v, &["subscriptions", "catalog_version"]) >= 1);

    // Disconnect; the watcher notices on its next poll and retires the
    // subscription.
    drop(resp);
    wait_for(addr, "subscription retired", |v| {
        status_u64(v, &["subscriptions", "active"]) == 0
    });
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Appends that do not continue the catalog grid are rejected whole —
/// the catalog and version stay untouched.
#[test]
fn malformed_appends_are_rejected_atomically() {
    let mut handle = V2vServer::new(catalog_with(INITIAL_FRAMES))
        .start("127.0.0.1:0")
        .unwrap();
    let addr = handle.addr();

    // Not a container at all.
    let resp = client::request(addr, "POST", "/append/src", b"junk").unwrap();
    assert_eq!(resp.status, 422);

    // A valid stream that restarts at t=0 instead of continuing.
    let overlapping = svc_to_bytes(&prefix(30)).unwrap();
    let resp = client::request(addr, "POST", "/append/src", &overlapping).unwrap();
    assert_eq!(resp.status, 422, "{}", String::from_utf8_lossy(&resp.body));

    // An empty name routes nowhere useful.
    let resp = client::request(addr, "POST", "/append/", b"").unwrap();
    assert_eq!(resp.status, 400);

    let v = status(addr);
    assert_eq!(
        status_u64(&v, &["subscriptions", "catalog_version"]),
        0,
        "rejected appends must not bump the version: {v}"
    );

    // A well-formed continuation is accepted and bumps the version.
    let resp = client::request(
        addr,
        "POST",
        "/append/src",
        &installment(INITIAL_FRAMES, FULL_FRAMES),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let v = status(addr);
    assert_eq!(status_u64(&v, &["subscriptions", "catalog_version"]), 1);
    handle.stop();
}

/// `/append-data/<name>` grows a detection array and bumps the catalog
/// version so data-driven subscriptions re-evaluate.
#[test]
fn append_data_grows_arrays_and_bumps_the_version() {
    let mut handle = V2vServer::new(catalog_with(INITIAL_FRAMES))
        .start("127.0.0.1:0")
        .unwrap();
    let addr = handle.addr();

    let body = br#"[{"t": 1, "value": 3}, {"t": [3, 2], "value": "car"}]"#;
    let resp = client::request(addr, "POST", "/append-data/dets", body).unwrap();
    assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
    let info: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(info.get("appended").and_then(|x| x.as_u64()), Some(2));
    assert_eq!(info.get("entries").and_then(|x| x.as_u64()), Some(2));

    // Malformed instants are rejected whole.
    let resp = client::request(
        addr,
        "POST",
        "/append-data/dets",
        br#"[{"t": "noon", "value": 1}]"#,
    )
    .unwrap();
    assert_eq!(resp.status, 400);

    let v = status(addr);
    assert_eq!(status_u64(&v, &["subscriptions", "catalog_version"]), 1);
    handle.stop();
}

/// A spec over a source the daemon cannot bind is refused with a
/// proper error response before the stream ever starts.
#[test]
fn subscribe_rejects_unbindable_specs_up_front() {
    let mut handle = V2vServer::new(catalog_with(INITIAL_FRAMES))
        .start("127.0.0.1:0")
        .unwrap();
    let addr = handle.addr();

    let spec = SpecBuilder::new(marked_output())
        .video("ghost", "/nonexistent/ghost.svc")
        .append_clip("ghost", r(0, 1), r(1, 1))
        .build();
    let resp = client::request(addr, "POST", "/subscribe", spec.to_json().as_bytes()).unwrap();
    assert_ne!(resp.status, 200, "unbindable spec must be refused");

    let resp = client::request(addr, "POST", "/subscribe", b"not json").unwrap();
    assert_eq!(resp.status, 400);
    handle.stop();
}
