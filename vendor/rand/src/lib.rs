//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset used by `v2v-datasets`: `SmallRng` seeded via
//! `SeedableRng::seed_from_u64`, plus `Rng::{gen_range, gen_bool, gen}`
//! over integer and float ranges. The generator is xorshift64* seeded
//! through splitmix64 — deterministic across runs and platforms, which
//! keeps generated datasets reproducible.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Samples a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

/// Types `gen_range` can sample uniformly from half-open or inclusive
/// bounds.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// A range `gen_range` can sample from. Blanket impls over
/// [`SampleUniform`] (mirroring the real crate) let inference unify the
/// element type with unsuffixed literal ranges like `0.15..0.85`.
pub trait SampleRange<T> {
    /// Samples a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Uniform sample of a `Standard` type.
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator, seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            // splitmix64 scrambles consecutive seeds into distant states.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x853C_49E6_748F_EA9B } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// The std generator is the same deterministic engine here.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = rng.gen_range(1..=4u32);
            assert!((1..=4).contains(&g));
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(1);
            (0..8).map(|_| r.gen_range(0..1_000_000u64)).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(1);
            (0..8).map(|_| r.gen_range(0..1_000_000u64)).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(2);
            (0..8).map(|_| r.gen_range(0..1_000_000u64)).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_bool_rate_is_sane() {
        let mut rng = SmallRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "got {hits}");
    }
}
