//! `#[derive(Error)]` for the offline thiserror stand-in.
//!
//! Parses enum definitions with only the built-in `proc_macro` crate (no
//! syn/quote available offline) and generates `Display`,
//! `std::error::Error`, and `From` impls. Supports the attribute forms
//! this workspace uses:
//!
//! - `#[error("fmt with {0}, {named}, {debug:?}")]`
//! - `#[error("fmt {}", expr_using(.0))]` (trailing args; `.0`/`.name`
//!   refer to the variant's fields)
//! - `#[error(transparent)]`
//! - `#[from]` / `#[source]` on fields

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[derive(Clone)]
struct Field {
    /// Binding used in match arms: `_f0` for tuple fields, `_name` for
    /// named fields.
    binding: String,
    /// Named-field name ("" for tuple fields).
    name: String,
    /// Type tokens, stringified.
    ty: String,
    has_from: bool,
    has_source: bool,
}

struct Variant {
    name: String,
    /// None → unit, Some((named, fields)).
    fields: Option<(bool, Vec<Field>)>,
    /// Tokens inside `#[error(...)]`.
    error_attr: Vec<TokenTree>,
}

/// Derives `Display`, `std::error::Error`, and `From` for an error enum.
#[proc_macro_derive(Error, attributes(error, source, from, backtrace))]
pub fn derive_error(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip container attributes and visibility, find `enum Name { ... }`.
    skip_attrs_and_vis(&tokens, &mut i);
    match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "enum" => i += 1,
        other => panic!("thiserror stand-in supports enums only, found {other}"),
    }
    let name = match &tokens[i] {
        TokenTree::Ident(id) => {
            i += 1;
            id.to_string()
        }
        other => panic!("expected enum name, found {other}"),
    };
    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        panic!("thiserror stand-in does not support generic enums");
    }
    let body = match &tokens[i] {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected enum body, found {other}"),
    };

    let variants = parse_variants(body);
    let mut display_arms = String::new();
    let mut source_arms = String::new();
    let mut from_impls = String::new();

    for v in &variants {
        let pattern = arm_pattern(&name, v);
        display_arms.push_str(&format!("{pattern} => {{ {} }}\n", display_body(v)));
        source_arms.push_str(&format!("{pattern} => {{ {} }}\n", source_body(v)));
        if let Some((named, fields)) = &v.fields {
            for f in fields {
                if f.has_from {
                    let construct = if *named {
                        format!("{name}::{} {{ {}: value }}", v.name, f.name)
                    } else {
                        format!("{name}::{}(value)", v.name)
                    };
                    from_impls.push_str(&format!(
                        "impl ::std::convert::From<{ty}> for {name} {{\n\
                         fn from(value: {ty}) -> {name} {{ {construct} }}\n}}\n",
                        ty = f.ty
                    ));
                }
            }
        }
    }

    let out = format!(
        "impl ::std::fmt::Display for {name} {{\n\
         #[allow(unused_variables, clippy::used_underscore_binding)]\n\
         fn fmt(&self, __formatter: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {{\n\
         match self {{\n{display_arms}}}\n}}\n}}\n\
         impl ::std::error::Error for {name} {{\n\
         #[allow(unused_variables, clippy::match_single_binding)]\n\
         fn source(&self) -> ::std::option::Option<&(dyn ::std::error::Error + 'static)> {{\n\
         match self {{\n{source_arms}}}\n}}\n}}\n\
         {from_impls}"
    );
    out.parse().expect("thiserror stand-in generated invalid Rust")
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + [...]
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Collects the attributes at position `i`, returning `#[error(...)]`
/// contents plus `from`/`source` flags found among them.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> (Vec<TokenTree>, bool, bool) {
    let mut error_attr = Vec::new();
    let (mut has_from, mut has_source) = (false, false);
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            match inner.first() {
                Some(TokenTree::Ident(id)) if id.to_string() == "error" => {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        error_attr = args.stream().into_iter().collect();
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "from" && inner.len() == 1 => {
                    has_from = true;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "source" && inner.len() == 1 => {
                    has_source = true;
                }
                _ => {}
            }
        }
        *i += 2;
    }
    (error_attr, has_from, has_source)
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (error_attr, _, _) = take_attrs(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => {
                i += 1;
                id.to_string()
            }
            other => panic!("expected variant name, found {other}"),
        };
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Some((false, parse_fields(g.stream(), false)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some((true, parse_fields(g.stream(), true)))
            }
            _ => None,
        };
        // Trailing comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant {
            name,
            fields,
            error_attr,
        });
    }
    variants
}

fn parse_fields(stream: TokenStream, named: bool) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    let mut index = 0;
    while i < tokens.len() {
        let (_, has_from, has_source) = take_attrs(&tokens, &mut i);
        // Visibility (tuple fields may carry `pub`).
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let mut name = String::new();
        if named {
            name = tokens[i].to_string();
            i += 2; // name ':'
        }
        // Type tokens until a top-level comma (angle-bracket aware).
        // Multi-char puncts like `::` must stay adjacent when
        // stringified, so spacing follows the token's own spacing.
        let mut ty = String::new();
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            match &tokens[i] {
                TokenTree::Punct(p) => {
                    ty.push(p.as_char());
                    if p.spacing() == Spacing::Alone {
                        ty.push(' ');
                    }
                }
                other => {
                    ty.push_str(&other.to_string());
                    ty.push(' ');
                }
            }
            i += 1;
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        let binding = if named {
            format!("_{name}")
        } else {
            format!("_f{index}")
        };
        fields.push(Field {
            binding,
            name,
            ty,
            has_from,
            has_source,
        });
        index += 1;
    }
    fields
}

fn arm_pattern(enum_name: &str, v: &Variant) -> String {
    match &v.fields {
        None => format!("{enum_name}::{}", v.name),
        Some((true, fields)) => {
            let binds: Vec<String> = fields
                .iter()
                .map(|f| format!("{}: {}", f.name, f.binding))
                .collect();
            format!("{enum_name}::{} {{ {} }}", v.name, binds.join(", "))
        }
        Some((false, fields)) => {
            let binds: Vec<String> = fields.iter().map(|f| f.binding.clone()).collect();
            format!("{enum_name}::{}({})", v.name, binds.join(", "))
        }
    }
}

fn display_body(v: &Variant) -> String {
    let fields: &[Field] = v.fields.as_ref().map(|(_, f)| f.as_slice()).unwrap_or(&[]);
    if v.error_attr.len() == 1 {
        if let TokenTree::Ident(id) = &v.error_attr[0] {
            if id.to_string() == "transparent" {
                let inner = &fields
                    .first()
                    .expect("#[error(transparent)] needs a field")
                    .binding;
                return format!("::std::fmt::Display::fmt({inner}, __formatter)");
            }
        }
    }
    let lit = match v.error_attr.first() {
        Some(TokenTree::Literal(l)) => l.to_string(),
        _ => panic!(
            "variant {} needs #[error(\"...\")] or #[error(transparent)]",
            v.name
        ),
    };
    let fmt = rewrite_format_literal(&lit, fields);
    // Remaining tokens (`, arg, arg`) pass through with `.0`/`.name`
    // rewritten to the match bindings.
    let rest: String = rewrite_field_accesses(&v.error_attr[1..], fields);
    format!("write!(__formatter, {fmt}{rest})")
}

fn source_body(v: &Variant) -> String {
    let fields: &[Field] = v.fields.as_ref().map(|(_, f)| f.as_slice()).unwrap_or(&[]);
    let transparent = matches!(v.error_attr.first(),
        Some(TokenTree::Ident(id)) if id.to_string() == "transparent");
    for f in fields {
        if transparent || f.has_from || f.has_source || f.name == "source" {
            return format!(
                "::std::option::Option::Some({} as &(dyn ::std::error::Error + 'static))",
                f.binding
            );
        }
    }
    "::std::option::Option::None".to_string()
}

/// Rewrites `{0}` → `{_f0}` and `{name}` → `{_name}` in a (quoted)
/// format-string literal, preserving format specs and `{{` escapes.
fn rewrite_format_literal(lit: &str, fields: &[Field]) -> String {
    let inner = lit
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or_else(|| panic!("#[error] expects a plain string literal, got {lit}"));
    let bytes: Vec<char> = inner.chars().collect();
    let mut out = String::from("\"");
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == '{' {
            if bytes.get(i + 1) == Some(&'{') {
                out.push_str("{{");
                i += 2;
                continue;
            }
            // Capture the name part up to ':' or '}'.
            let mut j = i + 1;
            let mut name = String::new();
            while j < bytes.len() && bytes[j] != ':' && bytes[j] != '}' {
                name.push(bytes[j]);
                j += 1;
            }
            out.push('{');
            out.push_str(&rewrite_arg_name(&name, fields));
            // Copy the spec + closing brace verbatim.
            while j < bytes.len() {
                let d = bytes[j];
                out.push(d);
                j += 1;
                if d == '}' {
                    break;
                }
            }
            i = j;
        } else if c == '}' && bytes.get(i + 1) == Some(&'}') {
            out.push_str("}}");
            i += 2;
        } else {
            out.push(c);
            i += 1;
        }
    }
    out.push('"');
    out
}

fn rewrite_arg_name(name: &str, fields: &[Field]) -> String {
    if name.is_empty() {
        return String::new();
    }
    if name.chars().all(|c| c.is_ascii_digit()) {
        return format!("_f{name}");
    }
    if fields.iter().any(|f| f.name == name) {
        return format!("_{name}");
    }
    name.to_string()
}

/// Rewrites `.0` / `.name` shorthand field accesses in trailing
/// `#[error]` arguments to the match-arm bindings.
fn rewrite_field_accesses(tokens: &[TokenTree], fields: &[Field]) -> String {
    let mut out = String::new();
    let mut prev_is_expr = false;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '.' && !prev_is_expr => {
                // `.0` or `.name` at expression start → binding.
                match tokens.get(i + 1) {
                    Some(TokenTree::Literal(l))
                        if l.to_string().chars().all(|c| c.is_ascii_digit()) =>
                    {
                        out.push_str(&format!(" _f{l}"));
                        i += 2;
                        prev_is_expr = true;
                        continue;
                    }
                    Some(TokenTree::Ident(id)) => {
                        out.push_str(&format!(" _{id}"));
                        i += 2;
                        prev_is_expr = true;
                        continue;
                    }
                    _ => {}
                }
                out.push('.');
                i += 1;
            }
            TokenTree::Group(g) => {
                let inner = rewrite_field_accesses(&g.stream().into_iter().collect::<Vec<_>>(), fields);
                let (open, close) = match g.delimiter() {
                    Delimiter::Parenthesis => ("(", ")"),
                    Delimiter::Brace => ("{", "}"),
                    Delimiter::Bracket => ("[", "]"),
                    Delimiter::None => ("", ""),
                };
                out.push_str(open);
                out.push_str(&inner);
                out.push_str(close);
                prev_is_expr = true;
                i += 1;
            }
            TokenTree::Punct(p) => {
                out.push(p.as_char());
                prev_is_expr = false;
                i += 1;
            }
            other => {
                out.push(' ');
                out.push_str(&other.to_string());
                out.push(' ');
                prev_is_expr = true;
                i += 1;
            }
        }
    }
    out
}
