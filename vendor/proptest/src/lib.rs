//! Offline stand-in for the `proptest` crate.
//!
//! Provides the strategy combinators and macros this workspace's
//! property tests use, with two simplifications relative to the real
//! crate: values are generated from a deterministic per-test RNG (seeded
//! from file/line/case so failures reproduce exactly), and failing
//! cases are reported by panic without shrinking.

pub mod test_runner {
    /// Deterministic xorshift64* RNG used for value generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from the test site and case index, so each case is
        /// reproducible run-to-run.
        pub fn for_case(file: &str, line: u32, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in file.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= u64::from(line).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            h ^= u64::from(case).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            TestRng {
                state: if h == 0 { 0x853C_49E6_748F_EA9B } else { h },
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform usize in `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Failure value for `Result`-style property bodies. Assertions in
    /// the stand-in panic directly, so this mostly types `return Ok(())`.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The generated input was rejected.
        Reject(String),
    }

    /// Carried for API compatibility; cases always run.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Builds a recursive strategy: `recurse` receives the strategy
        /// for the previous depth and returns the next layer. Expanded
        /// eagerly `depth` times (no lazy self-reference needed without
        /// shrinking).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                strat = recurse(strat).boxed();
            }
            strat
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Arc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// A cloneable type-erased strategy.
    pub struct BoxedStrategy<T> {
        #[allow(clippy::type_complexity)]
        gen: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Arc::clone(&self.gen),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Uniform choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds from the already-boxed branches.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one branch");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % span;
                    (start as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($t:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($t,)+) = self;
                    ($($t.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// `&str` strategies interpret the string as a simple regex: literal
    /// characters and `[...]` classes, each optionally quantified with
    /// `{n}`, `{n,m}`, `?`, `+`, or `*`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let atom: Vec<char> = if chars[i] == '[' {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        i += 3;
                    } else {
                        if chars[i] == '\\' {
                            i += 1;
                        }
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // ']'
                set
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            // Optional quantifier.
            let (lo, hi) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((a, b)) => (
                            a.trim().parse::<usize>().unwrap_or(0),
                            b.trim().parse::<usize>().unwrap_or(8),
                        ),
                        None => {
                            let n = body.trim().parse::<usize>().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                _ => (1, 1),
            };
            let count = lo + rng.below(hi - lo + 1);
            for _ in 0..count {
                out.push(atom[rng.below(atom.len())]);
            }
        }
        out
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Samples a uniform value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            (rng.unit_f64() * 2e6 - 1e6) as f32
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespace alias matching `proptest::prelude::prop::...`.
    pub mod prop {
        pub use crate::{collection, strategy};
    }
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Property assertion (panics on failure; no shrinking in the stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { ::std::assert!($cond, $($fmt)+) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { ::std::assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { ::std::assert_eq!($left, $right, $($fmt)+) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { ::std::assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { ::std::assert_ne!($left, $right, $($fmt)+) };
}

/// Defines `#[test]` functions that run their body over `cases`
/// randomly generated bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(::std::file!(), ::std::line!(), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // Bodies may `return Ok(())` early (real-proptest style),
                // so each case runs in a Result-returning closure.
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __outcome {
                    ::std::panic!("proptest case {} failed: {:?}", __case, __e);
                }
            }
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn tuples_and_maps(v in prop::collection::vec((0u8..10, "[a-c]{1,3}"), 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (n, s) in v {
                prop_assert!(n < 10);
                prop_assert!((1..=3).contains(&s.len()));
                prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            }
        }

        fn oneof_unions(x in prop_oneof![Just(1u8), Just(2), 5u8..8]) {
            prop_assert!(x == 1 || x == 2 || (5..8).contains(&x));
        }
    }

    proptest! {
        fn default_config_runs(b in any::<bool>()) {
            let _ = b;
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..4).prop_map(Tree::Leaf).prop_recursive(3, 12, 4, |inner| {
            prop_oneof![
                (0u8..4).prop_map(Tree::Leaf),
                prop::collection::vec(inner, 1..3).prop_map(Tree::Node),
            ]
        });
        let mut rng = TestRng::for_case("x", 1, 1);
        for _ in 0..50 {
            let _ = strat.generate(&mut rng);
        }
    }

    use crate::prelude::prop;
}
