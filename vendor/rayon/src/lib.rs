//! Offline stand-in for the `rayon` crate.
//!
//! Provides real parallelism (scoped OS threads, one chunk per core)
//! behind the tiny slice of the rayon API this workspace uses:
//! `slice.par_iter().map(f).collect()`, `in_place_scope` + `spawn`, and
//! scoped [`ThreadPool`]s built by [`ThreadPoolBuilder`] whose
//! [`install`](ThreadPool::install) bounds the fan-out width of parallel
//! iterators run inside it. Order is preserved: chunk results are
//! concatenated in input order.
//!
//! Unlike real rayon there is no persistent worker pool: a `ThreadPool`
//! is a concurrency *budget* applied through a thread-local override, and
//! OS threads are spawned per `collect`. Two pools in one process never
//! share or fight over global state, which is the property the workspace
//! relies on.

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Fan-out width installed by [`ThreadPool::install`]; 0 = default.
    static POOL_WIDTH: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

/// Number of worker threads parallel iterators fan out over in the
/// current context (the installed pool's width, or the CPU count).
pub fn current_num_threads() -> usize {
    let w = POOL_WIDTH.with(Cell::get);
    if w > 0 {
        w
    } else {
        default_threads()
    }
}

/// Number of worker threads to fan work out over.
fn threads() -> usize {
    current_num_threads()
}

/// Error building a [`ThreadPool`] (this stand-in never fails; the type
/// exists so call sites match the real rayon API).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (width = CPU count).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool width; `0` means the CPU count.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let width = if self.num_threads == 0 {
            default_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { width })
    }
}

/// A scoped concurrency budget: parallel iterators run under
/// [`install`](ThreadPool::install) fan out over at most this pool's
/// width, independent of any other pool in the process.
#[derive(Debug)]
pub struct ThreadPool {
    width: usize,
}

/// Restores the previous thread-local width on drop (unwind-safe).
struct WidthGuard {
    prev: usize,
}

impl Drop for WidthGuard {
    fn drop(&mut self) {
        POOL_WIDTH.with(|c| c.set(self.prev));
    }
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.width
    }

    /// Runs `op` with this pool's width governing parallel iterators on
    /// the calling thread.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let _guard = POOL_WIDTH.with(|c| {
            let prev = c.get();
            c.set(self.width);
            WidthGuard { prev }
        });
        op()
    }
}

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// `.par_iter()` on slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element reference type.
    type Item: Send + 'a;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A minimal parallel iterator: `map` then `collect`.
pub trait ParallelIterator: Sized + Send {
    /// Item type.
    type Item: Send;

    /// Runs the pipeline, producing items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects into any `FromIterator` container (e.g. `Vec<T>` or
    /// `Result<Vec<T>, E>`).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run().into_iter().collect()
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    fn run(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// Result of [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        let items = self.base.run();
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = threads().min(n);
        if workers <= 1 {
            let f = &self.f;
            return items.into_iter().map(f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut chunks: Vec<Vec<R>> = Vec::new();
        // Move items into per-chunk queues, then process each queue on
        // its own scoped thread; concatenating preserves input order.
        let mut queues: Vec<Vec<I::Item>> = Vec::with_capacity(workers);
        let mut iter = items.into_iter();
        loop {
            let q: Vec<I::Item> = iter.by_ref().take(chunk).collect();
            if q.is_empty() {
                break;
            }
            queues.push(q);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = queues
                .into_iter()
                .map(|q| scope.spawn(move || q.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                chunks.push(h.join().expect("rayon stub worker panicked"));
            }
        });
        chunks.into_iter().flatten().collect()
    }
}

/// A fork-join scope; mirrors `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `body` onto the scope. The closure receives the scope so
    /// it can spawn further work (unused by this workspace).
    pub fn spawn<F>(&self, body: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// Runs `f` with a scope whose spawned tasks all complete before this
/// function returns, executing the closure on the calling thread.
pub fn in_place_scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_result_short_circuits_value() {
        let v: Vec<u64> = (0..10).collect();
        let ok: Result<Vec<u64>, String> = v.par_iter().map(|x| Ok(*x)).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<u64>, String> = v
            .par_iter()
            .map(|x| if *x == 5 { Err("boom".to_string()) } else { Ok(*x) })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn pool_install_scopes_width() {
        assert!(super::current_num_threads() >= 1);
        let pool = super::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(super::current_num_threads(), 3);
            let inner = super::ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            inner.install(|| assert_eq!(super::current_num_threads(), 1));
            assert_eq!(super::current_num_threads(), 3, "inner install restores");
            let v: Vec<u64> = (0..100).collect();
            let out: Vec<u64> = v.par_iter().map(|x| x + 1).collect();
            assert_eq!(out, (1..=100).collect::<Vec<_>>());
        });
        assert_ne!(super::POOL_WIDTH.with(std::cell::Cell::get), 3, "width restored");
    }

    #[test]
    fn pools_do_not_leak_across_threads() {
        let pool = super::ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            std::thread::scope(|s| {
                s.spawn(|| {
                    // A fresh thread sees the default width, not the
                    // installing thread's override.
                    assert_eq!(super::POOL_WIDTH.with(std::cell::Cell::get), 0);
                });
            });
        });
    }

    #[test]
    fn scope_spawns_run() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let n = AtomicU32::new(0);
        super::in_place_scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }
}
