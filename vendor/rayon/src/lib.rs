//! Offline stand-in for the `rayon` crate.
//!
//! Provides real parallelism (scoped OS threads, one chunk per core)
//! behind the tiny slice of the rayon API this workspace uses:
//! `slice.par_iter().map(f).collect()` and `in_place_scope` + `spawn`.
//! Order is preserved: chunk results are concatenated in input order.

use std::num::NonZeroUsize;

/// Number of worker threads to fan work out over.
fn threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(4)
}

pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// `.par_iter()` on slice-like containers.
pub trait IntoParallelRefIterator<'a> {
    /// Element reference type.
    type Item: Send + 'a;
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Returns a parallel iterator over references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// A minimal parallel iterator: `map` then `collect`.
pub trait ParallelIterator: Sized + Send {
    /// Item type.
    type Item: Send;

    /// Runs the pipeline, producing items in input order.
    fn run(self) -> Vec<Self::Item>;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects into any `FromIterator` container (e.g. `Vec<T>` or
    /// `Result<Vec<T>, E>`).
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        self.run().into_iter().collect()
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    fn run(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

/// Result of [`ParallelIterator::map`].
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run(self) -> Vec<R> {
        let items = self.base.run();
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = threads().min(n);
        if workers <= 1 {
            let f = &self.f;
            return items.into_iter().map(f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        let mut chunks: Vec<Vec<R>> = Vec::new();
        // Move items into per-chunk queues, then process each queue on
        // its own scoped thread; concatenating preserves input order.
        let mut queues: Vec<Vec<I::Item>> = Vec::with_capacity(workers);
        let mut iter = items.into_iter();
        loop {
            let q: Vec<I::Item> = iter.by_ref().take(chunk).collect();
            if q.is_empty() {
                break;
            }
            queues.push(q);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = queues
                .into_iter()
                .map(|q| scope.spawn(move || q.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                chunks.push(h.join().expect("rayon stub worker panicked"));
            }
        });
        chunks.into_iter().flatten().collect()
    }
}

/// A fork-join scope; mirrors `rayon::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `body` onto the scope. The closure receives the scope so
    /// it can spawn further work (unused by this workspace).
    pub fn spawn<F>(&self, body: F)
    where
        F: for<'a> FnOnce(&'a Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || body(&Scope { inner }));
    }
}

/// Runs `f` with a scope whose spawned tasks all complete before this
/// function returns, executing the closure on the calling thread.
pub fn in_place_scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_result_short_circuits_value() {
        let v: Vec<u64> = (0..10).collect();
        let ok: Result<Vec<u64>, String> = v.par_iter().map(|x| Ok(*x)).collect();
        assert_eq!(ok.unwrap().len(), 10);
        let err: Result<Vec<u64>, String> = v
            .par_iter()
            .map(|x| if *x == 5 { Err("boom".to_string()) } else { Ok(*x) })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn scope_spawns_run() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let n = AtomicU32::new(0);
        super::in_place_scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }
}
