//! Offline stand-in for the `thiserror` crate.
//!
//! Re-exports the `Error` derive macro, which generates `Display`,
//! `std::error::Error`, and `From` impls for enum error types from
//! `#[error("...")]`, `#[error(transparent)]`, `#[from]`, and
//! `#[source]` attributes.

pub use thiserror_impl::Error;
