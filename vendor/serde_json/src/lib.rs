//! Offline stand-in for the `serde_json` crate.
//!
//! A self-contained JSON tree (`Value`/`Number`/`Map`), recursive-descent
//! parser, compact + pretty printers, the `json!` macro, and the
//! `to_string`/`from_str`/`to_value`/`from_value` entry points — all
//! bridged to the simplified serde stand-in through its JSON-shaped
//! `Content` data model. Matches real serde_json's observable behaviour
//! for this workspace: objects iterate in sorted key order (the default
//! BTreeMap-backed `Map`), integral floats print with a trailing `.0`,
//! and numbers parse to `i64` when possible.

use serde::{Content, Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

mod macros;

/// A JSON error (parse or data-shape mismatch).
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({:?})", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error::new(e.0)
    }
}

/// A JSON number: integer when possible, float otherwise.
#[derive(Clone, Copy, Debug)]
pub struct Number {
    n: N,
}

#[derive(Clone, Copy, Debug)]
enum N {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    /// Integer value if this number is a (fitting) integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::I(i) => Some(i),
            N::U(u) => i64::try_from(u).ok(),
            N::F(_) => None,
        }
    }

    /// Unsigned value if non-negative integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::I(i) => u64::try_from(i).ok(),
            N::U(u) => Some(u),
            N::F(_) => None,
        }
    }

    /// Lossy float view of any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self.n {
            N::I(i) => Some(i as f64),
            N::U(u) => Some(u as f64),
            N::F(f) => Some(f),
        }
    }

    /// Whether the value is stored as a signed integer.
    pub fn is_i64(&self) -> bool {
        matches!(self.n, N::I(_))
    }

    /// Whether the value is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::F(_))
    }

    /// A float Number (finite input only).
    pub fn from_f64(f: f64) -> Option<Number> {
        f.is_finite().then_some(Number { n: N::F(f) })
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.n, other.n) {
            (N::F(a), N::F(b)) => a == b,
            (N::F(_), _) | (_, N::F(_)) => false,
            _ => self.as_i64() == other.as_i64() && self.as_u64() == other.as_u64(),
        }
    }
}

macro_rules! number_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number { Number { n: N::I(v as i64) } }
        }
    )*};
}
number_from_signed!(i8, i16, i32, i64, isize);

macro_rules! number_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Number {
            fn from(v: $t) -> Number {
                match i64::try_from(v as u64) {
                    Ok(i) => Number { n: N::I(i) },
                    Err(_) => Number { n: N::U(v as u64) },
                }
            }
        }
    )*};
}
number_from_unsigned!(u8, u16, u32, u64, usize);

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::I(i) => write!(f, "{i}"),
            N::U(u) => write!(f, "{u}"),
            N::F(x) => f.write_str(&format_f64(x)),
        }
    }
}

/// serde_json (ryu) float formatting: integral finite floats keep a
/// trailing `.0`; everything else uses the shortest round-trip form.
fn format_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e16 {
        format!("{x:.1}")
    } else {
        format!("{x}")
    }
}

/// An ordered (sorted-key) JSON object, mirroring serde_json's default
/// BTreeMap-backed `Map`.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Map<K: Ord = String, V = Value> {
    map: BTreeMap<K, V>,
}

impl<K: Ord, V> Map<K, V> {
    /// An empty map.
    pub fn new() -> Map<K, V> {
        Map {
            map: BTreeMap::new(),
        }
    }

    /// Inserts a key-value pair, returning any previous value.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.map.insert(key, value)
    }

    /// Looks a key up.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.get(key)
    }

    /// Mutable lookup.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.get_mut(key)
    }

    /// Whether the key is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.contains_key(key)
    }

    /// Removes a key.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.map.remove(key)
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> std::collections::btree_map::Iter<'_, K, V> {
        self.map.iter()
    }

    /// Iterates keys in order.
    pub fn keys(&self) -> std::collections::btree_map::Keys<'_, K, V> {
        self.map.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> std::collections::btree_map::Values<'_, K, V> {
        self.map.values()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

impl<K: Ord, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::collections::btree_map::IntoIter<K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.map.into_iter()
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a Map<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::collections::btree_map::Iter<'a, K, V>;
    fn into_iter(self) -> Self::IntoIter {
        self.map.iter()
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Map<K, V> {
        Map {
            map: iter.into_iter().collect(),
        }
    }
}

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(Map<String, Value>),
}

impl Value {
    /// Object view.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Unsigned-integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Float view (any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object-key lookup (None for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_compact(self, &mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Value {
        Value::Object(m)
    }
}

macro_rules! value_from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::from(v)) }
        }
    )*};
}
value_from_number!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Number::from_f64(v).map_or(Value::Null, Value::Number)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::from(f64::from(v))
    }
}

// ----------------------------------------------------- serde bridge

fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(n) => match n.n {
            N::I(i) => Content::I64(i),
            N::U(u) => Content::U64(u),
            N::F(f) => Content::F64(f),
        },
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => Content::Map(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

fn content_to_value(c: &Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(*b),
        Content::I64(i) => Value::Number(Number { n: N::I(*i) }),
        Content::U64(u) => Value::Number(Number { n: N::U(*u) }),
        Content::F64(f) => Value::Number(Number { n: N::F(*f) }),
        Content::Str(s) => Value::String(s.clone()),
        Content::Seq(items) => Value::Array(items.iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .iter()
                .map(|(k, v)| (k.clone(), content_to_value(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn serialize_content(&self) -> Content {
        value_to_content(self)
    }
}

impl Deserialize for Value {
    fn deserialize_content(c: &Content) -> Result<Value, serde::DeError> {
        Ok(content_to_value(c))
    }
}

// ----------------------------------------------------------- printing

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error::new(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.error(what)
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => self.error("expected a JSON value"),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.error("invalid keyword")
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.error("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.parse_hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.error("invalid unicode escape"),
                            }
                            continue;
                        }
                        _ => return self.error("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return self.error("truncated unicode escape");
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return self.error("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.eat(b'{', "expected object")?;
        let mut entries: Vec<(String, Content)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            let value = self.parse_value()?;
            entries.retain(|(k, _)| *k != key);
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return self.error("expected `,` or `}`"),
            }
        }
    }
}

fn parse_content(bytes: &[u8]) -> Result<Content, Error> {
    let mut p = Parser { bytes, pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return p.error("trailing characters");
    }
    Ok(v)
}

// ---------------------------------------------------------- entry points

/// Serializes to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&content_to_value(&value.serialize_content()), &mut out);
    Ok(out)
}

/// Serializes to human-readable two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&content_to_value(&value.serialize_content()), &mut out, 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(content_to_value(&value.serialize_content()))
}

/// Parses JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    from_slice(s.as_bytes())
}

/// Parses JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let content = parse_content(bytes)?;
    T::deserialize_content(&content).map_err(Error::from)
}

/// Converts a [`Value`] tree into any deserializable type.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize_content(&value_to_content(&value)).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_print_round_trip() {
        let v: Value = from_str(r#"{"b":[1,2.5,"x"],"a":null,"c":true}"#).unwrap();
        // Keys come back sorted (BTreeMap-backed map).
        assert_eq!(to_string(&v).unwrap(), r#"{"a":null,"b":[1,2.5,"x"],"c":true}"#);
    }

    #[test]
    fn integral_floats_keep_point_zero() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&-0.125f64).unwrap(), "-0.125");
        let v: Value = from_str("2.0").unwrap();
        assert_eq!(v.as_f64(), Some(2.0));
        assert_eq!(v.as_i64(), None);
    }

    #[test]
    fn json_macro_shapes() {
        let rows = vec![json!([1, 2]), json!([3, 4])];
        let v = json!({
            "name": "t",
            "rows": rows,
            "nested": {"k": [true, null, 1.5]},
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"t","nested":{"k":[true,null,1.5]},"rows":[[1,2],[3,4]]}"#
        );
    }

    #[test]
    fn string_escapes() {
        let v: Value = from_str(r#""a\nbA\"""#).unwrap();
        assert_eq!(v.as_str(), Some("a\nbA\""));
        assert_eq!(to_string(&v).unwrap(), r#""a\nbA\"""#);
    }

    #[test]
    fn pretty_matches_serde_json_layout() {
        let v = json!({"a": [1], "b": {}});
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}"
        );
    }
}
