//! The `json!` macro: a tt-muncher port of serde_json's construction
//! macro, covering literals, arrays, objects, and interpolated
//! expressions (which go through `to_value`).

/// Builds a [`crate::Value`] from JSON-like syntax.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => {
        $crate::json_internal!($($json)+)
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // Arrays: accumulate parsed elements in [..] until input runs dry.
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr),*]) => {
        ::std::vec![$($elems),*]
    };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // Objects: munch `"key": value` pairs into the `$object` binding.
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)*) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)*] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)*) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)*] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)*) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)*] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)*) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)*] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)*) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)*] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)*) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)*] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)*) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)*] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    // Entry points.
    (null) => {
        $crate::Value::Null
    };
    (true) => {
        $crate::Value::Bool(true)
    };
    (false) => {
        $crate::Value::Bool(false)
    };
    ([]) => {
        $crate::Value::Array(::std::vec![])
    };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => {
        $crate::Value::Object($crate::Map::new())
    };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value failed to serialize")
    };
}
