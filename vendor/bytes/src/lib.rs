//! Offline stand-in for the `bytes` crate.
//!
//! Implements the small slice of the real API this workspace uses: a
//! cheaply cloneable, reference-counted immutable byte buffer. Clones
//! share the same allocation, so `as_ptr()` is stable across clones —
//! several tests rely on that to prove packets are copied by reference.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer backed by `Arc<[u8]>`.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static byte slice (copies it; the real crate borrows, but
    /// nothing here depends on the distinction).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes { data: bytes.into() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            write!(f, "\\x{b:02x}")?;
        }
        if self.data.len() > 32 {
            write!(f, "…")?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_allocation() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
        assert_eq!(&a[1..], &[2, 3]);
    }
}
