//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Mirrors the subset of the criterion 0.5 API this workspace's benches
//! use. Each benchmark is warmed up briefly, then timed over
//! `sample_size` samples; median per-iteration time (and throughput,
//! when configured) is printed in a criterion-like format. No plotting,
//! no statistical regression analysis.
//!
//! Command-line compatibility (the subset CI's bench-smoke step needs):
//! positional arguments are substring filters on full benchmark names
//! (`group/name`), as in real criterion — `cargo bench -- kernel`
//! runs only benchmarks whose name contains `kernel`; `--quick` caps
//! sampling at 2 samples per benchmark. Unknown `-`-prefixed flags
//! (e.g. cargo's own `--bench`) are ignored.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Parsed process arguments: name filters and quick mode.
struct CliArgs {
    filters: Vec<String>,
    quick: bool,
}

fn cli() -> &'static CliArgs {
    static CLI: OnceLock<CliArgs> = OnceLock::new();
    CLI.get_or_init(|| {
        let mut filters = Vec::new();
        let mut quick = false;
        for arg in std::env::args().skip(1) {
            if arg == "--quick" {
                quick = true;
            } else if !arg.starts_with('-') {
                filters.push(arg);
            }
            // Other flags (--bench, --exact, ...) are tolerated no-ops.
        }
        CliArgs { filters, quick }
    })
}

/// `true` when `name` passes the filter list (empty list passes all).
fn name_matches(name: &str, filters: &[String]) -> bool {
    filters.is_empty() || filters.iter().any(|f| name.contains(f.as_str()))
}

/// How `iter_batched` sizes its batches. The stand-in always runs one
/// routine call per measured batch, so variants only differ in name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units for reporting throughput alongside timing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the closure given to `bench_function`; runs and times the
/// benchmark routine.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration duration, filled in by `iter`/`iter_batched`.
    measured: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping its return value alive until after the
    /// clock stops (criterion's drop-outside-measurement contract is
    /// approximated by timing the call itself only).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: establish an iteration count that runs long enough
        // per sample to be measurable.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            per_iter.push(start.elapsed() / iters as u32);
        }
        per_iter.sort();
        self.measured = Some(per_iter[per_iter.len() / 2]);
    }

    /// Times `routine` on fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        // One warm-up call so first-touch effects don't land in sample 0.
        std::hint::black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            per_iter.push(start.elapsed());
            drop(std::hint::black_box(out));
        }
        per_iter.sort();
        self.measured = Some(per_iter[per_iter.len() / 2]);
    }
}

/// Top-level harness handle.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_one(name, self.sample_size, None, f);
        self
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Reports throughput (elements or bytes per second) for subsequent
    /// benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (report-flushing no-op in the stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let args = cli();
    if !name_matches(name, &args.filters) {
        return;
    }
    let samples = if args.quick { samples.min(2) } else { samples };
    let mut bencher = Bencher {
        samples,
        measured: None,
    };
    f(&mut bencher);
    match bencher.measured {
        Some(t) => {
            let mut line = format!("{name:<40} time: [{}]", format_duration(t));
            if let Some(tp) = throughput {
                let secs = t.as_secs_f64().max(1e-12);
                match tp {
                    Throughput::Elements(n) => {
                        line.push_str(&format!(" thrpt: [{}/s]", format_count(n as f64 / secs)));
                    }
                    Throughput::Bytes(n) => {
                        line.push_str(&format!(" thrpt: [{}B/s]", format_count(n as f64 / secs)));
                    }
                }
            }
            println!("{line}");
        }
        None => println!("{name:<40} (no measurement recorded)"),
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos() as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

fn format_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.3} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.3} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.3} K", v / 1e3)
    } else {
        format!("{v:.1} ")
    }
}

/// Declares a benchmark group in either criterion form:
/// `criterion_group!(name, target, ...)` or
/// `criterion_group! { name = n; config = expr; targets = t, ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion: $crate::Criterion = $config;
                $target(&mut criterion);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }

    #[test]
    fn filter_matching() {
        let none: Vec<String> = vec![];
        assert!(name_matches("kernel/blur", &none));
        let f = vec!["kernel".to_string(), "gop_cache".to_string()];
        assert!(name_matches("kernel/blur", &f));
        assert!(name_matches("gop_cache/hit", &f));
        assert!(!name_matches("sweep/q3", &f));
    }

    #[test]
    fn formats_are_stable() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500.00 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(format_count(2_500_000.0), "2.500 M");
    }
}
