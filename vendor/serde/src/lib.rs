//! Offline stand-in for the `serde` crate.
//!
//! The real serde is a zero-copy visitor framework; this workspace only
//! ever round-trips through JSON via derives (no hand-written impls, no
//! generic `Serialize`/`Deserialize` bounds beyond the entry points in
//! `serde_json`). That permits a drastically simpler miniserde-style
//! design: the data model is a concrete JSON-shaped [`Content`] tree,
//! `Serialize` renders into it, `Deserialize` reads out of it, and the
//! derive macros generate those impls with externally-tagged enum
//! representation — matching what real serde + serde_json produce for
//! every type in this repository.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model shared by the serde and serde_json
/// stand-ins.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key-value pairs in insertion order; serde_json sorts on render.
    Map(Vec<(String, Content)>),
}

/// Deserialization error: a human-readable message, matching how this
/// workspace consumes serde errors (Display only).
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Builds a [`DeError`]; used by generated code.
pub fn de_error(msg: impl Into<String>) -> DeError {
    DeError(msg.into())
}

/// A value that can render itself into the data model.
pub trait Serialize {
    /// Renders `self` as a [`Content`] tree.
    fn serialize_content(&self) -> Content;
}

/// A value that can be read back out of the data model.
pub trait Deserialize: Sized {
    /// Reads a value from a [`Content`] tree.
    fn deserialize_content(content: &Content) -> Result<Self, DeError>;
}

/// Missing-field fallback used by derived struct impls: types that
/// accept `null` (e.g. `Option`) default quietly; everything else
/// reports the missing field.
pub fn missing_field<T: Deserialize>(name: &str) -> Result<T, DeError> {
    T::deserialize_content(&Content::Null)
        .map_err(|_| de_error(format!("missing field `{name}`")))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<bool, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

fn type_error(want: &str, got: &Content) -> DeError {
    let kind = match got {
        Content::Null => "null",
        Content::Bool(_) => "bool",
        Content::I64(_) | Content::U64(_) => "integer",
        Content::F64(_) => "float",
        Content::Str(_) => "string",
        Content::Seq(_) => "array",
        Content::Map(_) => "object",
    };
    de_error(format!("invalid type: expected {want}, found {kind}"))
}

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<$t, DeError> {
                let v = match c {
                    Content::I64(i) => *i,
                    Content::U64(u) => i64::try_from(*u)
                        .map_err(|_| de_error("integer out of range"))?,
                    other => return Err(type_error("integer", other)),
                };
                <$t>::try_from(v).map_err(|_| de_error("integer out of range"))
            }
        }
    )*};
}

serialize_signed!(i8, i16, i32, i64, isize);

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                let v = *self as u64;
                match i64::try_from(v) {
                    Ok(i) => Content::I64(i),
                    Err(_) => Content::U64(v),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<$t, DeError> {
                let v = match c {
                    Content::I64(i) => u64::try_from(*i)
                        .map_err(|_| de_error("expected unsigned integer"))?,
                    Content::U64(u) => *u,
                    other => return Err(type_error("integer", other)),
                };
                <$t>::try_from(v).map_err(|_| de_error("integer out of range"))
            }
        }
    )*};
}

serialize_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(c: &Content) -> Result<f64, DeError> {
        match c {
            Content::F64(f) => Ok(*f),
            Content::I64(i) => Ok(*i as f64),
            Content::U64(u) => Ok(*u as f64),
            other => Err(type_error("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_content(c: &Content) -> Result<f32, DeError> {
        f64::deserialize_content(c).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<String, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_content(c: &Content) -> Result<char, DeError> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(type_error("single-character string", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.serialize_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Option<T>, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Vec<T>, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(c: &Content) -> Result<Box<T>, DeError> {
        T::deserialize_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn deserialize_content(c: &Content) -> Result<std::sync::Arc<T>, DeError> {
        T::deserialize_content(c).map(std::sync::Arc::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize_content(c: &Content) -> Result<BTreeMap<String, V>, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                .collect(),
            other => Err(type_error("object", other)),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn serialize_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn deserialize_content(c: &Content) -> Result<HashMap<String, V, S>, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                .collect(),
            other => Err(type_error("object", other)),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.serialize_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_content(c: &Content) -> Result<($($t,)+), DeError> {
                match c {
                    Content::Seq(items) => {
                        let want = [$($n),+].len();
                        if items.len() != want {
                            return Err(de_error(format!(
                                "expected array of {want} elements, found {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::deserialize_content(&items[$n])?,)+))
                    }
                    other => Err(type_error("array", other)),
                }
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::deserialize_content(&42i64.serialize_content()).unwrap(), 42);
        let c = (1i64, 2i64).serialize_content();
        assert_eq!(c, Content::Seq(vec![Content::I64(1), Content::I64(2)]));
        let back: (i64, i64) = Deserialize::deserialize_content(&c).unwrap();
        assert_eq!(back, (1, 2));
    }

    #[test]
    fn option_null_handling() {
        assert_eq!(Option::<i64>::deserialize_content(&Content::Null).unwrap(), None);
        assert!(missing_field::<i64>("x").is_err());
        assert_eq!(missing_field::<Option<i64>>("x").unwrap(), None);
    }
}
