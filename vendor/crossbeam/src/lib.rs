//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! The workspace uses single-consumer unbounded channels only, which the
//! std implementation covers directly.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_round_trip() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }
}
