//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! The workspace uses single-consumer channels only — unbounded for
//! fan-in of results, bounded for backpressured pipeline stages — which
//! the std implementation covers directly.

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, SendError, Sender, SyncSender, TryRecvError, TrySendError,
    };

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// Creates a bounded MPSC channel: `send` blocks while `cap`
    /// messages are in flight (the backpressure a decode-ahead pipeline
    /// stage needs so prefetch cannot run arbitrarily far ahead).
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn channel_round_trip() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = super::channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(tx.try_send(3).is_err(), "third send must block");
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        assert!(rx.recv().is_err(), "senders gone");
    }
}
