//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented with only the built-in `proc_macro` crate (no syn/quote
//! offline). Generates impls of the simplified `serde::Serialize` /
//! `serde::Deserialize` traits (a concrete JSON-shaped `Content` data
//! model) with the same observable representation real serde +
//! serde_json produce for the shapes this workspace uses:
//!
//! - named structs (field attr `#[serde(default)]`)
//! - tuple structs (newtype = transparent, n-tuple = array)
//! - enums, externally tagged (unit / newtype / tuple / struct
//!   variants), honoring `#[serde(rename_all = "snake_case")]`
//! - container attrs `from`, `try_from`, `into`

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone)]
struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Container {
    name: String,
    rename_all: bool,
    from: Option<String>,
    try_from: Option<String>,
    into: Option<String>,
    shape: Shape,
}

/// Derives the stand-in `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_serialize(&c)
        .parse()
        .expect("serde stand-in generated invalid Rust (Serialize)")
}

/// Derives the stand-in `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let c = parse_container(input);
    gen_deserialize(&c)
        .parse()
        .expect("serde stand-in generated invalid Rust (Deserialize)")
}

// ---------------------------------------------------------------- parsing

/// Parses `#[serde(...)]` attribute arguments into (key, value) pairs;
/// bare idents get an empty value.
fn parse_serde_attr(args: &TokenStream) -> Vec<(String, String)> {
    let tokens: Vec<TokenTree> = args.clone().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        i += 1;
        let mut value = String::new();
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            if let Some(TokenTree::Literal(l)) = tokens.get(i) {
                value = l
                    .to_string()
                    .trim_matches('"')
                    .replace("\\\"", "\"");
                i += 1;
            }
        }
        out.push((key, value));
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    out
}

/// Collects attributes at `i`, returning all `#[serde(...)]` key-value
/// pairs found among them.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) =
                (inner.first(), inner.get(1))
            {
                if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis {
                    pairs.extend(parse_serde_attr(&args.stream()));
                }
            }
        }
        *i += 2;
    }
    pairs
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn parse_container(input: TokenStream) -> Container {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let attrs = take_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let mut rename_all = false;
    let (mut from, mut try_from, mut into) = (None, None, None);
    for (k, v) in &attrs {
        match k.as_str() {
            "rename_all" => {
                assert_eq!(
                    v.as_str(),
                    "snake_case",
                    "serde stand-in only supports rename_all = \"snake_case\""
                );
                rename_all = true;
            }
            "from" => from = Some(v.clone()),
            "try_from" => try_from = Some(v.clone()),
            "into" => into = Some(v.clone()),
            _ => {}
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in does not support generic types");
    }

    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Shape::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        },
        other => panic!("serde stand-in cannot derive for `{other}` items"),
    };

    Container {
        name,
        rename_all,
        from,
        try_from,
        into,
        shape,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 1; // name
        i += 1; // ':'
        skip_type(&tokens, &mut i);
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        fields.push(Field {
            name,
            default: attrs.iter().any(|(k, _)| k == "default"),
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        take_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        count += 1;
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

/// Advances past one type, stopping at a top-level comma
/// (angle-bracket depth aware; parens/brackets arrive pre-grouped).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        take_attrs(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected variant name, found {other}"),
        };
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_tuple_fields(g.stream()) {
                    1 => VariantKind::Tuple(1),
                    n => VariantKind::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

/// `CamelCase` → `snake_case` (serde's rename_all rule).
fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn variant_key(c: &Container, v: &Variant) -> String {
    if c.rename_all {
        snake_case(&v.name)
    } else {
        v.name.clone()
    }
}

fn field_key(c: &Container, f: &Field) -> String {
    if c.rename_all {
        snake_case(&f.name)
    } else {
        f.name.clone()
    }
}

/// Serialize expression for a list of named fields bound to
/// expressions like `&self.x` or `_x`.
fn named_fields_ser(c: &Container, fields: &[Field], access: impl Fn(&Field) -> String) -> String {
    let mut entries = String::new();
    for f in fields {
        entries.push_str(&format!(
            "(::std::string::String::from(\"{key}\"), ::serde::Serialize::serialize_content({acc})),",
            key = field_key(c, f),
            acc = access(f)
        ));
    }
    format!("::serde::Content::Map(::std::vec![{entries}])")
}

/// Deserialize expression building a struct literal body for named
/// fields from a `__fields: &Vec<(String, Content)>` binding.
fn named_fields_de(c: &Container, fields: &[Field]) -> String {
    let mut body = String::new();
    for f in fields {
        let fallback = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!("::serde::missing_field(\"{}\")?", field_key(c, f))
        };
        body.push_str(&format!(
            "{name}: match __fields.iter().find(|(__k, _)| __k == \"{key}\") {{\n\
             Some((_, __v)) => ::serde::Deserialize::deserialize_content(__v)?,\n\
             None => {fallback},\n}},\n",
            name = f.name,
            key = field_key(c, f)
        ));
    }
    body
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = if let Some(into) = &c.into {
        format!(
            "let __repr: {into} = ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::serialize_content(&__repr)"
        )
    } else {
        match &c.shape {
            Shape::UnitStruct => "::serde::Content::Null".to_string(),
            Shape::TupleStruct(1) => {
                "::serde::Serialize::serialize_content(&self.0)".to_string()
            }
            Shape::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::serialize_content(&self.{i})"))
                    .collect();
                format!("::serde::Content::Seq(::std::vec![{}])", items.join(","))
            }
            Shape::NamedStruct(fields) => {
                named_fields_ser(c, fields, |f| format!("&self.{}", f.name))
            }
            Shape::Enum(variants) => {
                let mut arms = String::new();
                for v in variants {
                    let key = variant_key(c, v);
                    match &v.kind {
                        VariantKind::Unit => arms.push_str(&format!(
                            "{name}::{v} => ::serde::Content::Str(::std::string::String::from(\"{key}\")),\n",
                            v = v.name
                        )),
                        VariantKind::Tuple(1) => arms.push_str(&format!(
                            "{name}::{v}(__f0) => ::serde::Content::Map(::std::vec![(\
                             ::std::string::String::from(\"{key}\"), \
                             ::serde::Serialize::serialize_content(__f0))]),\n",
                            v = v.name
                        )),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_content({b})"))
                                .collect();
                            arms.push_str(&format!(
                                "{name}::{v}({binds}) => ::serde::Content::Map(::std::vec![(\
                                 ::std::string::String::from(\"{key}\"), \
                                 ::serde::Content::Seq(::std::vec![{items}]))]),\n",
                                v = v.name,
                                binds = binds.join(","),
                                items = items.join(",")
                            ));
                        }
                        VariantKind::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = named_fields_ser(c, fields, |f| f.name.clone());
                            arms.push_str(&format!(
                                "{name}::{v} {{ {binds} }} => ::serde::Content::Map(::std::vec![(\
                                 ::std::string::String::from(\"{key}\"), {inner})]),\n",
                                v = v.name,
                                binds = binds.join(",")
                            ));
                        }
                    }
                }
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = if let Some(ty) = &c.try_from {
        format!(
            "let __repr: {ty} = ::serde::Deserialize::deserialize_content(__content)?;\n\
             ::std::convert::TryFrom::try_from(__repr)\n\
             .map_err(|__e| ::serde::de_error(::std::format!(\"{{}}\", __e)))"
        )
    } else if let Some(ty) = &c.from {
        format!(
            "let __repr: {ty} = ::serde::Deserialize::deserialize_content(__content)?;\n\
             ::std::result::Result::Ok(::std::convert::From::from(__repr))"
        )
    } else {
        match &c.shape {
            Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
            Shape::TupleStruct(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_content(__content)?))"
            ),
            Shape::TupleStruct(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::deserialize_content(&__items[{i}])?"))
                    .collect();
                format!(
                    "match __content {{\n\
                     ::serde::Content::Seq(__items) if __items.len() == {n} => \
                     ::std::result::Result::Ok({name}({items})),\n\
                     _ => ::std::result::Result::Err(::serde::de_error(\
                     \"expected an array of {n} elements for {name}\")),\n}}",
                    items = items.join(",")
                )
            }
            Shape::NamedStruct(fields) => {
                let body = named_fields_de(c, fields);
                format!(
                    "match __content {{\n\
                     ::serde::Content::Map(__fields) => ::std::result::Result::Ok({name} {{\n{body}}}),\n\
                     _ => ::std::result::Result::Err(::serde::de_error(\
                     \"expected an object for {name}\")),\n}}"
                )
            }
            Shape::Enum(variants) => {
                let mut unit_arms = String::new();
                let mut tagged_arms = String::new();
                for v in variants {
                    let key = variant_key(c, v);
                    match &v.kind {
                        VariantKind::Unit => unit_arms.push_str(&format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v}),\n",
                            v = v.name
                        )),
                        VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                            "\"{key}\" => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::deserialize_content(__v)?)),\n",
                            v = v.name
                        )),
                        VariantKind::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize_content(&__items[{i}])?")
                                })
                                .collect();
                            tagged_arms.push_str(&format!(
                                "\"{key}\" => match __v {{\n\
                                 ::serde::Content::Seq(__items) if __items.len() == {n} => \
                                 ::std::result::Result::Ok({name}::{v}({items})),\n\
                                 _ => ::std::result::Result::Err(::serde::de_error(\
                                 \"variant {key} expects an array of {n} elements\")),\n}},\n",
                                v = v.name,
                                items = items.join(",")
                            ));
                        }
                        VariantKind::Named(fields) => {
                            let body = named_fields_de(c, fields);
                            tagged_arms.push_str(&format!(
                                "\"{key}\" => match __v {{\n\
                                 ::serde::Content::Map(__fields) => \
                                 ::std::result::Result::Ok({name}::{v} {{\n{body}}}),\n\
                                 _ => ::std::result::Result::Err(::serde::de_error(\
                                 \"variant {key} expects an object\")),\n}},\n",
                                v = v.name
                            ));
                        }
                    }
                }
                format!(
                    "match __content {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                     __other => ::std::result::Result::Err(::serde::de_error(\
                     ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n}},\n\
                     ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                     let (__k, __v) = &__entries[0];\n\
                     match __k.as_str() {{\n{tagged_arms}\
                     __other => ::std::result::Result::Err(::serde::de_error(\
                     ::std::format!(\"unknown variant `{{}}` of {name}\", __other))),\n}}\n}},\n\
                     _ => ::std::result::Result::Err(::serde::de_error(\
                     \"expected a string or single-key object for enum {name}\")),\n}}"
                )
            }
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         #[allow(unused_variables, clippy::redundant_closure)]\n\
         fn deserialize_content(__content: &::serde::Content) -> \
         ::std::result::Result<{name}, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
