#![warn(missing_docs)]

//! Frame-centric baseline: what a Python + OpenCV script does.
//!
//! The paper's Fig. 5 compares V2V's data-join queries (Q5/Q10) against
//! "equivalent Python + OpenCV" scripts. The defining property of that
//! paradigm is *frame-at-a-time processing with no container-level
//! shortcuts*:
//!
//! * every frame of the clipped range is decoded (the codec is the same
//!   — "the encoding/decoding for the OpenCV scripts also used FFmpeg,
//!   so the codec overhead should be identical");
//! * every frame is converted to the script's working colour space
//!   (OpenCV scripts operate on BGR `ndarray`s) and back;
//! * the per-frame drawing call runs on every frame — including frames
//!   with an empty detection list;
//! * every frame is re-encoded; stream copying and data-aware rewriting
//!   are unavailable to the script.
//!
//! Cost-model fidelity note: we do *not* simulate Python interpreter
//! overhead — this baseline is a compiled, honest implementation of the
//! same algorithm, so measured gaps come from the paradigm (full
//! decode/convert/draw/encode), not from language overhead.

use std::time::{Duration, Instant};
use v2v_codec::CodecParams;
use v2v_container::{ContainerError, StreamWriter, VideoStream};
use v2v_data::{DataArray, Value};
use v2v_frame::ops;
use v2v_time::Rational;

/// Errors from baseline runs.
#[derive(Debug, thiserror::Error)]
pub enum BaselineError {
    /// Underlying container/codec failure.
    #[error(transparent)]
    Container(#[from] ContainerError),
    /// The requested range is outside the stream.
    #[error("frame range [{from}, {to}) outside stream of {len} frames")]
    BadRange {
        /// Range start.
        from: u64,
        /// Range end.
        to: u64,
        /// Stream length.
        len: u64,
    },
}

/// Cost accounting for a baseline run.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselineStats {
    /// Output frames produced.
    pub frames: u64,
    /// Source packets decoded.
    pub frames_decoded: u64,
    /// Frames encoded.
    pub frames_encoded: u64,
    /// Per-frame draw calls issued (== frames; scripts do not skip).
    pub draw_calls: u64,
    /// Wall time.
    pub wall: Duration,
}

/// The per-frame operation the script applies.
pub enum ScriptOp<'a> {
    /// `cv2.rectangle` + `cv2.putText` from a detection array.
    DrawBoxes(&'a DataArray),
    /// `cv2.GaussianBlur`.
    Blur(f32),
    /// No-op (pure clip rewritten as a read/write loop).
    Copy,
}

/// Runs the frame-centric script over frames `[from, to)` of `stream`,
/// producing an output at `out_params`.
pub fn run_script(
    stream: &VideoStream,
    from: u64,
    to: u64,
    op: ScriptOp<'_>,
    out_params: CodecParams,
) -> Result<(VideoStream, BaselineStats), BaselineError> {
    let len = stream.len() as u64;
    if from >= to || to > len {
        return Err(BaselineError::BadRange { from, to, len });
    }
    let started = Instant::now();
    let mut stats = BaselineStats::default();
    let frame_dur = stream.frame_dur();
    let mut writer = StreamWriter::new(out_params, Rational::ZERO, frame_dur);

    // cv2.VideoCapture semantics: open, seek (decoder rolls from the
    // preceding keyframe), then read every frame sequentially.
    let (frames, decoded) = stream.decode_range(from as usize, to as usize)?;
    stats.frames_decoded = decoded as u64;

    for (i, frame) in frames.into_iter().enumerate() {
        // The script works on BGR arrays: convert in...
        let mut rgb = frame.to_rgb24();
        let t = stream.pts_of(from as usize + i).expect("in range");
        rgb = match &op {
            ScriptOp::DrawBoxes(array) => {
                stats.draw_calls += 1;
                // The script calls its draw function unconditionally;
                // drawing zero boxes still pays the conversion + call.
                let boxes = match array.get(t) {
                    Value::Boxes(b) => b.clone(),
                    _ => Vec::new(),
                };
                ops::draw_bounding_boxes(&rgb, &boxes)
            }
            ScriptOp::Blur(sigma) => {
                stats.draw_calls += 1;
                ops::gaussian_blur(&rgb, *sigma)
            }
            ScriptOp::Copy => rgb,
        };
        // ...and back out for the encoder.
        let out = ops::conform(&rgb, out_params.frame_ty);
        writer.push_frame(&out)?;
        stats.frames_encoded += 1;
        stats.frames += 1;
    }
    let out = writer.finish()?;
    stats.wall = started.elapsed();
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_datasets::{detections, generate, kabr_sim, DetectionProfile, Scale};
    use v2v_frame::marker;

    #[test]
    fn baseline_decodes_and_encodes_everything() {
        let spec = kabr_sim(Scale::Test, 2);
        let stream = generate(&spec);
        let d = detections(&spec, DetectionProfile::kabr(), "zebra");
        let (out, stats) =
            run_script(&stream, 0, 60, ScriptOp::DrawBoxes(&d), spec.codec_params()).unwrap();
        assert_eq!(out.len(), 60);
        assert_eq!(stats.frames_encoded, 60);
        assert_eq!(stats.draw_calls, 60, "scripts draw on every frame");
        assert!(stats.frames_decoded >= 60);
    }

    #[test]
    fn baseline_is_frame_exact_modulo_color_round_trip() {
        // With q=0 sources the baseline's frames show the right content
        // (markers survive the RGB round trip).
        let mut spec = kabr_sim(Scale::Test, 1);
        spec.quantizer = 0;
        let stream = generate(&spec);
        let (out, _) = run_script(&stream, 10, 20, ScriptOp::Copy, spec.codec_params()).unwrap();
        let (frames, _) = out.decode_range(0, out.len()).unwrap();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(marker::read(f), Some(10 + i as u32), "frame {i}");
        }
    }

    #[test]
    fn bad_range_rejected() {
        let spec = kabr_sim(Scale::Test, 1);
        let stream = generate(&spec);
        assert!(matches!(
            run_script(&stream, 0, 99999, ScriptOp::Copy, spec.codec_params()),
            Err(BaselineError::BadRange { .. })
        ));
        assert!(matches!(
            run_script(&stream, 5, 5, ScriptOp::Copy, spec.codec_params()),
            Err(BaselineError::BadRange { .. })
        ));
    }
}
