//! Property-based tests for frame kernels: type preservation, bounds,
//! and idempotence/identity laws over random frame content.

use proptest::prelude::*;
use v2v_frame::ops::{
    box_blur, brightness_contrast, crop, crossfade, draw_bounding_boxes, edge_detect,
    fade_to_black, gaussian_blur, grayscale, grid, invert, median_denoise, resize_bilinear,
    sharpen, zoom, GridLayout,
};
use v2v_frame::{BoxCoord, Frame, FrameType, PixelFormat};

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        8u32..48,
        8u32..48,
        0usize..3,
        prop::collection::vec(any::<u8>(), 32..128),
    )
        .prop_map(|(w, h, fmt, noise)| {
            let (w, h) = ((w & !1).max(8), (h & !1).max(8));
            let ty = match fmt {
                0 => FrameType::yuv420p(w, h),
                1 => FrameType::rgb24(w, h),
                _ => FrameType::gray8(w, h),
            };
            let mut f = Frame::black(ty);
            for pi in 0..ty.format.plane_count() {
                let p = f.plane_mut(pi);
                let width = p.width();
                for y in 0..p.height() {
                    for x in 0..width {
                        let v = noise[(x * 7 + y * 13 + pi * 31) % noise.len()];
                        p.put(x, y, v);
                    }
                }
            }
            f
        })
}

fn boxes_strategy() -> impl Strategy<Value = Vec<BoxCoord>> {
    prop::collection::vec(
        (0.0f32..0.8, 0.0f32..0.8, 0.01f32..0.2, 0.01f32..0.2)
            .prop_map(|(x, y, w, h)| BoxCoord::new(x, y, w, h, "obj")),
        0..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kernels_preserve_frame_type(f in frame_strategy()) {
        let ty = f.ty();
        prop_assert_eq!(gaussian_blur(&f, 1.0).ty(), ty);
        prop_assert_eq!(box_blur(&f, 1).ty(), ty);
        prop_assert_eq!(sharpen(&f, 0.5).ty(), ty);
        prop_assert_eq!(median_denoise(&f).ty(), ty);
        prop_assert_eq!(edge_detect(&f).ty(), ty);
        prop_assert_eq!(grayscale(&f).ty(), ty);
        prop_assert_eq!(invert(&f).ty(), ty);
        prop_assert_eq!(brightness_contrast(&f, 10.0, 1.1).ty(), ty);
        prop_assert_eq!(zoom(&f, 1.7).ty(), ty);
        prop_assert_eq!(fade_to_black(&f, 0.3).ty(), ty);
    }

    #[test]
    fn invert_is_involutive_on_luma(f in frame_strategy()) {
        let twice = invert(&invert(&f));
        prop_assert_eq!(twice.plane(0), f.plane(0));
    }

    #[test]
    fn identity_parameters_are_identities(f in frame_strategy()) {
        prop_assert_eq!(gaussian_blur(&f, 0.0), f.clone());
        prop_assert_eq!(zoom(&f, 1.0), f.clone());
        prop_assert_eq!(fade_to_black(&f, 0.0), f.clone());
        prop_assert_eq!(draw_bounding_boxes(&f, &[]), f.clone());
        prop_assert_eq!(brightness_contrast(&f, 0.0, 1.0), f.clone());
        prop_assert_eq!(crossfade(&f, &f, 0.5), f.clone());
    }

    #[test]
    fn crossfade_stays_within_input_bounds(
        f in frame_strategy(),
        alpha in 0.0f32..1.0,
        delta in 1u8..80,
    ) {
        let mut g = f.clone();
        for v in g.plane_mut(0).data_mut() {
            *v = v.saturating_add(delta);
        }
        let mix = crossfade(&f, &g, alpha);
        for ((a, b), m) in f
            .plane(0)
            .data()
            .iter()
            .zip(g.plane(0).data())
            .zip(mix.plane(0).data())
        {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(m >= lo && m <= hi, "blend {m} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn resize_round_trip_dims(f in frame_strategy(), w2 in 8u32..40, h2 in 8u32..40) {
        let (w2, h2) = ((w2 & !1).max(8), (h2 & !1).max(8));
        let r = resize_bilinear(&f, w2, h2);
        prop_assert_eq!((r.width(), r.height()), (w2 as usize, h2 as usize));
        prop_assert_eq!(r.ty().format, f.ty().format);
        let back = resize_bilinear(&r, f.width() as u32, f.height() as u32);
        prop_assert_eq!(back.ty(), f.ty());
    }

    #[test]
    fn crop_within_bounds(f in frame_strategy(), x in 0u32..16, y in 0u32..16, w in 2u32..32, h in 2u32..32) {
        let c = crop(&f, x, y, w, h);
        prop_assert!(c.width() <= f.width());
        prop_assert!(c.height() <= f.height());
        prop_assert!(c.width() >= 1 && c.height() >= 1);
    }

    #[test]
    fn bounding_boxes_touch_only_annulus(f in frame_strategy(), boxes in boxes_strategy()) {
        // Drawing never panics and keeps the type; with boxes it differs
        // from the input iff boxes is non-empty (almost surely).
        let out = draw_bounding_boxes(&f, &boxes);
        prop_assert_eq!(out.ty(), f.ty());
        if boxes.is_empty() {
            prop_assert_eq!(out, f);
        }
    }

    #[test]
    fn grid_type_follows_output(f in frame_strategy()) {
        let out_ty = FrameType::yuv420p(64, 64);
        let g = grid(
            &[f.clone(), f.clone(), f.clone(), f],
            GridLayout::QUAD,
            out_ty,
        );
        prop_assert_eq!(g.ty(), out_ty);
    }

    #[test]
    fn conversions_round_trip_types(f in frame_strategy()) {
        let yuv = f.to_yuv420p();
        prop_assert_eq!(yuv.ty().format, PixelFormat::Yuv420p);
        prop_assert_eq!((yuv.width(), yuv.height()), (f.width(), f.height()));
        let rgb = f.to_rgb24();
        prop_assert_eq!(rgb.ty().format, PixelFormat::Rgb24);
        // Convergence: repeated yuv↔rgb round trips settle. One trip may
        // clamp out-of-gamut noise and average chroma across luma edges
        // (inherent 4:2:0 loss); the second trip must change far less.
        let r1 = f.to_rgb24();
        let r2 = r1.to_yuv420p().to_rgb24();
        let r3 = r2.to_yuv420p().to_rgb24();
        let psnr = r2.psnr(&r3).unwrap();
        prop_assert!(psnr > 28.0 || psnr.is_infinite(), "not converging: {psnr}");
    }

    #[test]
    fn marker_survives_bounded_noise(value in any::<u32>(), noise in 0u8..9) {
        let mut f = Frame::black(FrameType::gray8(64, 32));
        v2v_frame::marker::embed(&mut f, value);
        for (i, v) in f.plane_mut(0).data_mut().iter_mut().enumerate() {
            let d = (i % (2 * noise as usize + 1)) as i16 - i16::from(noise);
            *v = (i16::from(*v) + d).clamp(0, 255) as u8;
        }
        prop_assert_eq!(v2v_frame::marker::read(&f), Some(value));
    }
}
