//! PPM (P6) image export/import for frames.
//!
//! The lowest-common-denominator raster format: viewable everywhere,
//! dependency-free, and exact for 8-bit RGB. Used by the CLI's `frame`
//! subcommand to pull inspectable stills out of `.svc` streams, and by
//! tests as a golden-image escape hatch.

use crate::format::FrameType;
use crate::frame::{Frame, FrameError, Plane};
use std::io::{BufRead, Write};
use std::path::Path;

/// Writes a frame as binary PPM (P6), converting to RGB as needed.
pub fn write_ppm(frame: &Frame, path: impl AsRef<Path>) -> std::io::Result<()> {
    let rgb = frame.to_rgb24();
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    write!(out, "P6\n{} {}\n255\n", rgb.width(), rgb.height())?;
    for y in 0..rgb.height() {
        out.write_all(rgb.plane(0).row(y))?;
    }
    out.flush()
}

/// Reads a binary PPM (P6) into an RGB frame.
pub fn read_ppm(path: impl AsRef<Path>) -> Result<Frame, FrameError> {
    let file = std::fs::File::open(path).map_err(|_| FrameError::BufferSize { got: 0, want: 0 })?;
    let mut reader = std::io::BufReader::new(file);
    // Read three whitespace-separated tokens after the magic, skipping
    // comment lines.
    let mut tokens: Vec<String> = Vec::new();
    let mut line = String::new();
    while tokens.len() < 4 {
        line.clear();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return Err(FrameError::BufferSize { got: 0, want: 4 });
        }
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            continue;
        }
        tokens.extend(trimmed.split_whitespace().map(str::to_string));
    }
    if tokens[0] != "P6" {
        return Err(FrameError::BufferSize { got: 0, want: 0 });
    }
    let w: usize = tokens[1]
        .parse()
        .map_err(|_| FrameError::BufferSize { got: 0, want: 0 })?;
    let h: usize = tokens[2]
        .parse()
        .map_err(|_| FrameError::BufferSize { got: 0, want: 0 })?;
    let mut data = vec![0u8; w * h * 3];
    std::io::Read::read_exact(&mut reader, &mut data).map_err(|_| FrameError::BufferSize {
        got: 0,
        want: w * h * 3,
    })?;
    Frame::from_planes(
        FrameType::rgb24(w as u32, h as u32),
        vec![Plane::from_vec(w * 3, h, data)?],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("v2v_ppm_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn rgb_round_trip_is_exact() {
        let ty = FrameType::rgb24(16, 9);
        let mut f = Frame::black(ty);
        for y in 0..9 {
            let row = f.plane_mut(0).row_mut(y);
            for x in 0..16 {
                row[x * 3] = (x * 16) as u8;
                row[x * 3 + 1] = (y * 28) as u8;
                row[x * 3 + 2] = ((x + y) * 9) as u8;
            }
        }
        let path = tmp("round.ppm");
        write_ppm(&f, &path).unwrap();
        let back = read_ppm(&path).unwrap();
        assert_eq!(back, f);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn yuv_frames_convert_on_write() {
        let f = Frame::black(FrameType::yuv420p(8, 8));
        let path = tmp("yuv.ppm");
        write_ppm(&f, &path).unwrap();
        let back = read_ppm(&path).unwrap();
        assert_eq!((back.width(), back.height()), (8, 8));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn garbage_rejected() {
        let path = tmp("garbage.ppm");
        std::fs::write(&path, b"P3\n2 2\n255\nnot binary").unwrap();
        assert!(read_ppm(&path).is_err());
        std::fs::remove_file(path).unwrap();
    }
}
