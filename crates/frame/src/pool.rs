//! Frame-buffer pooling: a thread-safe freelist of plane buffers.
//!
//! Decoding and encoding allocate one full set of plane buffers per
//! frame; in a steady-state render segment those buffers all have the
//! same [`FrameType`], so a freelist turns the per-frame allocation into
//! a pop/push pair. The pool is keyed by frame type and shared by
//! cloning (all clones drain and refill the same freelist).

use crate::format::FrameType;
use crate::frame::Frame;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Per-type cap on retained frames: enough for a decode/encode pipeline
/// plus a few in flight, without letting a burst pin memory forever.
const MAX_PER_TYPE: usize = 32;

/// A thread-safe freelist of [`Frame`] buffers keyed by [`FrameType`].
///
/// [`FramePool::acquire`] returns a frame with the right plane layout
/// but *unspecified contents* — callers must overwrite every sample
/// (codec kernels do). [`FramePool::release`] returns a frame's buffers
/// to the freelist for reuse.
#[derive(Clone, Debug, Default)]
pub struct FramePool {
    inner: Arc<Mutex<HashMap<FrameType, Vec<Frame>>>>,
}

impl FramePool {
    /// An empty pool.
    pub fn new() -> FramePool {
        FramePool::default()
    }

    /// A frame of type `ty` with unspecified contents: recycled from the
    /// freelist when possible, freshly allocated otherwise.
    pub fn acquire(&self, ty: FrameType) -> Frame {
        let recycled = self
            .inner
            .lock()
            .expect("frame pool lock")
            .get_mut(&ty)
            .and_then(Vec::pop);
        recycled.unwrap_or_else(|| Frame::black(ty))
    }

    /// Returns `frame`'s buffers to the freelist.
    pub fn release(&self, frame: Frame) {
        let mut pools = self.inner.lock().expect("frame pool lock");
        let list = pools.entry(frame.ty()).or_default();
        if list.len() < MAX_PER_TYPE {
            list.push(frame);
        }
    }

    /// Returns a shared frame's buffers to the freelist if this is the
    /// last reference; does nothing when the frame is still shared.
    pub fn release_shared(&self, frame: Arc<Frame>) {
        if let Some(f) = Arc::into_inner(frame) {
            self.release(f);
        }
    }

    /// Frames currently held in the freelist (all types).
    pub fn pooled(&self) -> usize {
        self.inner
            .lock()
            .expect("frame pool lock")
            .values()
            .map(Vec::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_recycles_released_buffers() {
        let pool = FramePool::new();
        let ty = FrameType::yuv420p(32, 16);
        let f = pool.acquire(ty);
        assert_eq!(f.ty(), ty);
        pool.release(f);
        assert_eq!(pool.pooled(), 1);
        let g = pool.acquire(ty);
        assert_eq!(g.ty(), ty);
        assert_eq!(pool.pooled(), 0);
    }

    #[test]
    fn types_do_not_mix() {
        let pool = FramePool::new();
        pool.release(Frame::black(FrameType::gray8(8, 8)));
        let f = pool.acquire(FrameType::gray8(16, 16));
        assert_eq!(f.ty(), FrameType::gray8(16, 16));
        assert_eq!(pool.pooled(), 1, "the 8x8 frame stays pooled");
    }

    #[test]
    fn shared_release_requires_last_reference() {
        let pool = FramePool::new();
        let f = Arc::new(Frame::black(FrameType::gray8(8, 8)));
        let extra = f.clone();
        pool.release_shared(f);
        assert_eq!(pool.pooled(), 0, "still shared: not pooled");
        pool.release_shared(extra);
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn clones_share_the_freelist() {
        let pool = FramePool::new();
        let clone = pool.clone();
        clone.release(Frame::black(FrameType::gray8(4, 4)));
        assert_eq!(pool.pooled(), 1);
    }

    #[test]
    fn freelist_is_bounded() {
        let pool = FramePool::new();
        let ty = FrameType::gray8(2, 2);
        for _ in 0..(MAX_PER_TYPE + 10) {
            pool.release(Frame::black(ty));
        }
        assert_eq!(pool.pooled(), MAX_PER_TYPE);
    }
}
