//! Owned frame buffers and colour conversion.

use crate::format::{ColorSpace, FrameType, PixelFormat};
use std::fmt;

/// Errors raised by frame construction and conversion.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum FrameError {
    /// Buffer size does not match the frame type.
    #[error("buffer of {got} bytes does not match frame type needing {want}")]
    BufferSize {
        /// Bytes supplied.
        got: usize,
        /// Bytes required by the type.
        want: usize,
    },
    /// An operation received a frame of an unsupported format.
    #[error("unsupported pixel format {0} for this operation")]
    UnsupportedFormat(PixelFormat),
    /// Two frames that must agree in type do not.
    #[error("frame type mismatch: {0} vs {1}")]
    TypeMismatch(FrameType, FrameType),
}

/// One plane of raster data; `stride == width` always.
#[derive(Clone, PartialEq, Eq)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// A zero-filled plane.
    pub fn new(width: usize, height: usize) -> Plane {
        Plane {
            width,
            height,
            data: vec![0; width * height],
        }
    }

    /// A plane filled with `value`.
    pub fn filled(width: usize, height: usize, value: u8) -> Plane {
        Plane {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Wraps an existing buffer (must be exactly `width * height` bytes).
    pub fn from_vec(width: usize, height: usize, data: Vec<u8>) -> Result<Plane, FrameError> {
        if data.len() != width * height {
            return Err(FrameError::BufferSize {
                got: data.len(),
                want: width * height,
            });
        }
        Ok(Plane {
            width,
            height,
            data,
        })
    }

    /// Plane width in samples.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The raw samples, row-major.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw samples.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Sample at `(x, y)`; clamps out-of-range coordinates to the edge.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let x = x.clamp(0, self.width as isize - 1) as usize;
        let y = y.clamp(0, self.height as isize - 1) as usize;
        self.data[y * self.width + x]
    }

    /// Sample at `(x, y)` without bounds adjustment.
    ///
    /// # Panics
    /// Panics when out of range.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.data[y * self.width + x]
    }

    /// Writes the sample at `(x, y)`; out-of-range writes are ignored.
    #[inline]
    pub fn put(&mut self, x: usize, y: usize, v: u8) {
        if x < self.width && y < self.height {
            self.data[y * self.width + x] = v;
        }
    }

    /// One row of samples.
    pub fn row(&self, y: usize) -> &[u8] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// One mutable row of samples.
    pub fn row_mut(&mut self, y: usize) -> &mut [u8] {
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// Row `y - 1` immutably together with row `y` mutably — the access
    /// pattern of closed-loop DPCM passes that predict each row from the
    /// previous reconstructed row.
    ///
    /// # Panics
    /// Panics when `y == 0` or `y >= height`.
    #[inline]
    pub fn row_pair_mut(&mut self, y: usize) -> (&[u8], &mut [u8]) {
        assert!(
            y > 0 && y < self.height,
            "row_pair_mut needs 0 < y < height"
        );
        let (above, below) = self.data.split_at_mut(y * self.width);
        (&above[(y - 1) * self.width..], &mut below[..self.width])
    }

    /// Bilinear sample at fractional coordinates (in sample units).
    pub fn sample_bilinear(&self, fx: f32, fy: f32) -> u8 {
        let x0 = fx.floor() as isize;
        let y0 = fy.floor() as isize;
        let dx = fx - x0 as f32;
        let dy = fy - y0 as f32;
        let p00 = self.get_clamped(x0, y0) as f32;
        let p10 = self.get_clamped(x0 + 1, y0) as f32;
        let p01 = self.get_clamped(x0, y0 + 1) as f32;
        let p11 = self.get_clamped(x0 + 1, y0 + 1) as f32;
        let v = p00 * (1.0 - dx) * (1.0 - dy)
            + p10 * dx * (1.0 - dy)
            + p01 * (1.0 - dx) * dy
            + p11 * dx * dy;
        v.round().clamp(0.0, 255.0) as u8
    }
}

impl fmt::Debug for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Plane({}x{})", self.width, self.height)
    }
}

/// An owned frame: a [`FrameType`] plus its planes.
#[derive(Clone, PartialEq, Eq)]
pub struct Frame {
    ty: FrameType,
    planes: Vec<Plane>,
}

impl Frame {
    /// A black frame of the given type (YUV black is `(16, 128, 128)`
    /// in video range; we use full-range `(0, 128, 128)`).
    pub fn black(ty: FrameType) -> Frame {
        let mut planes = Vec::with_capacity(ty.format.plane_count());
        for i in 0..ty.format.plane_count() {
            let (w, h) = ty
                .format
                .plane_dims(i, ty.width as usize, ty.height as usize);
            let fill = if ty.format == PixelFormat::Yuv420p && i > 0 {
                128
            } else {
                0
            };
            planes.push(Plane::filled(w, h, fill));
        }
        Frame { ty, planes }
    }

    /// Builds a frame from explicit planes.
    pub fn from_planes(ty: FrameType, planes: Vec<Plane>) -> Result<Frame, FrameError> {
        if planes.len() != ty.format.plane_count() {
            return Err(FrameError::BufferSize {
                got: planes.len(),
                want: ty.format.plane_count(),
            });
        }
        for (i, p) in planes.iter().enumerate() {
            let (w, h) = ty
                .format
                .plane_dims(i, ty.width as usize, ty.height as usize);
            if (p.width(), p.height()) != (w, h) {
                return Err(FrameError::BufferSize {
                    got: p.width() * p.height(),
                    want: w * h,
                });
            }
        }
        Ok(Frame { ty, planes })
    }

    /// The static type of this frame.
    pub fn ty(&self) -> FrameType {
        self.ty
    }

    /// Frame width in pixels.
    pub fn width(&self) -> usize {
        self.ty.width as usize
    }

    /// Frame height in pixels.
    pub fn height(&self) -> usize {
        self.ty.height as usize
    }

    /// All planes.
    pub fn planes(&self) -> &[Plane] {
        &self.planes
    }

    /// All planes, mutably.
    pub fn planes_mut(&mut self) -> &mut [Plane] {
        &mut self.planes
    }

    /// Plane `i`.
    pub fn plane(&self, i: usize) -> &Plane {
        &self.planes[i]
    }

    /// Plane `i`, mutably.
    pub fn plane_mut(&mut self, i: usize) -> &mut Plane {
        &mut self.planes[i]
    }

    /// Converts to `yuv420p` (no-op if already).
    pub fn to_yuv420p(&self) -> Frame {
        match self.ty.format {
            PixelFormat::Yuv420p => self.clone(),
            PixelFormat::Gray8 => {
                let ty = self.ty.with_format(PixelFormat::Yuv420p);
                let mut out = Frame::black(ty);
                out.planes[0] = self.planes[0].clone();
                out
            }
            PixelFormat::Rgb24 => rgb_to_yuv420p(self),
        }
    }

    /// Converts to `rgb24` (no-op if already).
    pub fn to_rgb24(&self) -> Frame {
        match self.ty.format {
            PixelFormat::Rgb24 => self.clone(),
            PixelFormat::Gray8 => {
                let w = self.width();
                let h = self.height();
                let mut data = Vec::with_capacity(w * h * 3);
                for y in 0..h {
                    for &v in self.planes[0].row(y) {
                        data.extend_from_slice(&[v, v, v]);
                    }
                }
                Frame::from_planes(
                    self.ty.with_format(PixelFormat::Rgb24),
                    vec![Plane::from_vec(w * 3, h, data).unwrap()],
                )
                .unwrap()
            }
            PixelFormat::Yuv420p => yuv420p_to_rgb(self),
        }
    }

    /// RGB triple at pixel `(x, y)` regardless of format (chroma upsampled
    /// for yuv420p). Intended for tests and markers, not hot loops.
    pub fn rgb_at(&self, x: usize, y: usize) -> (u8, u8, u8) {
        match self.ty.format {
            PixelFormat::Rgb24 => {
                let row = self.planes[0].row(y);
                (row[x * 3], row[x * 3 + 1], row[x * 3 + 2])
            }
            PixelFormat::Gray8 => {
                let v = self.planes[0].get(x, y);
                (v, v, v)
            }
            PixelFormat::Yuv420p => {
                let yv = self.planes[0].get(x, y);
                let u = self.planes[1].get(x / 2, y / 2);
                let v = self.planes[2].get(x / 2, y / 2);
                yuv_to_rgb_px(yv, u, v, self.ty.color)
            }
        }
    }

    /// Mean absolute per-sample difference across all planes; `None` when
    /// types differ. Zero means bit-identical raster data.
    pub fn mean_abs_diff(&self, other: &Frame) -> Option<f64> {
        if self.ty != other.ty {
            return None;
        }
        let mut total = 0u64;
        let mut n = 0u64;
        for (a, b) in self.planes.iter().zip(&other.planes) {
            for (x, y) in a.data().iter().zip(b.data()) {
                total += u64::from(x.abs_diff(*y));
                n += 1;
            }
        }
        Some(total as f64 / n as f64)
    }

    /// Peak signal-to-noise ratio in dB against `other`; `f64::INFINITY`
    /// for identical frames, `None` for type mismatches.
    pub fn psnr(&self, other: &Frame) -> Option<f64> {
        if self.ty != other.ty {
            return None;
        }
        let mut se = 0f64;
        let mut n = 0u64;
        for (a, b) in self.planes.iter().zip(&other.planes) {
            for (x, y) in a.data().iter().zip(b.data()) {
                let d = f64::from(*x) - f64::from(*y);
                se += d * d;
                n += 1;
            }
        }
        let mse = se / n as f64;
        Some(if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        })
    }
}

impl fmt::Debug for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Frame({})", self.ty)
    }
}

/// BT.709 / BT.601 full-range conversion coefficients (×1024 fixed point).
fn coeffs(cs: ColorSpace) -> (i32, i32, i32) {
    match cs {
        // Kr, Kg, Kb scaled by 1024.
        ColorSpace::Bt709 => (218, 732, 74),
        ColorSpace::Bt601 => (306, 601, 117),
    }
}

fn rgb_to_yuv_px(r: u8, g: u8, b: u8, cs: ColorSpace) -> (u8, u8, u8) {
    let (kr, kg, kb) = coeffs(cs);
    let r = i32::from(r);
    let g = i32::from(g);
    let b = i32::from(b);
    let y = (kr * r + kg * g + kb * b + 512) >> 10;
    // Full-range U/V scaled so that extremes map to [0,255] around 128.
    let kru = 1024 - kb; // 1 - Kb
    let krv = 1024 - kr; // 1 - Kr
    let u = ((b - y) * 512 / kru) + 128;
    let v = ((r - y) * 512 / krv) + 128;
    (
        y.clamp(0, 255) as u8,
        u.clamp(0, 255) as u8,
        v.clamp(0, 255) as u8,
    )
}

fn yuv_to_rgb_px(y: u8, u: u8, v: u8, cs: ColorSpace) -> (u8, u8, u8) {
    let (kr, kg, kb) = coeffs(cs);
    let y = i32::from(y);
    let cb = i32::from(u) - 128;
    let cr = i32::from(v) - 128;
    let kru = 1024 - kb;
    let krv = 1024 - kr;
    let r = y + (cr * krv) / 512;
    let b = y + (cb * kru) / 512;
    // G from the luma identity: Y = Kr·R + Kg·G + Kb·B.
    let g = (y * 1024 - kr * r - kb * b) / kg;
    (
        r.clamp(0, 255) as u8,
        g.clamp(0, 255) as u8,
        b.clamp(0, 255) as u8,
    )
}

fn rgb_to_yuv420p(src: &Frame) -> Frame {
    let w = src.width();
    let h = src.height();
    let ty = src.ty().with_format(PixelFormat::Yuv420p);
    let mut out = Frame::black(ty);
    let cs = src.ty().color;
    // Luma pass + accumulate chroma per 2x2 block.
    let cw = w.div_ceil(2);
    let ch = h.div_ceil(2);
    let mut us = vec![0u32; cw * ch];
    let mut vs = vec![0u32; cw * ch];
    let mut ns = vec![0u32; cw * ch];
    for y in 0..h {
        let row = src.plane(0).row(y);
        for x in 0..w {
            let (r, g, b) = (row[x * 3], row[x * 3 + 1], row[x * 3 + 2]);
            let (yy, uu, vv) = rgb_to_yuv_px(r, g, b, cs);
            out.plane_mut(0).put(x, y, yy);
            let ci = (y / 2) * cw + x / 2;
            us[ci] += u32::from(uu);
            vs[ci] += u32::from(vv);
            ns[ci] += 1;
        }
    }
    for ci in 0..cw * ch {
        let n = ns[ci].max(1);
        out.plane_mut(1).data_mut()[ci] = (us[ci] / n) as u8;
        out.plane_mut(2).data_mut()[ci] = (vs[ci] / n) as u8;
    }
    out
}

fn yuv420p_to_rgb(src: &Frame) -> Frame {
    let w = src.width();
    let h = src.height();
    let cs = src.ty().color;
    let mut data = Vec::with_capacity(w * h * 3);
    for y in 0..h {
        for x in 0..w {
            let yy = src.plane(0).get(x, y);
            let u = src.plane(1).get(x / 2, y / 2);
            let v = src.plane(2).get(x / 2, y / 2);
            let (r, g, b) = yuv_to_rgb_px(yy, u, v, cs);
            data.extend_from_slice(&[r, g, b]);
        }
    }
    Frame::from_planes(
        src.ty().with_format(PixelFormat::Rgb24),
        vec![Plane::from_vec(w * 3, h, data).unwrap()],
    )
    .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn black_frame_layout() {
        let f = Frame::black(FrameType::yuv420p(16, 10));
        assert_eq!(f.planes().len(), 3);
        assert_eq!(f.plane(0).width(), 16);
        assert_eq!(f.plane(1).width(), 8);
        assert_eq!(f.plane(1).height(), 5);
        assert!(f.plane(0).data().iter().all(|&v| v == 0));
        assert!(f.plane(1).data().iter().all(|&v| v == 128));
    }

    #[test]
    fn from_planes_validates() {
        let ty = FrameType::gray8(4, 4);
        assert!(Frame::from_planes(ty, vec![Plane::new(4, 4)]).is_ok());
        assert!(Frame::from_planes(ty, vec![Plane::new(4, 5)]).is_err());
        assert!(Frame::from_planes(ty, vec![]).is_err());
    }

    #[test]
    fn plane_access_and_clamping() {
        let mut p = Plane::new(4, 3);
        p.put(1, 1, 77);
        assert_eq!(p.get(1, 1), 77);
        assert_eq!(p.get_clamped(-5, -5), p.get(0, 0));
        assert_eq!(p.get_clamped(100, 100), p.get(3, 2));
        p.put(100, 100, 5); // ignored, no panic
    }

    #[test]
    fn bilinear_interpolates() {
        let p = Plane::from_vec(2, 1, vec![0, 100]).unwrap();
        assert_eq!(p.sample_bilinear(0.0, 0.0), 0);
        assert_eq!(p.sample_bilinear(1.0, 0.0), 100);
        assert_eq!(p.sample_bilinear(0.5, 0.0), 50);
    }

    #[test]
    fn rgb_yuv_round_trip_is_close() {
        // Build a colourful RGB frame, convert to yuv420p and back; the
        // round trip must stay close in PSNR terms (chroma subsampling is
        // lossy but bounded).
        let ty = FrameType::rgb24(32, 32);
        let mut f = Frame::black(ty);
        for y in 0..32 {
            for x in 0..32usize {
                let row = f.plane_mut(0).row_mut(y);
                row[x * 3] = (x * 8) as u8;
                row[x * 3 + 1] = (y * 8) as u8;
                row[x * 3 + 2] = ((x + y) * 4) as u8;
            }
        }
        let back = f.to_yuv420p().to_rgb24();
        let psnr = f.psnr(&back).unwrap();
        assert!(psnr > 25.0, "round trip PSNR too low: {psnr}");
    }

    #[test]
    fn gray_conversions() {
        let mut f = Frame::black(FrameType::gray8(4, 2));
        f.plane_mut(0).put(1, 0, 200);
        let rgb = f.to_rgb24();
        assert_eq!(rgb.rgb_at(1, 0), (200, 200, 200));
        let yuv = f.to_yuv420p();
        assert_eq!(yuv.plane(0).get(1, 0), 200);
        assert_eq!(yuv.plane(1).get(0, 0), 128);
    }

    #[test]
    fn identical_frames_have_infinite_psnr() {
        let f = Frame::black(FrameType::yuv420p(8, 8));
        assert_eq!(f.psnr(&f.clone()), Some(f64::INFINITY));
        assert_eq!(f.mean_abs_diff(&f.clone()), Some(0.0));
    }

    #[test]
    fn psnr_none_on_type_mismatch() {
        let a = Frame::black(FrameType::yuv420p(8, 8));
        let b = Frame::black(FrameType::yuv420p(8, 16));
        assert_eq!(a.psnr(&b), None);
    }

    #[test]
    fn neutral_gray_survives_round_trip_exactly() {
        let ty = FrameType::rgb24(8, 8);
        let mut f = Frame::black(ty);
        for b in f.plane_mut(0).data_mut() {
            *b = 128;
        }
        let back = f.to_yuv420p().to_rgb24();
        for y in 0..8 {
            for x in 0..8 {
                let (r, g, b) = back.rgb_at(x, y);
                assert!(r.abs_diff(128) <= 2 && g.abs_diff(128) <= 2 && b.abs_diff(128) <= 2);
            }
        }
    }
}
