#![warn(missing_docs)]

//! Frame data model and raster filter kernels for V2V.
//!
//! In the V2V data model (paper §III-A) a *frame* is the smallest unit of
//! information: typed raster data at a rational timestamp. This crate
//! provides:
//!
//! * [`FrameType`] / [`PixelFormat`] — the static type of a frame
//!   (dimensions, pixel layout, colour space), used by the spec checker;
//! * [`Frame`] / [`Plane`] — owned raster buffers (planar, 8-bit);
//! * colour conversion between `yuv420p` (the codec-native format) and
//!   `rgb24`;
//! * the filter kernel library behind the paper's `Filter` operator
//!   (§III-C): zoom, crop, grid composition, overlays, bounding boxes,
//!   text annotation, Gaussian blur, sharpen, denoise, edge detection,
//!   colour grading, transitions, stabilization, background replacement;
//! * [`ppm`] — dependency-free still export (view any output frame);
//! * [`marker`] — frame-index markers embedded in pixels, the mechanism
//!   the paper used ("we preprocessed the film to overlay frame
//!   information") to verify every operation is frame-exact.

pub mod draw;
pub mod font;
pub mod format;
pub mod frame;
pub mod marker;
pub mod ops;
pub mod pool;
pub mod ppm;

pub use format::{ColorSpace, FrameType, PixelFormat};
pub use frame::{Frame, FrameError, Plane};
pub use ops::{BoxCoord, GridLayout, Rgb};
pub use pool::FramePool;
