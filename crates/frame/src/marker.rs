//! Frame-index markers embedded in pixels.
//!
//! The paper preprocessed its evaluation video "to overlay frame
//! information to verify each operation was frame-exact". This module is
//! that mechanism: [`embed`] stamps a 32-bit value into the top-left
//! corner as a grid of black/white blocks sturdy enough to survive lossy
//! encoding; [`read`] recovers it by block-averaging. Integration tests
//! use it to prove clips, splices, and smart cuts are frame-exact.

use crate::format::PixelFormat;
use crate::frame::Frame;

/// Side of one bit block, in pixels.
const BLOCK: usize = 4;
/// Bits per marker row.
const BITS_PER_ROW: usize = 16;
/// Marker rows (2 × 16 = 32 bits).
const ROWS: usize = 2;

/// Minimum frame width for a marker to fit.
pub const MIN_WIDTH: usize = BLOCK * BITS_PER_ROW;
/// Minimum frame height for a marker to fit.
pub const MIN_HEIGHT: usize = BLOCK * ROWS;

/// Luma for a 1 bit (kept inside video range for codec friendliness).
const HI: u8 = 235;
/// Luma for a 0 bit.
const LO: u8 = 16;

/// Stamps `value` into the top-left corner of `frame`.
///
/// # Panics
/// Panics if the frame is smaller than [`MIN_WIDTH`] × [`MIN_HEIGHT`].
pub fn embed(frame: &mut Frame, value: u32) {
    assert!(
        frame.width() >= MIN_WIDTH && frame.height() >= MIN_HEIGHT,
        "frame too small for a marker: need {MIN_WIDTH}x{MIN_HEIGHT}"
    );
    let rgb_unit = if frame.ty().format == PixelFormat::Rgb24 {
        3
    } else {
        1
    };
    let is_yuv = frame.ty().format == PixelFormat::Yuv420p;
    for bit in 0..32 {
        let set = value & (1 << (31 - bit)) != 0;
        let luma = if set { HI } else { LO };
        let bx = (bit % BITS_PER_ROW) * BLOCK;
        let by = (bit / BITS_PER_ROW) * BLOCK;
        for y in by..by + BLOCK {
            for x in bx..bx + BLOCK {
                if rgb_unit == 3 {
                    let row = frame.plane_mut(0).row_mut(y);
                    row[x * 3] = luma;
                    row[x * 3 + 1] = luma;
                    row[x * 3 + 2] = luma;
                } else {
                    frame.plane_mut(0).put(x, y, luma);
                }
            }
        }
        if is_yuv {
            // Neutralize chroma under the marker for clean decode.
            for y in by / 2..(by + BLOCK) / 2 {
                for x in bx / 2..(bx + BLOCK) / 2 {
                    frame.plane_mut(1).put(x, y, 128);
                    frame.plane_mut(2).put(x, y, 128);
                }
            }
        }
    }
}

/// Recovers a marker stamped by [`embed`], tolerating codec noise by
/// averaging each block. Returns `None` if the frame is too small or a
/// block average is too ambiguous to be a marker (within ±16 of the
/// threshold on more than 4 blocks).
pub fn read(frame: &Frame) -> Option<u32> {
    if frame.width() < MIN_WIDTH || frame.height() < MIN_HEIGHT {
        return None;
    }
    let rgb_unit = if frame.ty().format == PixelFormat::Rgb24 {
        3
    } else {
        1
    };
    let mut value = 0u32;
    let mut ambiguous = 0;
    for bit in 0..32 {
        let bx = (bit % BITS_PER_ROW) * BLOCK;
        let by = (bit / BITS_PER_ROW) * BLOCK;
        let mut sum = 0u32;
        for y in by..by + BLOCK {
            for x in bx..bx + BLOCK {
                let v = if rgb_unit == 3 {
                    frame.plane(0).row(y)[x * 3]
                } else {
                    frame.plane(0).get(x, y)
                };
                sum += u32::from(v);
            }
        }
        let avg = sum / (BLOCK * BLOCK) as u32;
        let mid = u32::from(HI / 2 + LO / 2);
        if avg.abs_diff(mid) < 16 {
            ambiguous += 1;
        }
        if avg > mid {
            value |= 1 << (31 - bit);
        }
    }
    (ambiguous <= 4).then_some(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FrameType;

    #[test]
    fn round_trip_all_formats() {
        for ty in [
            FrameType::yuv420p(64, 32),
            FrameType::rgb24(64, 32),
            FrameType::gray8(64, 32),
        ] {
            for v in [0u32, 1, 0xDEADBEEF, u32::MAX, 12345] {
                let mut f = Frame::black(ty);
                embed(&mut f, v);
                assert_eq!(read(&f), Some(v), "format {ty}");
            }
        }
    }

    #[test]
    fn survives_mild_noise() {
        let mut f = Frame::black(FrameType::gray8(64, 32));
        embed(&mut f, 0xCAFE0042);
        // Perturb every sample by ±8.
        for (i, v) in f.plane_mut(0).data_mut().iter_mut().enumerate() {
            let d = (i % 17) as i16 - 8;
            *v = (i16::from(*v) + d).clamp(0, 255) as u8;
        }
        assert_eq!(read(&f), Some(0xCAFE0042));
    }

    #[test]
    fn too_small_frame_returns_none() {
        let f = Frame::black(FrameType::gray8(32, 4));
        assert_eq!(read(&f), None);
    }

    #[test]
    fn uniform_midgray_is_rejected() {
        let mut f = Frame::black(FrameType::gray8(64, 32));
        for v in f.plane_mut(0).data_mut() {
            *v = 125; // close to the threshold on every block
        }
        assert_eq!(read(&f), None);
    }

    #[test]
    #[should_panic]
    fn embed_panics_on_small_frame() {
        let mut f = Frame::black(FrameType::gray8(16, 16));
        embed(&mut f, 7);
    }
}
