//! Drawing primitives over frames: rectangles, lines, and bitmap text.
//!
//! All primitives operate natively on each supported pixel format. For
//! `yuv420p` the colour is converted once and chroma writes are applied at
//! half resolution; clipping is implicit (out-of-frame pixels are ignored).

use crate::font;
use crate::format::PixelFormat;
use crate::frame::Frame;
use crate::ops::Rgb;

/// Per-format pixel write of an RGB colour.
#[inline]
fn put_rgb(frame: &mut Frame, x: usize, y: usize, color: Rgb) {
    if x >= frame.width() || y >= frame.height() {
        return;
    }
    match frame.ty().format {
        PixelFormat::Rgb24 => {
            let row = frame.plane_mut(0).row_mut(y);
            row[x * 3] = color.r;
            row[x * 3 + 1] = color.g;
            row[x * 3 + 2] = color.b;
        }
        PixelFormat::Gray8 => {
            frame.plane_mut(0).put(x, y, color.luma());
        }
        PixelFormat::Yuv420p => {
            let (yy, u, v) = color.to_yuv(frame.ty().color);
            frame.plane_mut(0).put(x, y, yy);
            frame.plane_mut(1).put(x / 2, y / 2, u);
            frame.plane_mut(2).put(x / 2, y / 2, v);
        }
    }
}

/// Fills the axis-aligned rectangle `[x, x+w) × [y, y+h)` (clipped).
pub fn fill_rect(frame: &mut Frame, x: i64, y: i64, w: u32, h: u32, color: Rgb) {
    let x0 = x.max(0) as usize;
    let y0 = y.max(0) as usize;
    let x1 = ((x + i64::from(w)).max(0) as usize).min(frame.width());
    let y1 = ((y + i64::from(h)).max(0) as usize).min(frame.height());
    for py in y0..y1 {
        for px in x0..x1 {
            put_rgb(frame, px, py, color);
        }
    }
}

/// Draws a rectangle outline of the given stroke thickness (clipped).
pub fn rect_outline(frame: &mut Frame, x: i64, y: i64, w: u32, h: u32, stroke: u32, color: Rgb) {
    let s = stroke.max(1);
    // Top and bottom bars.
    fill_rect(frame, x, y, w, s, color);
    fill_rect(frame, x, y + i64::from(h) - i64::from(s), w, s, color);
    // Left and right bars.
    fill_rect(frame, x, y, s, h, color);
    fill_rect(frame, x + i64::from(w) - i64::from(s), y, s, h, color);
}

/// Draws a line with Bresenham's algorithm (clipped).
pub fn line(frame: &mut Frame, x0: i64, y0: i64, x1: i64, y1: i64, color: Rgb) {
    let dx = (x1 - x0).abs();
    let dy = -(y1 - y0).abs();
    let sx = if x0 < x1 { 1 } else { -1 };
    let sy = if y0 < y1 { 1 } else { -1 };
    let mut err = dx + dy;
    let (mut x, mut y) = (x0, y0);
    loop {
        if x >= 0 && y >= 0 {
            put_rgb(frame, x as usize, y as usize, color);
        }
        if x == x1 && y == y1 {
            break;
        }
        let e2 = 2 * err;
        if e2 >= dy {
            err += dy;
            x += sx;
        }
        if e2 <= dx {
            err += dx;
            y += sy;
        }
    }
}

/// Renders `text` with the built-in 5×7 font at integer `scale`.
pub fn text(frame: &mut Frame, x: i64, y: i64, s: &str, scale: u32, color: Rgb) {
    let scale = scale.max(1) as i64;
    let mut cx = x;
    for c in s.chars() {
        let g = font::glyph(c);
        for (gy, row) in g.iter().enumerate() {
            for gx in 0..font::GLYPH_W {
                if row & (1 << (font::GLYPH_W - 1 - gx)) != 0 {
                    let px = cx + (gx as i64) * scale;
                    let py = y + (gy as i64) * scale;
                    for oy in 0..scale {
                        for ox in 0..scale {
                            let fx = px + ox;
                            let fy = py + oy;
                            if fx >= 0 && fy >= 0 {
                                put_rgb(frame, fx as usize, fy as usize, color);
                            }
                        }
                    }
                }
            }
        }
        cx += (font::ADVANCE as i64) * scale;
    }
}

/// Renders `text` over a filled background pad for legibility.
pub fn label(frame: &mut Frame, x: i64, y: i64, s: &str, scale: u32, fg: Rgb, bg: Rgb) {
    let scale_u = scale.max(1) as usize;
    let w = font::text_width(s, scale_u) as u32 + 4;
    let h = font::text_height(scale_u) as u32 + 4;
    fill_rect(frame, x - 2, y - 2, w, h, bg);
    text(frame, x, y, s, scale, fg);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FrameType;

    #[test]
    fn fill_rect_clips() {
        let mut f = Frame::black(FrameType::gray8(8, 8));
        fill_rect(&mut f, -2, -2, 4, 4, Rgb::WHITE);
        assert_eq!(f.plane(0).get(0, 0), 255);
        assert_eq!(f.plane(0).get(1, 1), 255);
        assert_eq!(f.plane(0).get(2, 2), 0);
        fill_rect(&mut f, 7, 7, 10, 10, Rgb::WHITE);
        assert_eq!(f.plane(0).get(7, 7), 255);
    }

    #[test]
    fn outline_leaves_interior() {
        let mut f = Frame::black(FrameType::gray8(16, 16));
        rect_outline(&mut f, 2, 2, 10, 10, 1, Rgb::WHITE);
        assert_eq!(f.plane(0).get(2, 2), 255);
        assert_eq!(f.plane(0).get(11, 11), 255);
        assert_eq!(f.plane(0).get(6, 6), 0);
    }

    #[test]
    fn line_endpoints() {
        let mut f = Frame::black(FrameType::gray8(8, 8));
        line(&mut f, 0, 0, 7, 7, Rgb::WHITE);
        assert_eq!(f.plane(0).get(0, 0), 255);
        assert_eq!(f.plane(0).get(7, 7), 255);
        assert_eq!(f.plane(0).get(3, 3), 255);
    }

    #[test]
    fn text_renders_pixels() {
        let mut f = Frame::black(FrameType::gray8(32, 10));
        text(&mut f, 0, 0, "V2", 1, Rgb::WHITE);
        let lit: usize = f.plane(0).data().iter().filter(|&&v| v == 255).count();
        assert!(lit > 10, "text should light pixels, got {lit}");
    }

    #[test]
    fn yuv_draw_writes_chroma() {
        let mut f = Frame::black(FrameType::yuv420p(8, 8));
        fill_rect(&mut f, 0, 0, 4, 4, Rgb::new(255, 0, 0));
        // Red has strong V chroma.
        assert!(f.plane(2).get(0, 0) > 180);
        assert_eq!(f.plane(2).get(3, 3), 128); // untouched area stays neutral
    }

    #[test]
    fn label_draws_background() {
        let mut f = Frame::black(FrameType::gray8(64, 16));
        label(&mut f, 4, 4, "A", 1, Rgb::BLACK, Rgb::WHITE);
        // Background pad reaches beyond the glyph box.
        assert_eq!(f.plane(0).get(2, 2), 255);
    }
}
