//! Convolution kernels: Gaussian blur, box blur, sharpen, denoise, edges.
//!
//! Gaussian blur is the paper's benchmark "pixel-wise filter operation"
//! (queries Q4/Q9). All kernels run per plane, so they apply uniformly to
//! gray, RGB (treating the interleaved row as samples is wrong for
//! horizontal passes, so RGB is handled channel-aware), and YUV frames.

use crate::format::PixelFormat;
use crate::frame::{Frame, Plane};

/// Builds a normalized 1-D Gaussian kernel for `sigma` (radius ≈ 3σ).
fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    let radius = (sigma * 3.0).ceil().max(1.0) as usize;
    let mut k = Vec::with_capacity(2 * radius + 1);
    let denom = 2.0 * sigma * sigma;
    for i in 0..=2 * radius {
        let d = i as f32 - radius as f32;
        k.push((-d * d / denom).exp());
    }
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Channel-aware plane geometry: `(pixel_width, channels)`.
fn plane_channels(format: PixelFormat, plane_idx: usize, plane: &Plane) -> (usize, usize) {
    if format == PixelFormat::Rgb24 && plane_idx == 0 {
        (plane.width() / 3, 3)
    } else {
        (plane.width(), 1)
    }
}

/// Separable convolution of one plane with a 1-D kernel (applied on both
/// axes), channel-aware.
fn convolve_separable(plane: &Plane, format: PixelFormat, idx: usize, kernel: &[f32]) -> Plane {
    let (pw, ch) = plane_channels(format, idx, plane);
    let h = plane.height();
    let radius = kernel.len() / 2;
    let mut tmp = vec![0f32; plane.width() * h];
    // Horizontal pass.
    for y in 0..h {
        let row = plane.row(y);
        for x in 0..pw {
            for c in 0..ch {
                let mut acc = 0f32;
                for (ki, kv) in kernel.iter().enumerate() {
                    let sx = (x as isize + ki as isize - radius as isize).clamp(0, pw as isize - 1)
                        as usize;
                    acc += f32::from(row[sx * ch + c]) * kv;
                }
                tmp[y * plane.width() + x * ch + c] = acc;
            }
        }
    }
    // Vertical pass.
    let mut out = Plane::new(plane.width(), h);
    for y in 0..h {
        for x in 0..pw {
            for c in 0..ch {
                let mut acc = 0f32;
                for (ki, kv) in kernel.iter().enumerate() {
                    let sy = (y as isize + ki as isize - radius as isize).clamp(0, h as isize - 1)
                        as usize;
                    acc += tmp[sy * plane.width() + x * ch + c] * kv;
                }
                out.row_mut(y)[x * ch + c] = acc.round().clamp(0.0, 255.0) as u8;
            }
        }
    }
    out
}

/// Gaussian blur with standard deviation `sigma` (the Q4/Q9 filter).
pub fn gaussian_blur(src: &Frame, sigma: f32) -> Frame {
    if sigma <= 0.0 {
        return src.clone();
    }
    let kernel = gaussian_kernel(sigma);
    apply_per_plane(src, |p, idx| {
        convolve_separable(p, src.ty().format, idx, &kernel)
    })
}

/// Box blur with the given radius.
pub fn box_blur(src: &Frame, radius: usize) -> Frame {
    if radius == 0 {
        return src.clone();
    }
    let n = 2 * radius + 1;
    let kernel = vec![1.0 / n as f32; n];
    apply_per_plane(src, |p, idx| {
        convolve_separable(p, src.ty().format, idx, &kernel)
    })
}

/// Unsharp-mask sharpening: `out = src + amount · (src - blur(src))`.
pub fn sharpen(src: &Frame, amount: f32) -> Frame {
    if amount <= 0.0 {
        return src.clone();
    }
    let blurred = gaussian_blur(src, 1.0);
    let mut out = src.clone();
    for (pi, plane) in out.planes_mut().iter_mut().enumerate() {
        let b = blurred.plane(pi);
        for (i, v) in plane.data_mut().iter_mut().enumerate() {
            let orig = f32::from(*v);
            let detail = orig - f32::from(b.data()[i]);
            *v = (orig + amount * detail).round().clamp(0.0, 255.0) as u8;
        }
    }
    out
}

/// 3×3 median denoise on the luma/first plane (chroma left untouched:
/// sensor noise is predominantly luma and the median is expensive).
pub fn median_denoise(src: &Frame) -> Frame {
    let mut out = src.clone();
    let format = src.ty().format;
    let p = src.plane(0);
    let (pw, ch) = plane_channels(format, 0, p);
    let h = p.height();
    let dst = out.plane_mut(0);
    let mut window = [0u8; 9];
    for y in 0..h {
        for x in 0..pw {
            for c in 0..ch {
                let mut n = 0;
                for dy in -1isize..=1 {
                    for dx in -1isize..=1 {
                        let sx = (x as isize + dx).clamp(0, pw as isize - 1) as usize;
                        let sy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                        window[n] = p.row(sy)[sx * ch + c];
                        n += 1;
                    }
                }
                window.sort_unstable();
                dst.row_mut(y)[x * ch + c] = window[4];
            }
        }
    }
    out
}

/// Sobel edge detection; returns a grayscale-valued frame of the same type
/// (edges in the first plane, neutral chroma for YUV).
pub fn edge_detect(src: &Frame) -> Frame {
    let mut out = Frame::black(src.ty());
    let format = src.ty().format;
    let p = src.plane(0);
    let (pw, ch) = plane_channels(format, 0, p);
    let h = p.height();
    // Neutral chroma for YUV output.
    if format == PixelFormat::Yuv420p {
        for pl in 1..3 {
            for v in out.plane_mut(pl).data_mut() {
                *v = 128;
            }
        }
    }
    let sample = |x: isize, y: isize| -> i32 {
        let sx = x.clamp(0, pw as isize - 1) as usize;
        let sy = y.clamp(0, h as isize - 1) as usize;
        i32::from(p.row(sy)[sx * ch]) // first channel as intensity proxy
    };
    for y in 0..h {
        for x in 0..pw {
            let (xi, yi) = (x as isize, y as isize);
            let gx = -sample(xi - 1, yi - 1) - 2 * sample(xi - 1, yi) - sample(xi - 1, yi + 1)
                + sample(xi + 1, yi - 1)
                + 2 * sample(xi + 1, yi)
                + sample(xi + 1, yi + 1);
            let gy = -sample(xi - 1, yi - 1) - 2 * sample(xi, yi - 1) - sample(xi + 1, yi - 1)
                + sample(xi - 1, yi + 1)
                + 2 * sample(xi, yi + 1)
                + sample(xi + 1, yi + 1);
            let mag = (((gx * gx + gy * gy) as f32).sqrt() / 4.0).min(255.0) as u8;
            for c in 0..ch {
                out.plane_mut(0).row_mut(y)[x * ch + c] = mag;
            }
        }
    }
    out
}

fn apply_per_plane(src: &Frame, f: impl Fn(&Plane, usize) -> Plane) -> Frame {
    let planes = src
        .planes()
        .iter()
        .enumerate()
        .map(|(i, p)| f(p, i))
        .collect();
    Frame::from_planes(src.ty(), planes).expect("kernel preserved plane dims")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FrameType;

    fn impulse(size: u32) -> Frame {
        let mut f = Frame::black(FrameType::gray8(size, size));
        let c = size as usize / 2;
        f.plane_mut(0).put(c, c, 255);
        f
    }

    #[test]
    fn gaussian_kernel_normalized() {
        let k = gaussian_kernel(1.5);
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(k.len() % 2, 1);
        // Symmetric and peaked at centre.
        assert_eq!(k.first(), k.last());
        let mid = k.len() / 2;
        assert!(k[mid] >= k[0]);
    }

    #[test]
    fn blur_spreads_impulse_and_preserves_energy_roughly() {
        let f = impulse(17);
        let b = gaussian_blur(&f, 1.0);
        let c = 8;
        assert!(b.plane(0).get(c, c) < 255);
        assert!(b.plane(0).get(c + 1, c) > 0);
        let before: u32 = f.plane(0).data().iter().map(|&v| u32::from(v)).sum();
        let after: u32 = b.plane(0).data().iter().map(|&v| u32::from(v)).sum();
        assert!(after.abs_diff(before) < before / 3);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let f = impulse(9);
        assert_eq!(gaussian_blur(&f, 0.0), f);
        assert_eq!(box_blur(&f, 0), f);
        assert_eq!(sharpen(&f, 0.0), f);
    }

    #[test]
    fn blur_constant_frame_is_identity() {
        let mut f = Frame::black(FrameType::gray8(12, 12));
        for v in f.plane_mut(0).data_mut() {
            *v = 77;
        }
        let b = gaussian_blur(&f, 2.0);
        assert!(b.plane(0).data().iter().all(|&v| v.abs_diff(77) <= 1));
    }

    #[test]
    fn rgb_blur_does_not_bleed_channels() {
        let ty = FrameType::rgb24(9, 9);
        let mut f = Frame::black(ty);
        f.plane_mut(0).row_mut(4)[4 * 3] = 255; // red impulse
        let b = gaussian_blur(&f, 1.0);
        let (_, g, bl) = b.rgb_at(4, 4);
        assert_eq!((g, bl), (0, 0), "green/blue must stay black");
    }

    #[test]
    fn sharpen_increases_edge_contrast() {
        let mut f = Frame::black(FrameType::gray8(16, 16));
        for y in 0..16 {
            for x in 8..16 {
                f.plane_mut(0).put(x, y, 200);
            }
        }
        let s = sharpen(&f, 1.0);
        // Overshoot on the bright side of the edge.
        assert!(s.plane(0).get(8, 8) >= 200);
        assert!(s.plane(0).get(7, 8) <= f.plane(0).get(7, 8));
    }

    #[test]
    fn median_removes_salt_noise() {
        let mut f = Frame::black(FrameType::gray8(9, 9));
        f.plane_mut(0).put(4, 4, 255); // single hot pixel
        let d = median_denoise(&f);
        assert_eq!(d.plane(0).get(4, 4), 0);
    }

    #[test]
    fn edges_fire_on_boundaries_only() {
        let mut f = Frame::black(FrameType::gray8(16, 16));
        for y in 0..16 {
            for x in 8..16 {
                f.plane_mut(0).put(x, y, 255);
            }
        }
        let e = edge_detect(&f);
        assert!(e.plane(0).get(8, 8) > 100);
        assert_eq!(e.plane(0).get(2, 8), 0);
        assert_eq!(e.plane(0).get(14, 8), 0);
    }

    #[test]
    fn edge_detect_yuv_neutral_chroma() {
        let f = Frame::black(FrameType::yuv420p(8, 8));
        let e = edge_detect(&f);
        assert!(e.plane(1).data().iter().all(|&v| v == 128));
    }
}
