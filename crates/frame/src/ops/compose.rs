//! Multi-frame composition: grids, overlays, picture-in-picture.
//!
//! `Grid(Frame, Frame, Frame, Frame)` is one of the paper's flagship
//! transformations ("show me the event from multiple cameras as a 2×2
//! grid"); `Overlay` places an image (logo, sticker, annotation panel)
//! over a frame.

use super::scale::{conform, resize_bilinear};
use super::GridLayout;
use crate::format::{FrameType, PixelFormat};
use crate::frame::Frame;

/// Composes `inputs` into a `layout` grid of size `out_ty`.
///
/// Each input is conformed (scaled / format-converted) to its cell size.
/// Missing inputs (fewer frames than cells) leave black cells.
pub fn grid(inputs: &[Frame], layout: GridLayout, out_ty: FrameType) -> Frame {
    let mut out = Frame::black(out_ty);
    let cell_w = out_ty.width / layout.cols.max(1);
    let cell_h = out_ty.height / layout.rows.max(1);
    let cell_ty = out_ty.with_size(cell_w, cell_h);
    for (i, input) in inputs.iter().enumerate().take(layout.cells()) {
        let col = (i as u32) % layout.cols;
        let row = (i as u32) / layout.cols;
        let cell = conform(input, cell_ty);
        blit(
            &mut out,
            &cell,
            (col * cell_w) as usize,
            (row * cell_h) as usize,
        );
    }
    out
}

/// Copies `src` into `dst` with its top-left corner at `(x, y)`, clipped.
/// Both frames must share a pixel format.
pub fn blit(dst: &mut Frame, src: &Frame, x: usize, y: usize) {
    assert_eq!(
        dst.ty().format,
        src.ty().format,
        "blit requires matching formats"
    );
    // For yuv420p, snap to even offsets to keep chroma aligned.
    let (x, y) = if dst.ty().format == PixelFormat::Yuv420p {
        (x & !1, y & !1)
    } else {
        (x, y)
    };
    let n_planes = dst.planes().len();
    for pi in 0..n_planes {
        let (px, py, unit) = match (dst.ty().format, pi) {
            (PixelFormat::Yuv420p, 1) | (PixelFormat::Yuv420p, 2) => (x / 2, y / 2, 1),
            (PixelFormat::Rgb24, 0) => (x, y, 3),
            _ => (x, y, 1),
        };
        let src_p = src.plane(pi).clone();
        let dst_p = dst.plane_mut(pi);
        let copy_w = src_p.width().min(dst_p.width().saturating_sub(px * unit)) / unit * unit;
        let src_px_w = src_p.width();
        for row in 0..src_p.height() {
            let dy = py + row;
            if dy >= dst_p.height() {
                break;
            }
            let src_row = &src_p.row(row)[..copy_w.min(src_px_w)];
            let dst_row = dst_p.row_mut(dy);
            let off = px * unit;
            dst_row[off..off + src_row.len()].copy_from_slice(src_row);
        }
    }
}

/// Alpha-blends `image` over `base` at pixel position `(x, y)`.
///
/// `alpha` is global (`255` = fully opaque). The overlay is format
/// converted to match `base` first. This is the paper's
/// `Overlay(Frame, image_path)` with the image already loaded.
pub fn overlay(base: &Frame, image: &Frame, x: usize, y: usize, alpha: u8) -> Frame {
    let mut out = base.clone();
    let img = match base.ty().format {
        PixelFormat::Yuv420p => image.to_yuv420p(),
        PixelFormat::Rgb24 => image.to_rgb24(),
        PixelFormat::Gray8 => {
            let yuv = image.to_yuv420p();
            Frame::from_planes(
                FrameType::gray8(image.width() as u32, image.height() as u32),
                vec![yuv.plane(0).clone()],
            )
            .expect("luma plane matches gray type")
        }
    };
    if alpha == 255 {
        blit(&mut out, &img, x, y);
        return out;
    }
    let a = u16::from(alpha);
    let inv = 255 - a;
    let (x, y) = if base.ty().format == PixelFormat::Yuv420p {
        (x & !1, y & !1)
    } else {
        (x, y)
    };
    for pi in 0..out.planes().len() {
        let (px, py) = match (base.ty().format, pi) {
            (PixelFormat::Yuv420p, 1) | (PixelFormat::Yuv420p, 2) => (x / 2, y / 2),
            (PixelFormat::Rgb24, 0) => (x * 3, y),
            _ => (x, y),
        };
        let src_p = img.plane(pi);
        let dst_p = out.plane_mut(pi);
        for row in 0..src_p.height() {
            let dy = py + row;
            if dy >= dst_p.height() {
                break;
            }
            let src_row = src_p.row(row);
            let dst_row = dst_p.row_mut(dy);
            for (i, &sv) in src_row.iter().enumerate() {
                let dx = px + i;
                if dx >= dst_row.len() {
                    break;
                }
                let blended = (u16::from(sv) * a + u16::from(dst_row[dx]) * inv + 127) / 255;
                dst_row[dx] = blended as u8;
            }
        }
    }
    out
}

/// Scales `inset` to `scale` (a fraction of the base width) and overlays
/// it at a normalized position — a picture-in-picture composite.
pub fn picture_in_picture(
    base: &Frame,
    inset: &Frame,
    pos_x: f32,
    pos_y: f32,
    scale: f32,
) -> Frame {
    let w = ((base.width() as f32 * scale).max(2.0)) as u32;
    let aspect = inset.height() as f32 / inset.width() as f32;
    let h = ((f32::from(w as u16) * aspect).max(2.0)) as u32;
    let small = resize_bilinear(inset, w, h);
    let x = ((base.width() as f32 - w as f32) * pos_x.clamp(0.0, 1.0)) as usize;
    let y = ((base.height() as f32 - h as f32) * pos_y.clamp(0.0, 1.0)) as usize;
    overlay(base, &small, x, y, 255)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solid(ty: FrameType, luma: u8) -> Frame {
        let mut f = Frame::black(ty);
        for v in f.plane_mut(0).data_mut() {
            *v = luma;
        }
        f
    }

    #[test]
    fn quad_grid_places_inputs() {
        let ty = FrameType::gray8(16, 16);
        let inputs = vec![solid(ty, 10), solid(ty, 20), solid(ty, 30), solid(ty, 40)];
        let out = grid(&inputs, GridLayout::QUAD, FrameType::gray8(32, 32));
        assert_eq!(out.plane(0).get(4, 4), 10);
        assert_eq!(out.plane(0).get(20, 4), 20);
        assert_eq!(out.plane(0).get(4, 20), 30);
        assert_eq!(out.plane(0).get(20, 20), 40);
    }

    #[test]
    fn grid_with_missing_inputs_leaves_black() {
        let ty = FrameType::gray8(8, 8);
        let out = grid(
            &[solid(ty, 200)],
            GridLayout::QUAD,
            FrameType::gray8(16, 16),
        );
        assert_eq!(out.plane(0).get(2, 2), 200);
        assert_eq!(out.plane(0).get(12, 12), 0);
    }

    #[test]
    fn grid_scales_inputs_to_cells() {
        // 32x32 input into a 16x16 cell: still present.
        let input = solid(FrameType::gray8(32, 32), 99);
        let out = grid(&[input], GridLayout::QUAD, FrameType::gray8(32, 32));
        assert_eq!(out.plane(0).get(8, 8), 99);
    }

    #[test]
    fn grid_yuv_conforms_format() {
        let input = solid(FrameType::gray8(8, 8), 50);
        let out = grid(&[input], GridLayout::QUAD, FrameType::yuv420p(16, 16));
        assert_eq!(out.ty().format, PixelFormat::Yuv420p);
        assert_eq!(out.plane(0).get(2, 2), 50);
    }

    #[test]
    fn blit_clips_at_edges() {
        let mut dst = Frame::black(FrameType::gray8(8, 8));
        let src = solid(FrameType::gray8(4, 4), 70);
        blit(&mut dst, &src, 6, 6);
        assert_eq!(dst.plane(0).get(6, 6), 70);
        assert_eq!(dst.plane(0).get(7, 7), 70);
    }

    #[test]
    fn opaque_overlay_replaces_pixels() {
        let base = solid(FrameType::gray8(8, 8), 10);
        let img = solid(FrameType::gray8(2, 2), 200);
        let out = overlay(&base, &img, 2, 2, 255);
        assert_eq!(out.plane(0).get(2, 2), 200);
        assert_eq!(out.plane(0).get(0, 0), 10);
    }

    #[test]
    fn half_alpha_blends() {
        let base = solid(FrameType::gray8(4, 4), 0);
        let img = solid(FrameType::gray8(4, 4), 255);
        let out = overlay(&base, &img, 0, 0, 128);
        let v = out.plane(0).get(1, 1);
        assert!((120..=136).contains(&v), "expected ~128, got {v}");
    }

    #[test]
    fn overlay_converts_format() {
        let base = solid(FrameType::yuv420p(8, 8), 10);
        let img = solid(FrameType::gray8(4, 4), 200);
        let out = overlay(&base, &img, 0, 0, 255);
        assert_eq!(out.plane(0).get(0, 0), 200);
    }

    #[test]
    fn pip_lands_in_corner() {
        let base = solid(FrameType::gray8(32, 32), 0);
        let inset = solid(FrameType::gray8(16, 16), 250);
        let out = picture_in_picture(&base, &inset, 1.0, 1.0, 0.25);
        assert_eq!(out.plane(0).get(30, 30), 250);
        assert_eq!(out.plane(0).get(2, 2), 0);
    }
}
