//! Colour kernels: brightness/contrast, grading, grayscale, invert.

use crate::format::PixelFormat;
use crate::frame::Frame;

/// Adjusts brightness (additive, in `[-255, 255]`) and contrast
/// (multiplicative around mid-gray, `1.0` = unchanged).
///
/// For YUV frames only the luma plane is touched; chroma is preserved.
pub fn brightness_contrast(src: &Frame, brightness: f32, contrast: f32) -> Frame {
    let mut out = src.clone();
    let lut: Vec<u8> = (0..256)
        .map(|v| {
            let x = v as f32;
            ((x - 128.0) * contrast + 128.0 + brightness)
                .round()
                .clamp(0.0, 255.0) as u8
        })
        .collect();
    match src.ty().format {
        PixelFormat::Yuv420p | PixelFormat::Gray8 => {
            for v in out.plane_mut(0).data_mut() {
                *v = lut[*v as usize];
            }
        }
        PixelFormat::Rgb24 => {
            for v in out.plane_mut(0).data_mut() {
                *v = lut[*v as usize];
            }
        }
    }
    out
}

/// Simple colour grade: gamma on luma plus a saturation multiplier.
///
/// `gamma = 1.0, saturation = 1.0` is the identity. Saturation scales
/// chroma distance from neutral (YUV) or from the per-pixel gray (RGB).
pub fn color_grade(src: &Frame, gamma: f32, saturation: f32) -> Frame {
    let mut out = src.clone();
    let inv_g = if gamma > 0.0 { 1.0 / gamma } else { 1.0 };
    let lut: Vec<u8> = (0..256)
        .map(|v| {
            let x = v as f32 / 255.0;
            (x.powf(inv_g) * 255.0).round().clamp(0.0, 255.0) as u8
        })
        .collect();
    match src.ty().format {
        PixelFormat::Gray8 => {
            for v in out.plane_mut(0).data_mut() {
                *v = lut[*v as usize];
            }
        }
        PixelFormat::Yuv420p => {
            for v in out.plane_mut(0).data_mut() {
                *v = lut[*v as usize];
            }
            for pi in 1..3 {
                for v in out.plane_mut(pi).data_mut() {
                    let centered = f32::from(*v) - 128.0;
                    *v = (centered * saturation + 128.0).round().clamp(0.0, 255.0) as u8;
                }
            }
        }
        PixelFormat::Rgb24 => {
            let w = src.width();
            for y in 0..src.height() {
                let row = out.plane_mut(0).row_mut(y);
                for x in 0..w {
                    let r = f32::from(row[x * 3]);
                    let g = f32::from(row[x * 3 + 1]);
                    let b = f32::from(row[x * 3 + 2]);
                    let gray = 0.2126 * r + 0.7152 * g + 0.0722 * b;
                    for (c, v) in [r, g, b].into_iter().enumerate() {
                        let sat = gray + (v - gray) * saturation;
                        let graded = lut[sat.round().clamp(0.0, 255.0) as usize];
                        row[x * 3 + c] = graded;
                    }
                }
            }
        }
    }
    out
}

/// Removes chroma, producing a gray image in the same format.
pub fn grayscale(src: &Frame) -> Frame {
    match src.ty().format {
        PixelFormat::Gray8 => src.clone(),
        PixelFormat::Yuv420p => {
            let mut out = src.clone();
            for pi in 1..3 {
                for v in out.plane_mut(pi).data_mut() {
                    *v = 128;
                }
            }
            out
        }
        PixelFormat::Rgb24 => {
            let mut out = src.clone();
            let w = src.width();
            for y in 0..src.height() {
                let row = out.plane_mut(0).row_mut(y);
                for x in 0..w {
                    let r = f32::from(row[x * 3]);
                    let g = f32::from(row[x * 3 + 1]);
                    let b = f32::from(row[x * 3 + 2]);
                    let gray = (0.2126 * r + 0.7152 * g + 0.0722 * b).round() as u8;
                    row[x * 3] = gray;
                    row[x * 3 + 1] = gray;
                    row[x * 3 + 2] = gray;
                }
            }
            out
        }
    }
}

/// Photographic negative.
pub fn invert(src: &Frame) -> Frame {
    let mut out = src.clone();
    match src.ty().format {
        PixelFormat::Rgb24 | PixelFormat::Gray8 => {
            for v in out.plane_mut(0).data_mut() {
                *v = 255 - *v;
            }
        }
        PixelFormat::Yuv420p => {
            for v in out.plane_mut(0).data_mut() {
                *v = 255 - *v;
            }
            // Chroma inverts around neutral.
            for pi in 1..3 {
                for v in out.plane_mut(pi).data_mut() {
                    *v = (256i16 - i16::from(*v)).clamp(0, 255) as u8;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FrameType;
    use crate::frame::Frame;

    #[test]
    fn identity_parameters_are_noops() {
        let mut f = Frame::black(FrameType::gray8(4, 4));
        f.plane_mut(0).put(1, 1, 99);
        assert_eq!(brightness_contrast(&f, 0.0, 1.0), f);
        assert_eq!(color_grade(&f, 1.0, 1.0), f);
    }

    #[test]
    fn brightness_shifts_up() {
        let f = Frame::black(FrameType::gray8(4, 4));
        let b = brightness_contrast(&f, 50.0, 1.0);
        assert!(b.plane(0).data().iter().all(|&v| v == 50));
    }

    #[test]
    fn contrast_pivots_mid_gray() {
        let mut f = Frame::black(FrameType::gray8(2, 1));
        f.plane_mut(0).put(0, 0, 128);
        f.plane_mut(0).put(1, 0, 192);
        let c = brightness_contrast(&f, 0.0, 2.0);
        assert_eq!(c.plane(0).get(0, 0), 128);
        assert_eq!(c.plane(0).get(1, 0), 255);
    }

    #[test]
    fn gamma_brightens_midtones() {
        let mut f = Frame::black(FrameType::gray8(1, 1));
        f.plane_mut(0).put(0, 0, 64);
        let g = color_grade(&f, 2.2, 1.0);
        assert!(g.plane(0).get(0, 0) > 64);
        // Extremes are fixed points.
        let mut x = Frame::black(FrameType::gray8(1, 1));
        x.plane_mut(0).put(0, 0, 255);
        assert_eq!(color_grade(&x, 2.2, 1.0).plane(0).get(0, 0), 255);
    }

    #[test]
    fn desaturate_yuv_moves_chroma_to_neutral() {
        let mut f = Frame::black(FrameType::yuv420p(4, 4));
        f.plane_mut(2).put(0, 0, 220);
        let g = color_grade(&f, 1.0, 0.0);
        assert_eq!(g.plane(2).get(0, 0), 128);
        let gs = grayscale(&f);
        assert_eq!(gs.plane(2).get(0, 0), 128);
    }

    #[test]
    fn rgb_grayscale_equalizes_channels() {
        let mut f = Frame::black(FrameType::rgb24(2, 1));
        f.plane_mut(0).row_mut(0)[..3].copy_from_slice(&[200, 20, 90]);
        let g = grayscale(&f);
        let (r, gr, b) = g.rgb_at(0, 0);
        assert_eq!(r, gr);
        assert_eq!(gr, b);
    }

    #[test]
    fn invert_involution() {
        let mut f = Frame::black(FrameType::yuv420p(4, 4));
        f.plane_mut(0).put(1, 1, 40);
        f.plane_mut(1).put(0, 0, 100);
        let twice = invert(&invert(&f));
        // Luma is an exact involution; chroma may clip at 0 by one step.
        assert_eq!(twice.plane(0), f.plane(0));
    }
}
