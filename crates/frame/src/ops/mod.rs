//! The raster filter kernel library behind the V2V `Filter` operator.
//!
//! Each kernel is a pure function `&Frame → Frame` (or in-place
//! `&mut Frame`), mirroring the paper's model of transformations as
//! functions `Transform(Frame, …) → Frame`. Kernels are format-aware: they
//! run natively on `yuv420p` (the codec format) without bouncing through
//! RGB, except where colour math requires it.

pub mod annotate;
pub mod background;
pub mod blur;
pub mod color;
pub mod compose;
pub mod scale;
pub mod stabilize;
pub mod transition;

pub use annotate::{draw_bounding_boxes, highlight_regions};
pub use background::replace_background;
pub use blur::{box_blur, edge_detect, gaussian_blur, median_denoise, sharpen};
pub use color::{brightness_contrast, color_grade, grayscale, invert};
pub use compose::{grid, overlay, picture_in_picture};
pub use scale::{conform, conform_shared, crop, resize_bilinear, zoom, zoom_at};
pub use stabilize::stabilize_crop;
pub use transition::{crossfade, fade_to_black};

use crate::format::ColorSpace;
use serde::{Deserialize, Serialize};

/// An 8-bit RGB colour.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Rgb {
    /// Red.
    pub r: u8,
    /// Green.
    pub g: u8,
    /// Blue.
    pub b: u8,
}

impl Rgb {
    /// Pure white.
    pub const WHITE: Rgb = Rgb::new(255, 255, 255);
    /// Pure black.
    pub const BLACK: Rgb = Rgb::new(0, 0, 0);
    /// Annotation red.
    pub const RED: Rgb = Rgb::new(230, 40, 40);
    /// Annotation green.
    pub const GREEN: Rgb = Rgb::new(40, 200, 80);
    /// Annotation yellow.
    pub const YELLOW: Rgb = Rgb::new(240, 220, 60);

    /// Builds a colour from components.
    pub const fn new(r: u8, g: u8, b: u8) -> Rgb {
        Rgb { r, g, b }
    }

    /// Perceptual luma (BT.709 weights).
    pub fn luma(self) -> u8 {
        let v = (218 * u32::from(self.r) + 732 * u32::from(self.g) + 74 * u32::from(self.b) + 512)
            >> 10;
        v.min(255) as u8
    }

    /// Converts to a YUV triple under the given colour space.
    pub fn to_yuv(self, cs: ColorSpace) -> (u8, u8, u8) {
        let (kr, kg, kb) = match cs {
            ColorSpace::Bt709 => (218i32, 732, 74),
            ColorSpace::Bt601 => (306, 601, 117),
        };
        let r = i32::from(self.r);
        let g = i32::from(self.g);
        let b = i32::from(self.b);
        let y = (kr * r + kg * g + kb * b + 512) >> 10;
        let u = ((b - y) * 512 / (1024 - kb)) + 128;
        let v = ((r - y) * 512 / (1024 - kr)) + 128;
        (
            y.clamp(0, 255) as u8,
            u.clamp(0, 255) as u8,
            v.clamp(0, 255) as u8,
        )
    }

    /// Squared distance to another colour in RGB space.
    pub fn dist_sq(self, other: Rgb) -> u32 {
        let dr = i32::from(self.r) - i32::from(other.r);
        let dg = i32::from(self.g) - i32::from(other.g);
        let db = i32::from(self.b) - i32::from(other.b);
        (dr * dr + dg * dg + db * db) as u32
    }
}

/// A detected-object bounding box with resolution-independent coordinates
/// in `[0, 1]` — the element type of `List⟨BoxCoord⟩` in the paper's
/// `BoundingBox(Frame, List⟨BoxCoord⟩)` operator.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct BoxCoord {
    /// Left edge, normalized.
    pub x: f32,
    /// Top edge, normalized.
    pub y: f32,
    /// Width, normalized.
    pub w: f32,
    /// Height, normalized.
    pub h: f32,
    /// Class / identity label drawn next to the box.
    #[serde(default)]
    pub label: String,
    /// Detector confidence in `[0, 1]`.
    #[serde(default)]
    pub confidence: f32,
}

impl BoxCoord {
    /// A labelled box.
    pub fn new(x: f32, y: f32, w: f32, h: f32, label: impl Into<String>) -> BoxCoord {
        BoxCoord {
            x,
            y,
            w,
            h,
            label: label.into(),
            confidence: 1.0,
        }
    }

    /// Pixel-space rectangle for a `width × height` frame.
    pub fn to_pixels(&self, width: usize, height: usize) -> (i64, i64, u32, u32) {
        let x = (self.x * width as f32).round() as i64;
        let y = (self.y * height as f32).round() as i64;
        let w = (self.w * width as f32).round().max(1.0) as u32;
        let h = (self.h * height as f32).round().max(1.0) as u32;
        (x, y, w, h)
    }
}

/// Grid composition shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct GridLayout {
    /// Number of columns.
    pub cols: u32,
    /// Number of rows.
    pub rows: u32,
}

impl GridLayout {
    /// The paper's `2×2` grid.
    pub const QUAD: GridLayout = GridLayout { cols: 2, rows: 2 };

    /// Total number of cells.
    pub fn cells(&self) -> usize {
        (self.cols * self.rows) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luma_weights() {
        assert_eq!(Rgb::WHITE.luma(), 255);
        assert_eq!(Rgb::BLACK.luma(), 0);
        assert!(Rgb::new(0, 255, 0).luma() > Rgb::new(255, 0, 0).luma());
    }

    #[test]
    fn box_to_pixels() {
        let b = BoxCoord::new(0.25, 0.5, 0.5, 0.25, "zebra");
        assert_eq!(b.to_pixels(100, 100), (25, 50, 50, 25));
        // Degenerate boxes keep at least one pixel.
        let tiny = BoxCoord::new(0.0, 0.0, 0.0001, 0.0001, "");
        let (_, _, w, h) = tiny.to_pixels(100, 100);
        assert_eq!((w, h), (1, 1));
    }

    #[test]
    fn grid_cells() {
        assert_eq!(GridLayout::QUAD.cells(), 4);
        assert_eq!(GridLayout { cols: 3, rows: 2 }.cells(), 6);
    }

    #[test]
    fn boxcoord_defaults() {
        let b = BoxCoord::new(0.1, 0.2, 0.3, 0.4, "car");
        assert_eq!(b.label, "car");
        assert_eq!(b.confidence, 1.0);
        assert_eq!(Rgb::new(10, 20, 30).dist_sq(Rgb::new(13, 16, 30)), 25);
    }
}
