//! Animated transitions: crossfades and fades.
//!
//! Transitions are time-parameterized transforms — the spec passes the
//! current frame time to compute `alpha`, matching the paper's note that a
//! transformation may take "some combination of frames, data, and time
//! (e.g., for an animated transition)".

use crate::frame::Frame;

/// Blends `a` into `b`: `alpha = 0` gives `a`, `alpha = 1` gives `b`.
///
/// # Panics
/// Panics if the frame types differ (the checker rules this out for
/// well-typed specs).
pub fn crossfade(a: &Frame, b: &Frame, alpha: f32) -> Frame {
    assert_eq!(a.ty(), b.ty(), "crossfade requires matching frame types");
    let alpha = alpha.clamp(0.0, 1.0);
    if alpha == 0.0 {
        return a.clone();
    }
    if alpha == 1.0 {
        return b.clone();
    }
    let wa = ((1.0 - alpha) * 256.0).round() as u32;
    let wb = 256 - wa;
    let mut out = a.clone();
    for (pi, plane) in out.planes_mut().iter_mut().enumerate() {
        let pb = b.plane(pi);
        for (i, v) in plane.data_mut().iter_mut().enumerate() {
            *v = ((u32::from(*v) * wa + u32::from(pb.data()[i]) * wb + 128) >> 8) as u8;
        }
    }
    out
}

/// Fades toward black: `alpha = 0` is the identity, `alpha = 1` is black.
pub fn fade_to_black(src: &Frame, alpha: f32) -> Frame {
    let black = Frame::black(src.ty());
    crossfade(src, &black, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FrameType;

    fn solid(luma: u8) -> Frame {
        let mut f = Frame::black(FrameType::gray8(4, 4));
        for v in f.plane_mut(0).data_mut() {
            *v = luma;
        }
        f
    }

    #[test]
    fn endpoints_are_exact() {
        let a = solid(10);
        let b = solid(200);
        assert_eq!(crossfade(&a, &b, 0.0), a);
        assert_eq!(crossfade(&a, &b, 1.0), b);
        assert_eq!(crossfade(&a, &b, -3.0), a);
        assert_eq!(crossfade(&a, &b, 7.0), b);
    }

    #[test]
    fn midpoint_blends() {
        let a = solid(0);
        let b = solid(200);
        let m = crossfade(&a, &b, 0.5);
        let v = m.plane(0).get(0, 0);
        assert!((98..=102).contains(&v), "expected ~100, got {v}");
    }

    #[test]
    fn fade_darkens_monotonically() {
        let f = solid(180);
        let q = fade_to_black(&f, 0.25).plane(0).get(0, 0);
        let h = fade_to_black(&f, 0.5).plane(0).get(0, 0);
        let t = fade_to_black(&f, 0.75).plane(0).get(0, 0);
        assert!(q > h && h > t);
        assert_eq!(fade_to_black(&f, 1.0).plane(0).get(0, 0), 0);
    }

    #[test]
    #[should_panic]
    fn type_mismatch_panics() {
        let a = Frame::black(FrameType::gray8(4, 4));
        let b = Frame::black(FrameType::gray8(8, 8));
        crossfade(&a, &b, 0.5);
    }
}
