//! Stabilization by compensated cropping.
//!
//! Real stabilizers estimate motion; in a synthesis pipeline the motion
//! offsets typically arrive as *data* (a data array of per-frame jitter,
//! e.g. from drone telemetry or a tracker). `stabilize_crop` applies the
//! inverse offset inside a safety margin, producing a steady output at a
//! slightly reduced field of view.

use super::scale::{crop, resize_bilinear};
use crate::frame::Frame;

/// Shifts the view by `(-dx, -dy)` pixels within a `margin` border
/// (fractional, e.g. `0.1` = 10 % crop) and scales back to full size.
///
/// `dx`/`dy` are the measured jitter of this frame relative to the
/// reference; offsets beyond the margin are clamped.
pub fn stabilize_crop(src: &Frame, dx: f32, dy: f32, margin: f32) -> Frame {
    let margin = margin.clamp(0.0, 0.4);
    let w = src.width() as f32;
    let h = src.height() as f32;
    let mx = w * margin;
    let my = h * margin;
    let cw = (w - 2.0 * mx).max(2.0);
    let chh = (h - 2.0 * my).max(2.0);
    let x = (mx + dx).clamp(0.0, w - cw);
    let y = (my + dy).clamp(0.0, h - chh);
    let c = crop(src, x as u32, y as u32, cw as u32, chh as u32);
    resize_bilinear(&c, src.width() as u32, src.height() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FrameType;

    /// A frame with a bright pixel at (x, y).
    fn dot(x: usize, y: usize) -> Frame {
        let mut f = Frame::black(FrameType::gray8(40, 40));
        f.plane_mut(0).put(x, y, 255);
        f
    }

    fn brightest(f: &Frame) -> (usize, usize) {
        let p = f.plane(0);
        let mut best = (0, 0, 0u8);
        for y in 0..p.height() {
            for x in 0..p.width() {
                if p.get(x, y) > best.2 {
                    best = (x, y, p.get(x, y));
                }
            }
        }
        (best.0, best.1)
    }

    #[test]
    fn zero_jitter_keeps_subject_centered() {
        let f = dot(20, 20);
        let s = stabilize_crop(&f, 0.0, 0.0, 0.1);
        let (x, y) = brightest(&s);
        assert!(x.abs_diff(20) <= 2 && y.abs_diff(20) <= 2);
    }

    #[test]
    fn jitter_is_compensated() {
        // Subject drifted +3px right; stabilizer should bring it back to
        // roughly where the unjittered subject appears.
        let steady = stabilize_crop(&dot(20, 20), 0.0, 0.0, 0.1);
        let comp = stabilize_crop(&dot(23, 20), 3.0, 0.0, 0.1);
        let (sx, sy) = brightest(&steady);
        let (cx, cy) = brightest(&comp);
        assert!(sx.abs_diff(cx) <= 2, "x: {sx} vs {cx}");
        assert!(sy.abs_diff(cy) <= 2);
    }

    #[test]
    fn oversized_offsets_clamp() {
        let f = dot(20, 20);
        let s = stabilize_crop(&f, 500.0, -500.0, 0.1);
        assert_eq!((s.width(), s.height()), (40, 40));
    }

    #[test]
    fn output_size_is_preserved() {
        let f = dot(10, 10);
        let s = stabilize_crop(&f, 1.5, -2.5, 0.2);
        assert_eq!(s.ty(), f.ty());
    }
}
