//! Background replacement by colour keying.
//!
//! A simple chroma-distance key: pixels within `tolerance` of the key
//! colour are replaced by the corresponding pixel of the replacement
//! frame. Runs in RGB space for colour fidelity, then converts back.

use super::scale::conform;
use super::Rgb;
use crate::frame::Frame;

/// Replaces pixels close to `key` with `background` (conformed to the
/// source geometry). `tolerance` is the maximum RGB distance (0–441).
pub fn replace_background(src: &Frame, background: &Frame, key: Rgb, tolerance: f32) -> Frame {
    let rgb = src.to_rgb24();
    let bg = conform(background, rgb.ty());
    let mut out = rgb.clone();
    let tol_sq = (tolerance * tolerance) as u32;
    let w = rgb.width();
    for y in 0..rgb.height() {
        let bg_row = bg.plane(0).row(y).to_vec();
        let row = out.plane_mut(0).row_mut(y);
        for x in 0..w {
            let px = Rgb::new(row[x * 3], row[x * 3 + 1], row[x * 3 + 2]);
            if px.dist_sq(key) <= tol_sq {
                row[x * 3] = bg_row[x * 3];
                row[x * 3 + 1] = bg_row[x * 3 + 1];
                row[x * 3 + 2] = bg_row[x * 3 + 2];
            }
        }
    }
    conform(&out, src.ty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FrameType;

    #[test]
    fn keyed_pixels_are_replaced() {
        let ty = FrameType::rgb24(8, 8);
        let mut src = Frame::black(ty);
        // Left half green-screen, right half subject (red).
        for y in 0..8 {
            let row = src.plane_mut(0).row_mut(y);
            for x in 0..8 {
                if x < 4 {
                    row[x * 3 + 1] = 255;
                } else {
                    row[x * 3] = 200;
                }
            }
        }
        let mut bg = Frame::black(ty);
        for y in 0..8 {
            let row = bg.plane_mut(0).row_mut(y);
            for x in 0..8 {
                row[x * 3 + 2] = 250; // blue background
            }
        }
        let out = replace_background(&src, &bg, Rgb::new(0, 255, 0), 60.0);
        assert_eq!(out.rgb_at(1, 1), (0, 0, 250));
        assert_eq!(out.rgb_at(6, 6), (200, 0, 0));
    }

    #[test]
    fn zero_tolerance_requires_exact_match() {
        let ty = FrameType::rgb24(2, 1);
        let mut src = Frame::black(ty);
        src.plane_mut(0).row_mut(0)[..6].copy_from_slice(&[0, 255, 0, 0, 250, 0]);
        let bg = Frame::black(ty);
        let out = replace_background(&src, &bg, Rgb::new(0, 255, 0), 0.0);
        assert_eq!(out.rgb_at(0, 0), (0, 0, 0)); // exact key replaced
        assert_eq!(out.rgb_at(1, 0), (0, 250, 0)); // near-key survives
    }

    #[test]
    fn yuv_input_round_trips_format() {
        let src = Frame::black(FrameType::yuv420p(8, 8));
        let bg = Frame::black(FrameType::yuv420p(8, 8));
        let out = replace_background(&src, &bg, Rgb::BLACK, 10.0);
        assert_eq!(out.ty(), src.ty());
    }
}
