//! Object annotation: bounding boxes with class labels.
//!
//! Implements the paper's `BoundingBox(Frame, List⟨BoxCoord⟩)` transform.
//! With an empty list the function is the identity — the property the
//! data-dependent rewriter exploits to stream-copy object-free GOPs.

use super::{BoxCoord, Rgb};
use crate::draw;
use crate::frame::Frame;

/// Palette cycled per box so overlapping detections stay distinguishable.
const PALETTE: [Rgb; 5] = [
    Rgb::RED,
    Rgb::GREEN,
    Rgb::YELLOW,
    Rgb::new(80, 140, 255),
    Rgb::new(240, 120, 240),
];

/// Draws each box outline plus its label (and confidence when < 1.0).
///
/// Returns the input unchanged when `boxes` is empty (identity — see
/// `BoundingBox_dde` in the paper §IV-C).
pub fn draw_bounding_boxes(src: &Frame, boxes: &[BoxCoord]) -> Frame {
    if boxes.is_empty() {
        return src.clone();
    }
    let mut out = src.clone();
    let stroke = (src.width() / 320).max(1) as u32;
    let scale = (src.width() / 320).max(1) as u32;
    for (i, b) in boxes.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let (x, y, w, h) = b.to_pixels(src.width(), src.height());
        draw::rect_outline(&mut out, x, y, w, h, stroke, color);
        if !b.label.is_empty() {
            let text = if b.confidence < 1.0 {
                format!("{} {}%", b.label, (b.confidence * 100.0).round() as u32)
            } else {
                b.label.clone()
            };
            let ty = y - i64::from(scale) * 9;
            draw::label(&mut out, x, ty.max(0), &text, scale, Rgb::BLACK, color);
        }
    }
    out
}

/// Highlights detected objects by dimming everything outside their
/// regions (the paper's "highlight an object" filter). `dim` in `[0, 1]`
/// is how dark the surroundings get; box outlines are drawn on top.
///
/// With an empty list this is the identity, like [`draw_bounding_boxes`]
/// — the same `f_dde` opportunity applies.
pub fn highlight_regions(src: &Frame, boxes: &[BoxCoord], dim: f32) -> Frame {
    if boxes.is_empty() {
        return src.clone();
    }
    let dim = dim.clamp(0.0, 1.0);
    let keep = ((1.0 - dim) * 256.0) as u16;
    let mut out = src.clone();
    let w = src.width();
    let h = src.height();
    // Mask of kept pixels.
    let mut mask = vec![false; w * h];
    for b in boxes {
        let (x, y, bw, bh) = b.to_pixels(w, h);
        let x0 = x.max(0) as usize;
        let y0 = y.max(0) as usize;
        let x1 = ((x + i64::from(bw)).max(0) as usize).min(w);
        let y1 = ((y + i64::from(bh)).max(0) as usize).min(h);
        for my in y0..y1 {
            for mx in x0..x1 {
                mask[my * w + mx] = true;
            }
        }
    }
    // Dim the luma (first plane) outside the mask; RGB dims all channels.
    let unit = if src.ty().format == crate::format::PixelFormat::Rgb24 {
        3
    } else {
        1
    };
    let plane = out.plane_mut(0);
    for y in 0..h {
        let row = plane.row_mut(y);
        for x in 0..w {
            if !mask[y * w + x] {
                for c in 0..unit {
                    let v = u16::from(row[x * unit + c]);
                    row[x * unit + c] = ((v * keep) >> 8) as u8;
                }
            }
        }
    }
    draw_bounding_boxes(&out, boxes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FrameType;

    #[test]
    fn empty_boxes_is_identity() {
        let f = Frame::black(FrameType::yuv420p(32, 32));
        let out = draw_bounding_boxes(&f, &[]);
        assert_eq!(out, f);
    }

    #[test]
    fn boxes_modify_pixels() {
        let f = Frame::black(FrameType::gray8(64, 64));
        let boxes = vec![BoxCoord::new(0.25, 0.25, 0.5, 0.5, "zebra")];
        let out = draw_bounding_boxes(&f, &boxes);
        assert_ne!(out, f);
        // The outline passes through (16, 16).
        assert_ne!(out.plane(0).get(16, 16), 0);
        // Interior is untouched.
        assert_eq!(out.plane(0).get(32, 32), 0);
    }

    #[test]
    fn label_with_confidence_renders() {
        let f = Frame::black(FrameType::gray8(128, 64));
        let mut b = BoxCoord::new(0.2, 0.4, 0.4, 0.4, "car");
        b.confidence = 0.87;
        let out = draw_bounding_boxes(&f, &[b]);
        let lit = out.plane(0).data().iter().filter(|&&v| v > 0).count();
        assert!(lit > 50, "label + box should light many pixels");
    }

    #[test]
    fn multiple_boxes_use_distinct_colors() {
        let f = Frame::black(FrameType::rgb24(64, 64));
        let boxes = vec![
            BoxCoord::new(0.0, 0.0, 0.3, 0.3, ""),
            BoxCoord::new(0.6, 0.6, 0.3, 0.3, ""),
        ];
        let out = draw_bounding_boxes(&f, &boxes);
        let c1 = out.rgb_at(0, 0);
        let c2 = out.rgb_at(38, 38);
        assert_ne!(c1, (0, 0, 0));
        assert_ne!(c2, (0, 0, 0));
        assert_ne!(c1, c2);
    }

    #[test]
    fn highlight_dims_outside_only() {
        let mut f = Frame::black(FrameType::gray8(64, 64));
        for v in f.plane_mut(0).data_mut() {
            *v = 200;
        }
        let boxes = vec![BoxCoord::new(0.25, 0.25, 0.5, 0.5, "")];
        let out = highlight_regions(&f, &boxes, 0.5);
        // Inside the box (away from the outline) stays bright.
        assert_eq!(out.plane(0).get(32, 32), 200);
        // Outside is dimmed to roughly half.
        let outside = out.plane(0).get(2, 2);
        assert!((90..=110).contains(&outside), "got {outside}");
    }

    #[test]
    fn highlight_empty_is_identity() {
        let f = Frame::black(FrameType::yuv420p(32, 32));
        assert_eq!(highlight_regions(&f, &[], 0.7), f);
    }
}
