//! Geometry kernels: resize, crop, zoom.

use crate::format::{FrameType, PixelFormat};
use crate::frame::{Frame, Plane};

/// Resizes a frame to `out_w × out_h` with bilinear sampling, per plane.
pub fn resize_bilinear(src: &Frame, out_w: u32, out_h: u32) -> Frame {
    if (src.width(), src.height()) == (out_w as usize, out_h as usize) {
        return src.clone();
    }
    let ty = src.ty().with_size(out_w, out_h);
    let mut planes = Vec::with_capacity(src.planes().len());
    for (i, p) in src.planes().iter().enumerate() {
        let (pw, ph) = ty.format.plane_dims(i, out_w as usize, out_h as usize);
        // RGB planes interleave 3 samples per pixel; resample per channel.
        if src.ty().format == PixelFormat::Rgb24 {
            let mut out = Plane::new(pw, ph);
            let px_w = pw / 3;
            let sx = src.width() as f32 / px_w as f32;
            let sy = src.height() as f32 / ph as f32;
            for y in 0..ph {
                for x in 0..px_w {
                    let fx = (x as f32 + 0.5) * sx - 0.5;
                    let fy = (y as f32 + 0.5) * sy - 0.5;
                    for c in 0..3 {
                        let v = sample_rgb_channel(p, src.width(), fx, fy, c);
                        out.row_mut(y)[x * 3 + c] = v;
                    }
                }
            }
            planes.push(out);
        } else {
            let mut out = Plane::new(pw, ph);
            let sx = p.width() as f32 / pw as f32;
            let sy = p.height() as f32 / ph as f32;
            for y in 0..ph {
                for x in 0..pw {
                    let fx = (x as f32 + 0.5) * sx - 0.5;
                    let fy = (y as f32 + 0.5) * sy - 0.5;
                    out.put(x, y, p.sample_bilinear(fx, fy));
                }
            }
            planes.push(out);
        }
    }
    Frame::from_planes(ty, planes).expect("resize produced consistent planes")
}

fn sample_rgb_channel(p: &Plane, px_width: usize, fx: f32, fy: f32, c: usize) -> u8 {
    let x0 = fx.floor() as isize;
    let y0 = fy.floor() as isize;
    let dx = fx - x0 as f32;
    let dy = fy - y0 as f32;
    let get = |x: isize, y: isize| -> f32 {
        let x = x.clamp(0, px_width as isize - 1) as usize;
        let y = y.clamp(0, p.height() as isize - 1) as usize;
        p.row(y)[x * 3 + c] as f32
    };
    let v = get(x0, y0) * (1.0 - dx) * (1.0 - dy)
        + get(x0 + 1, y0) * dx * (1.0 - dy)
        + get(x0, y0 + 1) * (1.0 - dx) * dy
        + get(x0 + 1, y0 + 1) * dx * dy;
    v.round().clamp(0.0, 255.0) as u8
}

/// Extracts the rectangle `[x, x+w) × [y, y+h)` as a new frame.
///
/// For `yuv420p`, `x`/`y` are rounded down to even and `w`/`h` up to even
/// to keep chroma alignment; the effective rectangle is clipped to the
/// frame.
pub fn crop(src: &Frame, x: u32, y: u32, w: u32, h: u32) -> Frame {
    let (mut x, mut y, mut w, mut h) = (x as usize, y as usize, w as usize, h as usize);
    if src.ty().format == PixelFormat::Yuv420p {
        x &= !1;
        y &= !1;
        w = (w + 1) & !1;
        h = (h + 1) & !1;
    }
    x = x.min(src.width().saturating_sub(1));
    y = y.min(src.height().saturating_sub(1));
    w = w.clamp(1, src.width() - x);
    h = h.clamp(1, src.height() - y);
    let ty = src.ty().with_size(w as u32, h as u32);
    let mut planes = Vec::with_capacity(src.planes().len());
    for (i, p) in src.planes().iter().enumerate() {
        let (pw, ph) = ty.format.plane_dims(i, w, h);
        let (sub_x, sub_y) = match (src.ty().format, i) {
            (PixelFormat::Yuv420p, 1) | (PixelFormat::Yuv420p, 2) => (x / 2, y / 2),
            (PixelFormat::Rgb24, 0) => (x * 3, y),
            _ => (x, y),
        };
        let mut out = Plane::new(pw, ph);
        for row in 0..ph {
            let src_row = p.row(sub_y + row);
            out.row_mut(row)
                .copy_from_slice(&src_row[sub_x..sub_x + pw]);
        }
        planes.push(out);
    }
    Frame::from_planes(ty, planes).expect("crop produced consistent planes")
}

/// The paper's `Zoom(Frame, percent)` transform: magnifies around the
/// frame centre by `factor` (>= 1.0) and resamples back to the original
/// resolution. `factor = 1.0` is the identity.
pub fn zoom(src: &Frame, factor: f64) -> Frame {
    if factor <= 1.0 {
        return src.clone();
    }
    let w = src.width() as f64;
    let h = src.height() as f64;
    let cw = (w / factor).max(2.0) as u32;
    let ch = (h / factor).max(2.0) as u32;
    let cx = ((w - f64::from(cw)) / 2.0) as u32;
    let cy = ((h - f64::from(ch)) / 2.0) as u32;
    let cropped = crop(src, cx, cy, cw, ch);
    resize_bilinear(&cropped, src.width() as u32, src.height() as u32)
}

/// Zoom centred on a normalized point instead of the frame centre (used
/// for "zoom into the relevant spot" synthesis tasks).
pub fn zoom_at(src: &Frame, factor: f64, center_x: f32, center_y: f32) -> Frame {
    if factor <= 1.0 {
        return src.clone();
    }
    let w = src.width() as f64;
    let h = src.height() as f64;
    let cw = (w / factor).max(2.0);
    let ch = (h / factor).max(2.0);
    let cx = (f64::from(center_x) * w - cw / 2.0).clamp(0.0, w - cw);
    let cy = (f64::from(center_y) * h - ch / 2.0).clamp(0.0, h - ch);
    let cropped = crop(src, cx as u32, cy as u32, cw as u32, ch as u32);
    resize_bilinear(&cropped, src.width() as u32, src.height() as u32)
}

/// Scales a frame to fit a target type, converting format if needed.
pub fn conform(src: &Frame, target: FrameType) -> Frame {
    if src.ty() == target {
        return src.clone();
    }
    let mut f = src.clone();
    if (f.width(), f.height()) != (target.width as usize, target.height as usize) {
        f = resize_bilinear(&f, target.width, target.height);
    }
    match target.format {
        PixelFormat::Yuv420p => f.to_yuv420p(),
        PixelFormat::Rgb24 => f.to_rgb24(),
        PixelFormat::Gray8 => {
            let yuv = f.to_yuv420p();
            Frame::from_planes(target, vec![yuv.plane(0).clone()])
                .expect("luma plane matches gray type")
        }
    }
}

/// [`conform`] over shared frames: when `src` already has the target
/// type the `Arc` is cloned (a refcount bump, no raster copy); otherwise
/// the converted frame is wrapped in a fresh `Arc`.
pub fn conform_shared(src: &std::sync::Arc<Frame>, target: FrameType) -> std::sync::Arc<Frame> {
    if src.ty() == target {
        src.clone()
    } else {
        std::sync::Arc::new(conform(src, target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::FrameType;

    fn gradient(ty: FrameType) -> Frame {
        let mut f = Frame::black(ty);
        let w = f.width();
        for y in 0..f.height() {
            for x in 0..w {
                f.plane_mut(0).put(x, y, ((x * 255) / w.max(1)) as u8);
            }
        }
        f
    }

    #[test]
    fn resize_identity_is_noop() {
        let f = gradient(FrameType::gray8(16, 8));
        let g = resize_bilinear(&f, 16, 8);
        assert_eq!(f, g);
    }

    #[test]
    fn resize_halves_and_preserves_gradient() {
        let f = gradient(FrameType::gray8(32, 32));
        let g = resize_bilinear(&f, 16, 16);
        assert_eq!(g.width(), 16);
        // Gradient is preserved: left darker than right.
        assert!(g.plane(0).get(1, 8) < g.plane(0).get(14, 8));
    }

    #[test]
    fn resize_yuv_scales_chroma() {
        let f = Frame::black(FrameType::yuv420p(32, 32));
        let g = resize_bilinear(&f, 16, 16);
        assert_eq!(g.plane(1).width(), 8);
        assert!(g.plane(1).data().iter().all(|&v| v == 128));
    }

    #[test]
    fn resize_rgb_keeps_channels_independent() {
        let ty = FrameType::rgb24(8, 8);
        let mut f = Frame::black(ty);
        for y in 0..8 {
            for x in 0..8 {
                f.plane_mut(0).row_mut(y)[x * 3] = 200; // red only
            }
        }
        let g = resize_bilinear(&f, 4, 4);
        assert_eq!(g.rgb_at(2, 2), (200, 0, 0));
    }

    #[test]
    fn crop_extracts_exact_region() {
        let f = gradient(FrameType::gray8(16, 8));
        let c = crop(&f, 4, 2, 8, 4);
        assert_eq!((c.width(), c.height()), (8, 4));
        assert_eq!(c.plane(0).get(0, 0), f.plane(0).get(4, 2));
        assert_eq!(c.plane(0).get(7, 3), f.plane(0).get(11, 5));
    }

    #[test]
    fn crop_yuv_aligns_to_even() {
        let f = Frame::black(FrameType::yuv420p(16, 16));
        let c = crop(&f, 3, 3, 5, 5);
        assert_eq!((c.width(), c.height()), (6, 6));
        assert_eq!(c.plane(1).width(), 3);
    }

    #[test]
    fn crop_clips_to_frame() {
        let f = gradient(FrameType::gray8(8, 8));
        let c = crop(&f, 6, 6, 10, 10);
        assert_eq!((c.width(), c.height()), (2, 2));
    }

    #[test]
    fn zoom_identity_below_one() {
        let f = gradient(FrameType::gray8(16, 16));
        assert_eq!(zoom(&f, 1.0), f);
        assert_eq!(zoom(&f, 0.5), f);
    }

    #[test]
    fn zoom_magnifies_center() {
        // Bright square in the middle: after 2x zoom its footprint grows.
        let mut f = Frame::black(FrameType::gray8(32, 32));
        for y in 12..20 {
            for x in 12..20 {
                f.plane_mut(0).put(x, y, 255);
            }
        }
        let z = zoom(&f, 2.0);
        assert_eq!((z.width(), z.height()), (32, 32));
        let bright_before = f.plane(0).data().iter().filter(|&&v| v > 200).count();
        let bright_after = z.plane(0).data().iter().filter(|&&v| v > 200).count();
        assert!(bright_after > bright_before * 2);
    }

    #[test]
    fn zoom_at_targets_corner() {
        let mut f = Frame::black(FrameType::gray8(32, 32));
        f.plane_mut(0).put(2, 2, 255);
        let z = zoom_at(&f, 4.0, 0.05, 0.05);
        // The bright corner pixel dominates the zoomed view.
        let lit = z.plane(0).data().iter().filter(|&&v| v > 64).count();
        assert!(lit >= 4);
    }

    #[test]
    fn conform_converts_size_and_format() {
        let f = gradient(FrameType::gray8(16, 16));
        let out = conform(&f, FrameType::yuv420p(8, 8));
        assert_eq!(out.ty(), FrameType::yuv420p(8, 8));
    }
}
