//! Static frame types: pixel formats, colour spaces, and dimensions.
//!
//! Spec type checking (paper §III-B) verifies that every transformation
//! receives frames of the type it expects — e.g. a `Grid` of four inputs
//! requires agreeing formats — before any pixel is decoded. `FrameType`
//! is that static type.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Pixel memory layout of a frame.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PixelFormat {
    /// Planar YUV with 2×2 chroma subsampling: the codec-native format.
    Yuv420p,
    /// Interleaved 8-bit RGB.
    Rgb24,
    /// Single 8-bit luma plane.
    Gray8,
}

impl PixelFormat {
    /// Number of planes in this layout.
    pub fn plane_count(self) -> usize {
        match self {
            PixelFormat::Yuv420p => 3,
            PixelFormat::Rgb24 => 1,
            PixelFormat::Gray8 => 1,
        }
    }

    /// Dimensions of plane `idx` for a `width × height` frame.
    ///
    /// # Panics
    /// Panics if `idx >= plane_count()`.
    pub fn plane_dims(self, idx: usize, width: usize, height: usize) -> (usize, usize) {
        match (self, idx) {
            (PixelFormat::Yuv420p, 0) => (width, height),
            (PixelFormat::Yuv420p, 1) | (PixelFormat::Yuv420p, 2) => {
                (width.div_ceil(2), height.div_ceil(2))
            }
            (PixelFormat::Rgb24, 0) => (width * 3, height),
            (PixelFormat::Gray8, 0) => (width, height),
            _ => panic!("plane index {idx} out of range for {self:?}"),
        }
    }

    /// Total bytes of raster data for a `width × height` frame.
    pub fn frame_bytes(self, width: usize, height: usize) -> usize {
        (0..self.plane_count())
            .map(|i| {
                let (w, h) = self.plane_dims(i, width, height);
                w * h
            })
            .sum()
    }
}

impl fmt::Display for PixelFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PixelFormat::Yuv420p => "yuv420p",
            PixelFormat::Rgb24 => "rgb24",
            PixelFormat::Gray8 => "gray8",
        };
        f.write_str(s)
    }
}

/// Colour space tag. Purely a typing concern: conversions interpret YUV
/// data using the tagged matrix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ColorSpace {
    /// ITU-R BT.709 (HD video; the paper's example frame type).
    #[default]
    Bt709,
    /// ITU-R BT.601 (SD video).
    Bt601,
}

/// The static type of a frame: what the spec checker reasons about.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct FrameType {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// Pixel layout.
    pub format: PixelFormat,
    /// Colour space tag.
    #[serde(default)]
    pub color: ColorSpace,
}

impl FrameType {
    /// A `yuv420p` BT.709 frame type — the common case.
    pub fn yuv420p(width: u32, height: u32) -> FrameType {
        FrameType {
            width,
            height,
            format: PixelFormat::Yuv420p,
            color: ColorSpace::Bt709,
        }
    }

    /// An `rgb24` frame type.
    pub fn rgb24(width: u32, height: u32) -> FrameType {
        FrameType {
            width,
            height,
            format: PixelFormat::Rgb24,
            color: ColorSpace::Bt709,
        }
    }

    /// A single-plane grayscale frame type.
    pub fn gray8(width: u32, height: u32) -> FrameType {
        FrameType {
            width,
            height,
            format: PixelFormat::Gray8,
            color: ColorSpace::Bt709,
        }
    }

    /// Total raster bytes for a frame of this type.
    pub fn frame_bytes(&self) -> usize {
        self.format
            .frame_bytes(self.width as usize, self.height as usize)
    }

    /// Same geometry, different format.
    pub fn with_format(self, format: PixelFormat) -> FrameType {
        FrameType { format, ..self }
    }

    /// Same format, different geometry.
    pub fn with_size(self, width: u32, height: u32) -> FrameType {
        FrameType {
            width,
            height,
            ..self
        }
    }
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} {} {:?}",
            self.width, self.height, self.format, self.color
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plane_dims_yuv420p() {
        let f = PixelFormat::Yuv420p;
        assert_eq!(f.plane_dims(0, 1920, 1080), (1920, 1080));
        assert_eq!(f.plane_dims(1, 1920, 1080), (960, 540));
        assert_eq!(f.plane_dims(2, 1919, 1079), (960, 540));
        assert_eq!(f.frame_bytes(1920, 1080), 1920 * 1080 * 3 / 2);
    }

    #[test]
    fn plane_dims_rgb_and_gray() {
        assert_eq!(PixelFormat::Rgb24.plane_dims(0, 10, 4), (30, 4));
        assert_eq!(PixelFormat::Rgb24.frame_bytes(10, 4), 120);
        assert_eq!(PixelFormat::Gray8.frame_bytes(10, 4), 40);
    }

    #[test]
    #[should_panic]
    fn plane_index_out_of_range_panics() {
        PixelFormat::Gray8.plane_dims(1, 4, 4);
    }

    #[test]
    fn frame_type_display() {
        let t = FrameType::yuv420p(1920, 1080);
        assert_eq!(t.to_string(), "1920x1080 yuv420p Bt709");
    }

    #[test]
    fn frame_type_builders() {
        let t = FrameType::yuv420p(64, 32)
            .with_size(128, 64)
            .with_format(PixelFormat::Gray8);
        assert_eq!(t.width, 128);
        assert_eq!(t.format, PixelFormat::Gray8);
        assert_eq!(t.frame_bytes(), 128 * 64);
    }
}
