//! `/subscribe` incremental results: delta framing and reassembly.
//!
//! A subscription is a long-lived `POST /subscribe` response carrying a
//! sequence of **delta records**. Each record re-sends the suffix of the
//! query's output that changed since the previous push, starting at an
//! output keyframe at-or-before the divergence point, so the client can
//! splice it onto its running copy without any decode:
//!
//! ```text
//! record := header_len:u32le  header_json  svc_bytes
//! header := { seq, from_frame, frames, svc_len, version }
//! ```
//!
//! The `svc_bytes` are a complete sealed `.svc` container of the delta
//! packets, stamped at their *absolute* output instants — so a delta is
//! independently playable, and [`DeltaApplier::apply`] only has to
//! truncate its cumulative packet list to `from_frame` and extend.
//!
//! **Byte identity.** The server pushes deltas of a full re-render of
//! the clamped spec, so after applying record `n` the client's
//! cumulative stream is byte-for-byte the output of a cold one-shot run
//! of the same spec at the same source length. The incremental part is
//! the *work*, not the result: unchanged segments come out of the
//! render cache (their keys survive appends — see
//! `v2v_plan::fingerprint`), and the wire carries only the changed
//! suffix.

use std::io::{self, Read, Write};
use v2v_container::VideoStream;

/// Content type of the `/subscribe` response body.
pub const DELTA_CONTENT_TYPE: &str = "application/x-v2v-delta";

/// Framing header of one delta record.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DeltaHeader {
    /// Position of this record in the subscription (0-based).
    pub seq: u64,
    /// Output frame index the delta splices in at: the client truncates
    /// its cumulative stream to this many frames, then appends.
    pub from_frame: u64,
    /// Frames in the delta container.
    pub frames: u64,
    /// Byte length of the sealed `.svc` container that follows.
    pub svc_len: u64,
    /// The server's catalog version this delta was rendered against.
    pub version: u64,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes one delta record.
pub fn write_delta(w: &mut impl Write, header: &DeltaHeader, svc: &[u8]) -> io::Result<()> {
    debug_assert_eq!(header.svc_len as usize, svc.len());
    let json = serde_json::to_vec(header).map_err(|e| bad(format!("delta header: {e}")))?;
    let len = u32::try_from(json.len()).map_err(|_| bad("delta header too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&json)?;
    w.write_all(svc)?;
    w.flush()
}

/// Reads one delta record. `Ok(None)` means the stream ended cleanly at
/// a record boundary (the server closed the subscription); an EOF
/// *inside* a record is an error.
pub fn read_delta(r: &mut impl Read) -> io::Result<Option<(DeltaHeader, Vec<u8>)>> {
    let mut len = [0u8; 4];
    match r.read(&mut len)? {
        0 => return Ok(None),
        n => r.read_exact(&mut len[n..])?,
    }
    let len = u32::from_le_bytes(len) as usize;
    // A spec-sized bound: headers are a few hundred bytes of JSON.
    if len > 1 << 20 {
        return Err(bad(format!("delta header length {len} implausible")));
    }
    let mut json = vec![0u8; len];
    r.read_exact(&mut json)?;
    let header: DeltaHeader =
        serde_json::from_slice(&json).map_err(|e| bad(format!("delta header: {e}")))?;
    let mut svc = vec![0u8; header.svc_len as usize];
    r.read_exact(&mut svc)?;
    Ok(Some((header, svc)))
}

/// Computes the delta record content between consecutive cumulative
/// outputs: the packet suffix of `next` from the output keyframe
/// at-or-before the first packet that differs from `prev`.
///
/// Returns `None` when `next` equals `prev` (nothing to push). The
/// returned stream is stamped at its absolute output instants.
pub fn delta_between(
    prev: Option<&VideoStream>,
    next: &VideoStream,
) -> Option<(usize, VideoStream)> {
    let common = match prev {
        None => 0,
        Some(p) => {
            let mut k = 0;
            while k < p.len().min(next.len()) {
                let (a, b) = (&p.packets()[k], &next.packets()[k]);
                if a.keyframe != b.keyframe || a.data != b.data {
                    break;
                }
                k += 1;
            }
            if k == next.len() && k == p.len() {
                return None; // identical outputs
            }
            k
        }
    };
    // Splice points must be keyframes: back up from the divergence.
    let from = if next.is_empty() {
        0
    } else {
        next.keyframe_at_or_before(common.min(next.len() - 1))
            .unwrap_or(0)
    };
    let new_start = next.start() + next.frame_dur() * v2v_time::Rational::from_int(from as i64);
    let packets = next.copy_packet_range(from, next.len(), new_start).ok()?;
    let delta = VideoStream::new(*next.params(), new_start, next.frame_dur(), packets).ok()?;
    Some((from, delta))
}

/// Client-side reassembly: applies delta records in order and maintains
/// the cumulative output stream.
#[derive(Default)]
pub struct DeltaApplier {
    cumulative: Option<VideoStream>,
}

impl DeltaApplier {
    /// An applier with no frames yet.
    pub fn new() -> DeltaApplier {
        DeltaApplier::default()
    }

    /// The cumulative output after every delta applied so far.
    pub fn cumulative(&self) -> Option<&VideoStream> {
        self.cumulative.as_ref()
    }

    /// Applies one record: truncates the cumulative stream to
    /// `from_frame` packets and appends the delta's. Fails if the delta
    /// does not land on the cumulative grid.
    pub fn apply(&mut self, header: &DeltaHeader, svc: &[u8]) -> io::Result<&VideoStream> {
        let delta =
            v2v_container::svc_from_bytes(svc).map_err(|e| bad(format!("delta container: {e}")))?;
        if delta.len() as u64 != header.frames {
            return Err(bad(format!(
                "delta frame count {} != header {}",
                delta.len(),
                header.frames
            )));
        }
        let from = header.from_frame as usize;
        let next = match (&self.cumulative, from) {
            (_, 0) => delta,
            (None, _) => return Err(bad("first delta must start at frame 0")),
            (Some(cum), _) => {
                if from > cum.len() {
                    return Err(bad(format!(
                        "delta splices at {from} but only {} frames held",
                        cum.len()
                    )));
                }
                let expect =
                    cum.start() + cum.frame_dur() * v2v_time::Rational::from_int(from as i64);
                if *delta.params() != *cum.params()
                    || delta.frame_dur() != cum.frame_dur()
                    || delta.start() != expect
                {
                    return Err(bad("delta does not land on the cumulative grid"));
                }
                let mut packets = cum.packets()[..from].to_vec();
                packets.extend_from_slice(delta.packets());
                VideoStream::new(*cum.params(), cum.start(), cum.frame_dur(), packets)
                    .map_err(|e| bad(format!("splicing delta: {e}")))?
            }
        };
        Ok(self.cumulative.insert(next))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_codec::CodecParams;
    use v2v_container::StreamWriter;
    use v2v_frame::{marker, Frame, FrameType};
    use v2v_time::{r, Rational};

    fn marked(n: usize, gop: u32, seed: u32) -> VideoStream {
        let ty = FrameType::gray8(64, 32);
        let params = CodecParams::new(ty, gop, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            marker::embed(&mut f, seed + i as u32);
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn delta_framing_round_trips() {
        let svc = v2v_container::svc_to_bytes(&marked(8, 4, 0)).unwrap();
        let header = DeltaHeader {
            seq: 3,
            from_frame: 4,
            frames: 8,
            svc_len: svc.len() as u64,
            version: 9,
        };
        let mut wire = Vec::new();
        write_delta(&mut wire, &header, &svc).unwrap();
        let mut cursor = std::io::Cursor::new(&wire);
        let (h, body) = read_delta(&mut cursor).unwrap().expect("one record");
        assert_eq!((h.seq, h.from_frame, h.frames, h.version), (3, 4, 8, 9));
        assert_eq!(body, svc);
        assert!(read_delta(&mut cursor).unwrap().is_none(), "clean EOF");
        // A record cut mid-body is an error, not a silent None.
        let mut cut = std::io::Cursor::new(&wire[..wire.len() - 3]);
        assert!(read_delta(&mut cut).is_err());
    }

    #[test]
    fn delta_and_applier_reproduce_the_full_stream() {
        // Grow a stream 8 → 16 frames; the delta between cumulative
        // outputs starts at the keyframe covering the divergence and
        // applying it reproduces the full 16-frame output exactly.
        let full = marked(16, 4, 0);
        let first = VideoStream::new(*full.params(), full.start(), full.frame_dur(), {
            full.copy_packet_range(0, 8, full.start()).unwrap()
        })
        .unwrap();

        let mut applier = DeltaApplier::new();
        let (from0, d0) = delta_between(None, &first).expect("first delta");
        assert_eq!(from0, 0);
        let svc0 = v2v_container::svc_to_bytes(&d0).unwrap();
        let h0 = DeltaHeader {
            seq: 0,
            from_frame: 0,
            frames: d0.len() as u64,
            svc_len: svc0.len() as u64,
            version: 1,
        };
        applier.apply(&h0, &svc0).unwrap();

        let (from1, d1) = delta_between(Some(&first), &full).expect("growth delta");
        assert_eq!(from1, 8, "divergence at a keyframe needs no backup");
        let svc1 = v2v_container::svc_to_bytes(&d1).unwrap();
        let h1 = DeltaHeader {
            seq: 1,
            from_frame: from1 as u64,
            frames: d1.len() as u64,
            svc_len: svc1.len() as u64,
            version: 2,
        };
        let cum = applier.apply(&h1, &svc1).unwrap();
        assert_eq!(cum.content_digest(), full.content_digest());

        // No growth → no delta.
        assert!(delta_between(Some(&full), &full).is_none());
    }

    #[test]
    fn delta_backs_up_to_a_keyframe_when_the_tail_is_rewritten() {
        // Divergence mid-GOP: frames 0..10 shared, but 10 is not a
        // keyframe — the delta must restart from frame 8.
        let a = marked(12, 4, 0);
        let mut packets = a.packets()[..10].to_vec();
        let b_tail = marked(16, 4, 500);
        for (i, p) in b_tail.packets()[8..].iter().enumerate() {
            let k = 10 + i;
            if k >= 16 {
                break;
            }
            // Restamp foreign packets onto a's grid to fake a rewrite.
            let pts = a.start() + a.frame_dur() * Rational::from_int(k as i64);
            let mut q = p.clone();
            q.pts = pts;
            q.keyframe = k % 4 == 0;
            packets.push(q);
        }
        let b = VideoStream::new(*a.params(), a.start(), a.frame_dur(), packets).unwrap();
        let (from, delta) = delta_between(Some(&a), &b).expect("delta");
        assert_eq!(from, 8, "backs up from divergence at 10 to keyframe 8");
        let mut applier = DeltaApplier::new();
        let svc_a = v2v_container::svc_to_bytes(&a).unwrap();
        applier
            .apply(
                &DeltaHeader {
                    seq: 0,
                    from_frame: 0,
                    frames: a.len() as u64,
                    svc_len: svc_a.len() as u64,
                    version: 1,
                },
                &svc_a,
            )
            .unwrap();
        let svc_d = v2v_container::svc_to_bytes(&delta).unwrap();
        let cum = applier
            .apply(
                &DeltaHeader {
                    seq: 1,
                    from_frame: from as u64,
                    frames: delta.len() as u64,
                    svc_len: svc_d.len() as u64,
                    version: 2,
                },
                &svc_d,
            )
            .unwrap();
        assert_eq!(cum.content_digest(), b.content_digest());
    }
}
