//! Variant-store serving: admin routes, the `/status` `store` block,
//! access-profile recording, and the background compaction pass.
//!
//! The daemon owns the full adaptive-storage loop: every prepared query
//! is profiled into per-source smart-cut / scan / preview rates, and the
//! compactor (background thread or `POST /store/compact`) turns those
//! rates plus the byte budget into materialize/drop actions executed
//! against the [`SourceStore`] and the live catalog.
//!
//! Routes (frontend role only):
//!
//! | route | effect |
//! |---|---|
//! | `GET /store` | manifests, attached variants, observed profiles |
//! | `POST /store/materialize/<name>/<kind>` | transcode + attach now |
//! | `POST /store/drop/<name>/<kind>` | drop bitstream + detach |
//! | `POST /store/pin/<name>/<kind>` | body `{"pinned": bool}` |
//! | `POST /store/compact` | run one compaction pass now |

use crate::http::{Request, Response};
use crate::{error_response, Shared};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use v2v_plan::VariantKind;
use v2v_store::{
    plan_compaction, AccessProfile, CompactionInput, SourceStore, StoreAction, StoreError, StoreOp,
    TranscodeSpec,
};

/// Accumulates one prepared plan's access profile into the daemon-wide
/// table and the `store.reads.*` counters.
pub(crate) fn record_profiles(shared: &Shared, profiles: &BTreeMap<String, AccessProfile>) {
    let mut table = shared
        .profiles
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    for (name, p) in profiles {
        table.entry(name.clone()).or_default().add(*p);
        shared.metrics.store_smart_cut.add(p.smart_cut);
        shared.metrics.store_scan.add(p.scan);
        shared.metrics.store_preview.add(p.preview);
    }
}

fn profiles_snapshot(shared: &Shared) -> BTreeMap<String, AccessProfile> {
    shared
        .profiles
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clone()
}

/// The `store` object in `GET /status` (and the `GET /store` body).
pub(crate) fn status_block(shared: &Shared) -> Option<serde_json::Value> {
    let store = shared.store.as_ref()?;
    let budget = shared
        .config
        .store
        .as_ref()
        .map(|c| c.budget_bytes)
        .unwrap_or(u64::MAX);
    let attached: BTreeMap<String, Vec<&'static str>> = shared
        .catalog
        .read()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .variant_kinds()
        .into_iter()
        .map(|(name, kinds)| (name, kinds.into_iter().map(VariantKind::name).collect()))
        .collect();
    let variants: Vec<serde_json::Value> = store
        .manifests()
        .unwrap_or_default()
        .iter()
        .flat_map(|m| {
            m.variants
                .iter()
                .map(|v| {
                    serde_json::json!({
                        "source": m.name,
                        "kind": v.kind.name(),
                        "bytes": v.byte_size,
                        "covered_frames": v.covered_frames,
                        "gop_size": v.params.gop_size,
                        "pinned": v.pinned,
                    })
                })
                .collect::<Vec<_>>()
        })
        .collect();
    Some(serde_json::json!({
        "root": store.root().display().to_string(),
        "budget_bytes": budget,
        "managed_bytes": store.managed_bytes().unwrap_or(0),
        "attached": attached,
        "variants": variants,
        "profiles": profiles_snapshot(shared),
        "materializations": shared.store_materializations.load(Ordering::Relaxed),
        "drops": shared.store_drops.load(Ordering::Relaxed),
        "compactions": shared.store_compactions.load(Ordering::Relaxed),
    }))
}

/// `GET /store`.
pub(crate) fn handle_store_ls(shared: &Shared) -> Response {
    match status_block(shared) {
        Some(block) => Response::json(200, &block),
        None => error_response(404, "not_found", "no variant store configured"),
    }
}

fn parse_target(path: &str, op: &str) -> Option<(String, VariantKind)> {
    let rest = path.strip_prefix("/store/")?.strip_prefix(op)?;
    let rest = rest.strip_prefix('/')?;
    let (name, kind) = rest.split_once('/')?;
    if name.is_empty() {
        return None;
    }
    Some((name.to_string(), VariantKind::parse(kind)?))
}

fn store_status(e: &StoreError) -> u16 {
    match e {
        StoreError::UnknownSource(_) | StoreError::UnknownVariant { .. } => 404,
        StoreError::OriginalNotManaged => 400,
        StoreError::CorruptManifest { .. } | StoreError::DigestMismatch { .. } => 422,
        StoreError::Io { .. } | StoreError::Container(_) => 500,
    }
}

/// `POST /store/materialize/<name>/<kind>`, `/store/drop/...`,
/// `/store/pin/...`.
pub(crate) fn handle_store_admin(path: &str, req: &Request, shared: &Shared) -> Response {
    let Some(store) = shared.store.as_ref() else {
        return error_response(404, "not_found", "no variant store configured");
    };
    if let Some((name, kind)) = parse_target(path, "materialize") {
        return match materialize_and_attach(shared, store, &name, kind) {
            Ok(entry) => Response::json(
                200,
                &serde_json::json!({
                    "source": name,
                    "kind": kind.name(),
                    "bytes": entry.byte_size,
                    "covered_frames": entry.covered_frames,
                }),
            ),
            Err(resp) => resp,
        };
    }
    if let Some((name, kind)) = parse_target(path, "drop") {
        return match store.drop_variant(&name, kind, true) {
            Ok(dropped) => {
                if dropped {
                    detach(shared, &name, kind);
                    shared.store_drops.fetch_add(1, Ordering::Relaxed);
                    shared.metrics.store_drops.inc();
                }
                Response::json(
                    200,
                    &serde_json::json!({"source": name, "kind": kind.name(), "dropped": dropped}),
                )
            }
            Err(e) => error_response(store_status(&e), "store", &e.to_string()),
        };
    }
    if let Some((name, kind)) = parse_target(path, "pin") {
        let pinned = serde_json::from_slice::<serde_json::Value>(&req.body)
            .ok()
            .and_then(|v| v.get("pinned").and_then(|p| p.as_bool()))
            .unwrap_or(true);
        return match store.pin(&name, kind, pinned) {
            Ok(()) => Response::json(
                200,
                &serde_json::json!({"source": name, "kind": kind.name(), "pinned": pinned}),
            ),
            Err(e) => error_response(store_status(&e), "store", &e.to_string()),
        };
    }
    error_response(404, "not_found", &format!("no store route {path}"))
}

/// `POST /store/compact`: one synchronous compaction pass.
pub(crate) fn handle_store_compact(shared: &Shared) -> Response {
    if shared.store.is_none() {
        return error_response(404, "not_found", "no variant store configured");
    }
    let actions = compaction_pass(shared);
    Response::json(200, &serde_json::json!({"actions": actions}))
}

/// Transcodes one variant from the current committed prefix of the
/// catalog source and attaches it. Live sources may keep growing —
/// the variant covers exactly the frames present in the snapshot taken
/// here, and the planner falls back to the original past that prefix.
fn materialize_and_attach(
    shared: &Shared,
    store: &SourceStore,
    name: &str,
    kind: VariantKind,
) -> Result<v2v_store::VariantEntry, Response> {
    let Some(original) = shared.catalog_snapshot().video(name).cloned() else {
        return Err(error_response(
            404,
            "not_found",
            &format!("no catalog video '{name}'"),
        ));
    };
    store
        .materialize(name, &original, TranscodeSpec::for_kind(kind))
        .map_err(|e| error_response(store_status(&e), "store", &e.to_string()))?;
    // Re-load through the digest check rather than trusting the
    // in-memory transcode: attachment and recovery now share one path.
    let (stream, entry) = store
        .load_variant(name, kind)
        .map_err(|e| error_response(store_status(&e), "store", &e.to_string()))?;
    shared
        .catalog
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .add_variant(name, kind, Arc::new(stream), entry.covered_frames);
    shared
        .store_materializations
        .fetch_add(1, Ordering::Relaxed);
    shared.metrics.store_materializations.inc();
    Ok(entry)
}

fn detach(shared: &Shared, name: &str, kind: VariantKind) {
    shared
        .catalog
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .remove_variant(name, kind);
}

/// One compaction pass: observed profiles + store state + budget →
/// actions, executed immediately. Returns what was done (actions that
/// failed to execute are reported with an `error` field and skipped).
pub(crate) fn compaction_pass(shared: &Shared) -> Vec<serde_json::Value> {
    let Some(store) = shared.store.as_ref() else {
        return Vec::new();
    };
    let budget = shared
        .config
        .store
        .as_ref()
        .map(|c| c.budget_bytes)
        .unwrap_or(u64::MAX);
    let catalog = shared.catalog_snapshot();
    let profiles = profiles_snapshot(shared);
    let manifests = store.manifests().unwrap_or_default();
    // The union of catalog sources and managed manifests: a daemon
    // whose queries bind sources lazily by locator never registers
    // them in the shared catalog, but their variants still occupy the
    // budget (and their profiles still accumulate), so the compactor
    // must see them to evict.
    let mut names: Vec<String> = catalog.source_infos().keys().cloned().collect();
    for m in &manifests {
        if !names.contains(&m.name) {
            names.push(m.name.clone());
        }
    }
    let mut inputs = Vec::new();
    for name in &names {
        let materialized = manifests
            .iter()
            .find(|m| &m.name == name)
            .map(|m| {
                m.variants
                    .iter()
                    .map(|v| (v.kind, v.byte_size, v.pinned))
                    .collect()
            })
            .unwrap_or_default();
        inputs.push(CompactionInput {
            name: name.clone(),
            profile: profiles.get(name).copied().unwrap_or_default(),
            original_bytes: catalog.video(name).map(|s| s.byte_size()).unwrap_or(0),
            materialized,
        });
    }
    let actions = plan_compaction(&inputs, budget);
    let mut report = Vec::with_capacity(actions.len());
    for StoreAction { name, kind, op } in actions {
        // Transcoding needs the original, which only the catalog
        // holds; skip materializations for manifest-only sources
        // (drops and evictions still apply).
        if matches!(op, StoreOp::Materialize) && catalog.video(&name).is_none() {
            continue;
        }
        let outcome = match op {
            StoreOp::Materialize => materialize_and_attach(shared, store, &name, kind)
                .map(|_| ())
                .map_err(|_| "materialize failed".to_string()),
            StoreOp::Drop => match store.drop_variant(&name, kind, false) {
                Ok(dropped) => {
                    if dropped {
                        detach(shared, &name, kind);
                        shared.store_drops.fetch_add(1, Ordering::Relaxed);
                        shared.metrics.store_drops.inc();
                    }
                    Ok(())
                }
                Err(e) => Err(e.to_string()),
            },
        };
        let op_name = match op {
            StoreOp::Materialize => "materialize",
            StoreOp::Drop => "drop",
        };
        report.push(match outcome {
            Ok(()) => serde_json::json!({"source": name, "kind": kind.name(), "op": op_name}),
            Err(e) => serde_json::json!({
                "source": name,
                "kind": kind.name(),
                "op": op_name,
                "error": e,
            }),
        });
    }
    shared.store_compactions.fetch_add(1, Ordering::Relaxed);
    report
}

/// The background compaction loop: runs a pass every `interval`,
/// checking for shutdown at a fine grain so `stop()` never waits out a
/// full interval.
pub(crate) fn compaction_loop(shared: &Arc<Shared>, interval: Duration) {
    let tick = Duration::from_millis(25).min(interval);
    let mut since_pass = Duration::ZERO;
    while !shared.stopping.load(Ordering::SeqCst) {
        std::thread::sleep(tick);
        since_pass += tick;
        if since_pass >= interval {
            since_pass = Duration::ZERO;
            let _ = compaction_pass(shared);
        }
    }
}
