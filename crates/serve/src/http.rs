//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! The sandbox has no HTTP dependency, and the service needs only the
//! subset a closed-loop client exercises: one request per connection
//! (`Connection: close`), `Content-Length` bodies, no chunked encoding,
//! no continuation lines. Both the server and the bundled [`client`]
//! speak exactly this subset, so they are tested against each other.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Largest accepted header block (request line + headers).
const MAX_HEAD: usize = 64 * 1024;
/// Largest accepted request body (a serialized spec).
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path only; queries are not split off).
    pub path: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One HTTP response, as built by handlers or parsed by the client.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased on parse.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a body and content type.
    pub fn new(status: u16, content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status,
            headers: vec![("content-type".into(), content_type.into())],
            body,
        }
    }

    /// A JSON response from a serializable value.
    pub fn json(status: u16, value: &impl serde::Serialize) -> Response {
        let body = serde_json::to_vec(value).unwrap_or_default();
        Response::new(status, "application/json", body)
    }

    /// Adds a header (chained).
    #[must_use]
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_ascii_lowercase(), value.into()));
        self
    }

    /// First value of a header, by lowercase name.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Standard reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads the header block (through the blank line), bounded by
/// [`MAX_HEAD`].
fn read_head(reader: &mut impl BufRead) -> io::Result<Vec<String>> {
    let mut lines = Vec::new();
    let mut total = 0usize;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-header",
            ));
        }
        total += n;
        if total > MAX_HEAD {
            return Err(bad("header block too large"));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            return Ok(lines);
        }
        lines.push(line.to_string());
    }
}

/// Splits header lines (after the first) into lowercase-name pairs.
fn parse_headers(lines: &[String]) -> io::Result<Vec<(String, String)>> {
    lines
        .iter()
        .map(|line| {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad("malformed header"))?;
            Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect()
}

/// Reads the body per `Content-Length` (absent means empty), bounded by
/// [`MAX_BODY`].
fn read_body(reader: &mut impl BufRead, headers: &[(String, String)]) -> io::Result<Vec<u8>> {
    let len = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>().map_err(|_| bad("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if len > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Reads one request from the stream.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Request> {
    let lines = read_head(reader)?;
    let first = lines.first().ok_or_else(|| bad("empty request"))?;
    let mut parts = first.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("missing method"))?;
    let path = parts.next().ok_or_else(|| bad("missing path"))?;
    let headers = parse_headers(&lines[1..])?;
    let body = read_body(reader, &headers)?;
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// Writes a response, adding `Content-Length` and `Connection: close`.
pub fn write_response(stream: &mut impl Write, resp: &Response) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\n",
        resp.status,
        reason(resp.status)
    )?;
    for (name, value) in &resp.headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "content-length: {}\r\n", resp.body.len())?;
    write!(stream, "connection: close\r\n\r\n")?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// A blocking one-request client for the same HTTP subset the server
/// speaks. Used by the integration tests, the serving benchmark, and
/// anyone driving a `v2v serve` daemon from Rust.
pub mod client {
    use super::*;
    use std::time::Duration;

    /// Sends one request and reads the full response.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<Response> {
        exchange(TcpStream::connect(addr)?, addr, method, path, body)
    }

    /// [`request`] with a deadline: the connect, every write, and every
    /// read each time out after `timeout`, so a dead or wedged peer
    /// costs a bounded wait instead of hanging the caller. Used by the
    /// coordinator to dispatch segments to workers.
    pub fn request_timeout(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
        timeout: Duration,
    ) -> io::Result<Response> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        exchange(stream, addr, method, path, body)
    }

    fn exchange(
        mut stream: TcpStream,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<Response> {
        write!(stream, "{method} {path} HTTP/1.1\r\n")?;
        write!(stream, "host: {addr}\r\n")?;
        write!(stream, "content-length: {}\r\n", body.len())?;
        write!(stream, "connection: close\r\n\r\n")?;
        stream.write_all(body)?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let lines = read_head(&mut reader)?;
        let first = lines.first().ok_or_else(|| bad("empty response"))?;
        let status = first
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let headers = parse_headers(&lines[1..])?;
        let body = match headers.iter().find(|(n, _)| n == "content-length") {
            Some(_) => read_body(&mut reader, &headers)?,
            None => {
                let mut buf = Vec::new();
                reader.read_to_end(&mut buf)?;
                buf
            }
        };
        Ok(Response {
            status,
            headers,
            body,
        })
    }

    /// `POST /query` with a serialized spec; returns the raw response.
    pub fn post_query(addr: SocketAddr, spec_json: &[u8]) -> io::Result<Response> {
        request(addr, "POST", "/query", spec_json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_request_with_body() {
        let raw = b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(read_request(&mut Cursor::new(raw.as_bytes())).is_err());
    }

    #[test]
    fn response_round_trips_headers() {
        let resp = Response::new(200, "application/json", b"{}".to_vec())
            .header("x-v2v-stats", "{\"a\":1}");
        let mut out = Vec::new();
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("x-v2v-stats: {\"a\":1}\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn truncated_header_is_an_error() {
        let raw = b"GET / HTTP/1.1\r\nHost: x";
        assert!(read_request(&mut Cursor::new(&raw[..])).is_err());
    }
}
