//! Minimal HTTP/1.1 framing over `std::net::TcpStream`.
//!
//! The sandbox has no HTTP dependency, and the service needs only the
//! subset a closed-loop client exercises: one request per connection
//! (`Connection: close`), `Content-Length` bodies, no chunked encoding,
//! no continuation lines. Both the server and the bundled [`client`]
//! speak exactly this subset, so they are tested against each other.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Largest accepted header block (request line + headers).
const MAX_HEAD: usize = 64 * 1024;
/// Largest accepted request body (a serialized spec).
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path only; queries are not split off).
    pub path: String,
    /// Header `(name, value)` pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One HTTP response, as built by handlers or parsed by the client.
#[derive(Debug)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Header `(name, value)` pairs, names lowercased on parse.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a body and content type.
    pub fn new(status: u16, content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status,
            headers: vec![("content-type".into(), content_type.into())],
            body,
        }
    }

    /// A JSON response from a serializable value.
    pub fn json(status: u16, value: &impl serde::Serialize) -> Response {
        let body = serde_json::to_vec(value).unwrap_or_default();
        Response::new(status, "application/json", body)
    }

    /// Adds a header (chained).
    #[must_use]
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.push((name.to_ascii_lowercase(), value.into()));
        self
    }

    /// First value of a header, by lowercase name.
    pub fn header_value(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Standard reason phrase for the status codes the service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Reads the header block (through the blank line), bounded by
/// [`MAX_HEAD`].
fn read_head(reader: &mut impl BufRead) -> io::Result<Vec<String>> {
    let mut lines = Vec::new();
    let mut total = 0usize;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-header",
            ));
        }
        total += n;
        if total > MAX_HEAD {
            return Err(bad("header block too large"));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            return Ok(lines);
        }
        lines.push(line.to_string());
    }
}

/// Splits header lines (after the first) into lowercase-name pairs.
fn parse_headers(lines: &[String]) -> io::Result<Vec<(String, String)>> {
    lines
        .iter()
        .map(|line| {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad("malformed header"))?;
            Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect()
}

/// Reads the body per `Content-Length` (absent means empty), bounded by
/// [`MAX_BODY`].
fn read_body(reader: &mut impl BufRead, headers: &[(String, String)]) -> io::Result<Vec<u8>> {
    let len = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| v.parse::<usize>().map_err(|_| bad("bad content-length")))
        .transpose()?
        .unwrap_or(0);
    if len > MAX_BODY {
        return Err(bad("body too large"));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(body)
}

/// Reads one request from the stream.
pub fn read_request(reader: &mut impl BufRead) -> io::Result<Request> {
    let lines = read_head(reader)?;
    let first = lines.first().ok_or_else(|| bad("empty request"))?;
    let mut parts = first.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("missing method"))?;
    let path = parts.next().ok_or_else(|| bad("missing path"))?;
    let headers = parse_headers(&lines[1..])?;
    let body = read_body(reader, &headers)?;
    Ok(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// Writes a response, adding `Content-Length` and `Connection: close`.
pub fn write_response(stream: &mut impl Write, resp: &Response) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\n",
        resp.status,
        reason(resp.status)
    )?;
    for (name, value) in &resp.headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "content-length: {}\r\n", resp.body.len())?;
    write!(stream, "connection: close\r\n\r\n")?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// A blocking one-request client for the same HTTP subset the server
/// speaks. Used by the integration tests, the serving benchmark, and
/// anyone driving a `v2v serve` daemon from Rust.
pub mod client {
    use super::*;
    use std::time::{Duration, Instant};

    /// Sends one request and reads the full response.
    pub fn request(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<Response> {
        exchange(TcpStream::connect(addr)?, addr, method, path, body)
    }

    /// [`request`] with a **wall-clock deadline** over the whole
    /// exchange: connect, writes, and reads together must finish within
    /// `timeout`. Used by the coordinator to dispatch segments to
    /// workers.
    ///
    /// This is deliberately not a per-read socket timeout: a socket
    /// timeout bounds each *individual* read, so a peer trickling one
    /// byte per interval keeps resetting the clock and a nominally
    /// 1-second request can hang for minutes. [`DeadlineStream`]
    /// re-arms the socket timeout with the *remaining* budget before
    /// every operation instead, so the total wait is bounded.
    pub fn request_timeout(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
        timeout: Duration,
    ) -> io::Result<Response> {
        let deadline = Instant::now() + timeout;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        exchange(
            DeadlineStream {
                inner: stream,
                deadline,
            },
            addr,
            method,
            path,
            body,
        )
    }

    /// A [`TcpStream`] whose every read and write is budgeted against
    /// one absolute deadline. Once the deadline passes, all operations
    /// fail with [`io::ErrorKind::TimedOut`] immediately.
    pub struct DeadlineStream {
        inner: TcpStream,
        deadline: Instant,
    }

    impl DeadlineStream {
        /// Arms the socket timeout with the remaining budget, or fails
        /// if the deadline has already passed.
        fn arm(&self, read: bool) -> io::Result<()> {
            let remaining = self.deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "request deadline exceeded",
                ));
            }
            if read {
                self.inner.set_read_timeout(Some(remaining))
            } else {
                self.inner.set_write_timeout(Some(remaining))
            }
        }
    }

    impl Read for DeadlineStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.arm(true)?;
            self.inner.read(buf)
        }
    }

    impl Write for DeadlineStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.arm(false)?;
            self.inner.write(buf)
        }

        fn flush(&mut self) -> io::Result<()> {
            self.inner.flush()
        }
    }

    fn exchange(
        mut stream: impl Read + Write,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<Response> {
        write!(stream, "{method} {path} HTTP/1.1\r\n")?;
        write!(stream, "host: {addr}\r\n")?;
        write!(stream, "content-length: {}\r\n", body.len())?;
        write!(stream, "connection: close\r\n\r\n")?;
        stream.write_all(body)?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let lines = read_head(&mut reader)?;
        let first = lines.first().ok_or_else(|| bad("empty response"))?;
        let status = first
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let headers = parse_headers(&lines[1..])?;
        let body = match headers.iter().find(|(n, _)| n == "content-length") {
            Some(_) => read_body(&mut reader, &headers)?,
            None => {
                let mut buf = Vec::new();
                reader.read_to_end(&mut buf)?;
                buf
            }
        };
        Ok(Response {
            status,
            headers,
            body,
        })
    }

    /// `POST /query` with a serialized spec; returns the raw response.
    pub fn post_query(addr: SocketAddr, spec_json: &[u8]) -> io::Result<Response> {
        request(addr, "POST", "/query", spec_json)
    }

    /// The head of a long-lived response whose body streams until the
    /// server closes the connection (no `Content-Length`). Returned by
    /// [`open_stream`]; the `reader` yields body bytes as they arrive.
    pub struct StreamingResponse {
        /// Status code.
        pub status: u16,
        /// Header `(name, value)` pairs, names lowercased.
        pub headers: Vec<(String, String)>,
        /// The open connection, positioned at the first body byte.
        pub reader: BufReader<TcpStream>,
    }

    impl StreamingResponse {
        /// First value of a header, by lowercase name.
        pub fn header_value(&self, name: &str) -> Option<&str> {
            self.headers
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.as_str())
        }
    }

    /// Sends one request and returns after reading only the response
    /// *head*, leaving the connection open so the caller can consume a
    /// body of unbounded length as the server produces it. This is how
    /// `/subscribe` clients receive delta frames.
    pub fn open_stream(
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<StreamingResponse> {
        let mut stream = TcpStream::connect(addr)?;
        write!(stream, "{method} {path} HTTP/1.1\r\n")?;
        write!(stream, "host: {addr}\r\n")?;
        write!(stream, "content-length: {}\r\n", body.len())?;
        write!(stream, "connection: close\r\n\r\n")?;
        stream.write_all(body)?;
        stream.flush()?;
        let mut reader = BufReader::new(stream);
        let lines = read_head(&mut reader)?;
        let first = lines.first().ok_or_else(|| bad("empty response"))?;
        let status = first
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let headers = parse_headers(&lines[1..])?;
        Ok(StreamingResponse {
            status,
            headers,
            reader,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_request_with_body() {
        let raw = b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = read_request(&mut Cursor::new(&raw[..])).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/query");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_oversized_body_declaration() {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        assert!(read_request(&mut Cursor::new(raw.as_bytes())).is_err());
    }

    #[test]
    fn response_round_trips_headers() {
        let resp = Response::new(200, "application/json", b"{}".to_vec())
            .header("x-v2v-stats", "{\"a\":1}");
        let mut out = Vec::new();
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("x-v2v-stats: {\"a\":1}\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn truncated_header_is_an_error() {
        let raw = b"GET / HTTP/1.1\r\nHost: x";
        assert!(read_request(&mut Cursor::new(&raw[..])).is_err());
    }

    /// Regression: `request_timeout` must bound the *whole* exchange,
    /// not each read. A peer trickling one byte per interval — each
    /// read succeeding just inside a per-read socket timeout — used to
    /// stretch a 300 ms request to `timeout × body_len`.
    #[test]
    fn request_timeout_is_a_wall_clock_deadline() {
        use std::net::TcpListener;
        use std::time::{Duration, Instant};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let trickler = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            // Drain the request, then advertise a huge body and trickle
            // it a byte at a time, never pausing long enough for any
            // single read to hit a 300 ms socket timeout.
            let mut buf = [0u8; 4096];
            let _ = std::io::Read::read(&mut conn, &mut buf);
            let _ = conn.write_all(
                b"HTTP/1.1 200 OK\r\ncontent-type: text/plain\r\ncontent-length: 100000\r\n\r\n",
            );
            for _ in 0..200 {
                if conn.write_all(b"x").is_err() {
                    return; // client gave up — the behavior under test
                }
                let _ = conn.flush();
                std::thread::sleep(Duration::from_millis(50));
            }
        });

        let started = Instant::now();
        let result =
            super::client::request_timeout(addr, "GET", "/slow", b"", Duration::from_millis(300));
        let elapsed = started.elapsed();
        assert!(result.is_err(), "a trickling peer must not yield Ok");
        assert!(
            elapsed < Duration::from_secs(2),
            "deadline must bound the whole exchange, took {elapsed:?}"
        );
        drop(trickler); // detach: it exits on its next failed write
    }
}
