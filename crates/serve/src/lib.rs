#![warn(missing_docs)]

//! `v2v-serve` — a concurrent query service over the V2V engine.
//!
//! The paper frames V2V as an interactive system: analysts issue video
//! queries and expect playable results in seconds. This crate provides
//! the serving layer that makes repeated and overlapping queries cheap:
//! a std-only HTTP/1.1 daemon (the sandbox has no HTTP dependency; see
//! [`http`] for the subset spoken) that runs each `POST /query` through
//! the traced engine, with
//!
//! * **admission control** — at most `max_concurrent` renders run at
//!   once; excess requests wait in a bounded FIFO and are rejected with
//!   `429 Too Many Requests` + `retry-after` when the queue is full;
//!   the time a request spends waiting for admission is reported as
//!   `queue_wait_ns` in its `x-v2v-stats` header, separate from render
//!   time;
//! * **multi-query work sharing** — three tiers above per-request
//!   execution (see [`share`]): a request whose canonical plan
//!   fingerprint matches a render already in flight coalesces into it
//!   via the [`InflightRegistry`] and receives
//!   the same bytes (`inflight_hits` in its stats); concurrent
//!   *overlapping* queries share a daemon-wide
//!   [`FragmentFlight`], so each common
//!   segment renders exactly once (`shared_segment_hits`); and a
//!   byte-budgeted in-memory fragment tier
//!   ([`MemTier`](v2v_exec::MemTier)) on the render cache answers hot
//!   repeats without touching disk (`mem_hits`);
//! * **a shared persistent render cache** — all workers share one
//!   [`RenderCache`], so a repeated query is answered by splicing
//!   cached container bytes (zero decode) and an overlapping query
//!   reuses every segment it shares with earlier ones (see
//!   `v2v_plan::fingerprint` for key derivation);
//! * **observability** — `GET /metrics` serves a
//!   [`MetricsSnapshot`](v2v_obs::MetricsSnapshot) aggregated across
//!   requests, `GET /status` the live admission, sharing, and cache
//!   picture.
//!
//! Routes:
//!
//! | route | body | response |
//! |---|---|---|
//! | `POST /query` | spec JSON | `.svc` container bytes; `x-v2v-stats` header carries the run's [`ExecStats`] JSON |
//! | `POST /subscribe` | spec JSON | long-lived stream of delta records (see [`sub`]) |
//! | `POST /append/<name>` | sealed `.svc` of new GOPs | appends to the named live catalog video |
//! | `POST /append-data/<name>` | `[{"t": ..., "value": ...}]` | appends entries to the named data array |
//! | `GET /status` | — | admission + cache state JSON (plus a `store` block when a variant store is configured) |
//! | `GET /metrics` | — | metrics snapshot JSON |
//! | `GET /store` | — | variant manifests + observed access profiles (see [`store_svc`]) |
//! | `POST /store/materialize/<name>/<kind>` | — | transcode + attach one variant now |
//! | `POST /store/drop/<name>/<kind>` | — | drop one variant |
//! | `POST /store/pin/<name>/<kind>` | `{"pinned": bool}` | pin/unpin against compaction |
//! | `POST /store/compact` | — | run one compaction pass now |
//!
//! **Live sources and subscriptions.** The catalog is mutable at
//! runtime: `POST /append/<name>` splices freshly-encoded GOPs onto a
//! bound video (`/append-data/` does the same for detection arrays) and
//! bumps a catalog version every subscription watches. A `/subscribe`
//! request registers a spec; the daemon clamps its time domain to the
//! currently *servable* prefix ([`v2v_spec::servable_domain`]),
//! renders it through the normal admission/sharing/cluster path, and
//! pushes the changed output suffix as a delta record. On every
//! append, only segments whose inputs actually changed re-render — the
//! prefix-incremental source digests keep clean segment keys stable,
//! so the render cache answers the rest (`sub.*` and `exec.cache.*`
//! metrics make the dirty-only behavior observable).
//!
//! Query errors map the [`ErrorKind`] taxonomy onto status codes:
//! `invalid_request`/`plan` → 400, `not_found` → 404, `corrupt_data` →
//! 422, everything else → 500; the body is a structured
//! `{"error": {kind, message}}` object. 429 rejections additionally
//! carry the live queue picture (`queue_depth`, `queue_limit`,
//! `retry_after_secs`) in the error body.

pub mod cluster;
pub mod http;
pub mod share;
pub mod store_svc;
pub mod sub;

use cluster::{PoolRemote, WorkerPool};
use http::{read_request, write_response, Request, Response};
use share::{InflightRegistry, Join, LeaderGuard, QueryOutcome, SharedError};
use std::collections::BTreeMap;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use v2v_core::{EngineConfig, ErrorKind, PreparedRun, V2vEngine, V2vError};
use v2v_data::Database;
use v2v_exec::{Catalog, ExecStats, FragmentFlight, RenderCache};
use v2v_obs::{Counter, Gauge, Histogram, Registry};
use v2v_spec::Spec;
use v2v_store::{profile_plan, AccessProfile, SourceStore};

/// Which side of the scale-out protocol this daemon plays.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeRole {
    /// The coordinator: accepts `POST /query`, carves admitted plans at
    /// segment boundaries, and (when [`ServeConfig::workers`] is
    /// non-empty) dispatches keyed segments to workers.
    #[default]
    Frontend,
    /// A worker: the slim role exposing only `POST /render-segment`,
    /// `GET /fragment/<key>`, `GET /status`, and `GET /metrics`.
    /// Workers never dispatch further — fan-out is one level deep.
    Worker,
}

impl ServeRole {
    fn name(self) -> &'static str {
        match self {
            ServeRole::Frontend => "frontend",
            ServeRole::Worker => "worker",
        }
    }
}

/// Serving configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Renders admitted simultaneously (minimum 1).
    pub max_concurrent: usize,
    /// Requests allowed to wait for admission beyond the running ones;
    /// requests past the queue are rejected with 429.
    pub queue_depth: usize,
    /// `retry-after` seconds advertised on 429 responses.
    pub retry_after_secs: u64,
    /// Coalesce identical in-flight requests and share overlapping
    /// segments between concurrent renders (on by default). Turning
    /// this off makes every request execute independently — the
    /// baseline arm benchmarks compare against.
    pub work_sharing: bool,
    /// Coordinator or worker (see [`ServeRole`]).
    pub role: ServeRole,
    /// Worker addresses (`host:port`) this coordinator dispatches
    /// segments to. Empty means everything renders locally. Ignored in
    /// the worker role.
    pub workers: Vec<String>,
    /// Engine configuration every job runs under. Set
    /// `engine.render_cache` to share a persistent cache across jobs.
    pub engine: EngineConfig,
    /// Adaptive physical storage: when set, the daemon opens a
    /// [`SourceStore`] at the given root, attaches every valid variant
    /// to the catalog at startup, profiles each prepared query, and
    /// compacts variants under the byte budget (see [`store_svc`]).
    pub store: Option<StoreServeConfig>,
}

/// Variant-store settings for a serving daemon.
#[derive(Clone, Debug)]
pub struct StoreServeConfig {
    /// Store root directory (`<root>/<source>/<kind>.svc` + manifests).
    pub root: PathBuf,
    /// Total bytes of managed variants the compactor may hold;
    /// `u64::MAX` disables eviction.
    pub budget_bytes: u64,
    /// Background compaction cadence; `Duration::ZERO` disables the
    /// background thread (passes still run via `POST /store/compact`).
    pub compact_interval: Duration,
}

impl StoreServeConfig {
    /// A store at `root` with an unbounded budget and no background
    /// compaction thread.
    pub fn at(root: impl Into<PathBuf>) -> StoreServeConfig {
        StoreServeConfig {
            root: root.into(),
            budget_bytes: u64::MAX,
            compact_interval: Duration::ZERO,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_concurrent: 2,
            queue_depth: 16,
            retry_after_secs: 1,
            work_sharing: true,
            role: ServeRole::Frontend,
            workers: Vec::new(),
            engine: EngineConfig::default(),
            store: None,
        }
    }
}

/// Admission gate: a counting semaphore with a bounded wait queue.
struct JobGate {
    max: usize,
    depth: usize,
    state: Mutex<GateState>,
    freed: Condvar,
}

#[derive(Default)]
struct GateState {
    active: usize,
    queued: usize,
}

impl JobGate {
    fn new(max: usize, depth: usize) -> JobGate {
        JobGate {
            max: max.max(1),
            depth,
            state: Mutex::new(GateState::default()),
            freed: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, GateState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Blocks until admitted; `false` means the queue was full and the
    /// request must be rejected.
    fn enter(&self) -> bool {
        let mut st = self.lock();
        if st.active < self.max {
            st.active += 1;
            return true;
        }
        if st.queued >= self.depth {
            return false;
        }
        st.queued += 1;
        while st.active >= self.max {
            st = self
                .freed
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        st.queued -= 1;
        st.active += 1;
        true
    }

    fn leave(&self) {
        let mut st = self.lock();
        st.active = st.active.saturating_sub(1);
        drop(st);
        self.freed.notify_one();
    }

    fn snapshot(&self) -> (usize, usize) {
        let st = self.lock();
        (st.active, st.queued)
    }
}

/// Metric handles resolved once at startup. `Registry` lookups take a
/// map lock per call; on the warm path at high client counts those
/// lookups (a dozen per request) serialized otherwise-independent
/// requests, so the hot counters are resolved here and each update is
/// a single uncontended atomic add.
struct Metrics {
    requests: Arc<Counter>,
    jobs_done: Arc<Counter>,
    jobs_failed: Arc<Counter>,
    jobs_rejected: Arc<Counter>,
    inflight_hits: Arc<Counter>,
    segments_rendered: Arc<Counter>,
    active_jobs: Arc<Gauge>,
    job_wall_ns: Arc<Histogram>,
    queue_wait_ns: Arc<Histogram>,
    sub_active: Arc<Gauge>,
    sub_deltas: Arc<Counter>,
    sub_frames_pushed: Arc<Counter>,
    sub_renders: Arc<Counter>,
    sub_appends: Arc<Counter>,
    store_smart_cut: Arc<Counter>,
    store_scan: Arc<Counter>,
    store_preview: Arc<Counter>,
    store_materializations: Arc<Counter>,
    store_drops: Arc<Counter>,
    exec: ExecMetrics,
}

/// Pre-resolved `exec.*` counters mirrored from each run's stats.
struct ExecMetrics {
    frames_decoded: Arc<Counter>,
    frames_encoded: Arc<Counter>,
    bytes_decoded: Arc<Counter>,
    packets_copied: Arc<Counter>,
    result_hits: Arc<Counter>,
    segment_hits: Arc<Counter>,
    evictions: Arc<Counter>,
    bytes_reused: Arc<Counter>,
    inflight_hits: Arc<Counter>,
    shared_segment_hits: Arc<Counter>,
    mem_hits: Arc<Counter>,
    remote_segments: Arc<Counter>,
}

impl Metrics {
    fn new(registry: &Registry) -> Metrics {
        Metrics {
            requests: registry.counter("serve.requests"),
            jobs_done: registry.counter("serve.jobs_done"),
            jobs_failed: registry.counter("serve.jobs_failed"),
            jobs_rejected: registry.counter("serve.jobs_rejected"),
            inflight_hits: registry.counter("serve.inflight_hits"),
            segments_rendered: registry.counter("serve.segments_rendered"),
            active_jobs: registry.gauge("serve.active_jobs"),
            job_wall_ns: registry.histogram("serve.job_wall_ns"),
            queue_wait_ns: registry.histogram("serve.queue_wait_ns"),
            sub_active: registry.gauge("sub.active"),
            sub_deltas: registry.counter("sub.deltas"),
            sub_frames_pushed: registry.counter("sub.frames_pushed"),
            sub_renders: registry.counter("sub.renders"),
            sub_appends: registry.counter("sub.appends"),
            store_smart_cut: registry.counter("store.reads.smart_cut"),
            store_scan: registry.counter("store.reads.scan"),
            store_preview: registry.counter("store.reads.preview"),
            store_materializations: registry.counter("store.materializations"),
            store_drops: registry.counter("store.drops"),
            exec: ExecMetrics {
                frames_decoded: registry.counter("exec.frames_decoded"),
                frames_encoded: registry.counter("exec.frames_encoded"),
                bytes_decoded: registry.counter("exec.bytes_decoded"),
                packets_copied: registry.counter("exec.packets_copied"),
                result_hits: registry.counter("exec.cache.result_hits"),
                segment_hits: registry.counter("exec.cache.segment_hits"),
                evictions: registry.counter("exec.cache.evictions"),
                bytes_reused: registry.counter("exec.cache.bytes_reused"),
                inflight_hits: registry.counter("exec.cache.inflight_hits"),
                shared_segment_hits: registry.counter("exec.cache.shared_segment_hits"),
                mem_hits: registry.counter("exec.cache.mem_hits"),
                remote_segments: registry.counter("exec.remote.segments"),
            },
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    /// The live source catalog. `POST /append*` routes take the write
    /// lock for the duration of one splice; queries clone a snapshot
    /// under the read lock (cheap: streams are `Arc`-backed).
    catalog: RwLock<Catalog>,
    /// Bumped on every successful append; subscriptions sleep on
    /// [`Shared::catalog_grew`] until it moves.
    catalog_version: Mutex<u64>,
    catalog_grew: Condvar,
    /// Set when the server is stopping; wakes subscription waits.
    stopping: AtomicBool,
    database: Database,
    config: ServeConfig,
    gate: JobGate,
    registry: Registry,
    metrics: Metrics,
    /// Whole-response single-flight by plan fingerprint.
    inflight: InflightRegistry,
    /// Segment-level publish/subscribe shared by every engine this
    /// daemon builds, so overlapping renders produce each common
    /// segment exactly once.
    flight: Arc<FragmentFlight>,
    /// The worker pool, present on a frontend with configured workers.
    pool: Option<Arc<WorkerPool>>,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    jobs_rejected: AtomicU64,
    queue_waits: AtomicU64,
    queue_wait_total_ns: AtomicU64,
    queue_wait_max_ns: AtomicU64,
    subs_active: AtomicU64,
    subs_deltas: AtomicU64,
    subs_frames_pushed: AtomicU64,
    subs_renders: AtomicU64,
    appends: AtomicU64,
    /// The variant store, when [`ServeConfig::store`] is configured.
    store: Option<Arc<SourceStore>>,
    /// Accumulated access profiles since startup, by source name — the
    /// compactor's demand signal.
    profiles: Mutex<BTreeMap<String, AccessProfile>>,
    store_materializations: AtomicU64,
    store_drops: AtomicU64,
    store_compactions: AtomicU64,
}

impl Shared {
    fn catalog_snapshot(&self) -> Catalog {
        self.catalog
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }

    fn version(&self) -> u64 {
        *self
            .catalog_version
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn bump_version(&self) {
        let mut v = self
            .catalog_version
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *v += 1;
        drop(v);
        self.catalog_grew.notify_all();
    }
}

/// The query service: holds the sources and configuration, then
/// [`start`](V2vServer::start)s the daemon.
pub struct V2vServer {
    catalog: Catalog,
    database: Database,
    config: ServeConfig,
}

impl V2vServer {
    /// A server over a catalog with default configuration.
    pub fn new(catalog: Catalog) -> V2vServer {
        V2vServer {
            catalog,
            database: Database::new(),
            config: ServeConfig::default(),
        }
    }

    /// Attaches a relational database for `sql:` locators.
    #[must_use]
    pub fn with_database(mut self, database: Database) -> V2vServer {
        self.database = database;
        self
    }

    /// Overrides the configuration.
    #[must_use]
    pub fn with_config(mut self, config: ServeConfig) -> V2vServer {
        self.config = config;
        self
    }

    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop on a background thread.
    pub fn start(self, addr: &str) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let gate = JobGate::new(self.config.max_concurrent, self.config.queue_depth);
        let pool = match (self.config.role, self.config.workers.is_empty()) {
            (ServeRole::Frontend, false) => Some(Arc::new(WorkerPool::new(&self.config.workers)?)),
            _ => None,
        };
        let registry = Registry::new();
        let metrics = Metrics::new(&registry);
        // Open the variant store and attach every valid variant before
        // the catalog becomes shared: startup recovery is just a
        // re-attach, and digest-mismatched variants are skipped.
        let mut catalog = self.catalog;
        let store = match &self.config.store {
            Some(cfg) => {
                let store = SourceStore::open(&cfg.root)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                store
                    .attach(&mut catalog)
                    .map_err(|e| std::io::Error::other(e.to_string()))?;
                Some(Arc::new(store))
            }
            None => None,
        };
        let shared = Arc::new(Shared {
            catalog: RwLock::new(catalog),
            catalog_version: Mutex::new(0),
            catalog_grew: Condvar::new(),
            stopping: AtomicBool::new(false),
            database: self.database,
            config: self.config,
            gate,
            registry,
            metrics,
            inflight: InflightRegistry::new(),
            flight: Arc::new(FragmentFlight::new()),
            pool,
            jobs_done: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            queue_waits: AtomicU64::new(0),
            queue_wait_total_ns: AtomicU64::new(0),
            queue_wait_max_ns: AtomicU64::new(0),
            subs_active: AtomicU64::new(0),
            subs_deltas: AtomicU64::new(0),
            subs_frames_pushed: AtomicU64::new(0),
            subs_renders: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            store,
            profiles: Mutex::new(BTreeMap::new()),
            store_materializations: AtomicU64::new(0),
            store_drops: AtomicU64::new(0),
            store_compactions: AtomicU64::new(0),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept_shared = Arc::clone(&shared);
        let accept_stop = Arc::clone(&stop);
        let join = std::thread::spawn(move || {
            accept_loop(&listener, &accept_shared, &accept_stop);
        });
        let compact_interval = shared
            .config
            .store
            .as_ref()
            .map(|c| c.compact_interval)
            .unwrap_or(Duration::ZERO);
        let compact_join = if shared.store.is_some() && compact_interval > Duration::ZERO {
            let compact_shared = Arc::clone(&shared);
            Some(std::thread::spawn(move || {
                store_svc::compaction_loop(&compact_shared, compact_interval);
            }))
        } else {
            None
        };
        Ok(ServerHandle {
            addr: local,
            stop,
            join: Some(join),
            compact_join,
            shared,
        })
    }
}

/// A running daemon. Dropping (or [`stop`](ServerHandle::stop)ping) the
/// handle shuts the accept loop down; in-flight connections finish on
/// their own threads.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
    compact_join: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Completed / failed / rejected job counts so far.
    pub fn job_counts(&self) -> (u64, u64, u64) {
        (
            self.shared.jobs_done.load(Ordering::Relaxed),
            self.shared.jobs_failed.load(Ordering::Relaxed),
            self.shared.jobs_rejected.load(Ordering::Relaxed),
        )
    }

    /// Stops the accept loop and joins it. Subscription threads see the
    /// stop through `Shared::stopping` and close their streams.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.catalog_grew.notify_all();
        // Unblock the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
        if let Some(join) = self.compact_join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, stop: &Arc<AtomicBool>) {
    loop {
        let conn = listener.accept();
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok((stream, _)) = conn else { continue };
        let shared = Arc::clone(shared);
        std::thread::spawn(move || {
            handle_connection(stream, &shared);
        });
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let resp = match read_request(&mut reader) {
        Ok(req) => {
            // Subscriptions own their connection: the response body is
            // open-ended, so they bypass the one-shot write below.
            if req.method == "POST"
                && req.path == "/subscribe"
                && shared.config.role != ServeRole::Worker
            {
                shared.metrics.requests.inc();
                handle_subscribe(&req, reader, writer, shared);
                return;
            }
            route(&req, shared)
        }
        Err(e) => error_response(400, "invalid_request", &format!("bad request: {e}")),
    };
    let _ = write_response(&mut writer, &resp);
}

fn route(req: &Request, shared: &Shared) -> Response {
    shared.metrics.requests.inc();
    let worker = shared.config.role == ServeRole::Worker;
    match (req.method.as_str(), req.path.as_str()) {
        // The worker role is slim by contract: it renders segments for
        // coordinators, it does not accept top-level queries.
        ("POST", "/query") if !worker => handle_query(req, shared),
        ("POST", "/render-segment") => handle_render_segment(req, shared),
        ("POST", path) if path.strip_prefix("/append/").is_some() && !worker => {
            handle_append(path, req, shared)
        }
        ("POST", path) if path.strip_prefix("/append-data/").is_some() && !worker => {
            handle_append_data(path, req, shared)
        }
        ("GET", path) if path.strip_prefix("/fragment/").is_some() => handle_fragment(path, shared),
        ("GET", "/store") if !worker => store_svc::handle_store_ls(shared),
        ("POST", "/store/compact") if !worker => store_svc::handle_store_compact(shared),
        ("POST", path) if path.strip_prefix("/store/").is_some() && !worker => {
            store_svc::handle_store_admin(path, req, shared)
        }
        ("GET", "/status") => handle_status(shared),
        ("GET", "/metrics") => Response::json(200, &shared.registry.snapshot()),
        ("GET", _) | ("POST", _) => {
            error_response(404, "not_found", &format!("no route {}", req.path))
        }
        (m, _) => error_response(405, "invalid_request", &format!("method {m} not allowed")),
    }
}

/// `POST /append/<name>`: splices a sealed `.svc` of freshly-encoded
/// GOPs onto the named catalog video (or binds it fresh), then wakes
/// every subscription. The appended stream must continue the existing
/// grid — same codec parameters, first instant exactly one frame after
/// the current last — and must start at a keyframe, the same invariants
/// [`v2v_container::LiveWriter`] enforces on disk.
fn handle_append(path: &str, req: &Request, shared: &Shared) -> Response {
    let name = path.strip_prefix("/append/").unwrap_or_default();
    if name.is_empty() {
        return error_response(
            400,
            "invalid_request",
            "missing video name in /append/<name>",
        );
    }
    let new = match v2v_container::svc_from_bytes(&req.body) {
        Ok(s) => s,
        Err(e) => return error_response(422, "corrupt_data", &format!("append container: {e}")),
    };
    if new.is_empty() {
        return error_response(400, "invalid_request", "appended container holds no frames");
    }
    let mut catalog = shared
        .catalog
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let total = match catalog.video(name).cloned() {
        Some(existing) => {
            // `concat` restamps whatever it is given; the continuity
            // check is ours. An append stamped anywhere but one frame
            // past the current end is a client bug (replay, reorder),
            // not a growth event.
            let expected = existing.start()
                + existing.frame_dur() * v2v_time::Rational::from_int(existing.len() as i64);
            if new.start() != expected {
                return error_response(
                    422,
                    "corrupt_data",
                    &format!(
                        "append starts at {} but '{name}' continues at {expected}",
                        new.start()
                    ),
                );
            }
            let joined = match v2v_container::VideoStream::concat(&[existing.as_ref(), &new]) {
                Ok(j) => j,
                Err(e) => {
                    return error_response(
                        422,
                        "corrupt_data",
                        &format!("append does not continue '{name}': {e}"),
                    )
                }
            };
            let n = joined.len();
            catalog.add_video(name, joined);
            n
        }
        None => {
            let n = new.len();
            catalog.add_video(name, new);
            n
        }
    };
    drop(catalog);
    shared.appends.fetch_add(1, Ordering::Relaxed);
    shared.metrics.sub_appends.inc();
    shared.bump_version();
    Response::json(
        200,
        &serde_json::json!({"video": name, "frames": total, "version": shared.version()}),
    )
}

/// `POST /append-data/<name>`: appends `[{"t": <sec|[n,d]>, "value":
/// ...}]` entries to the named detection array and wakes
/// subscriptions. Values use the annotation conventions
/// ([`v2v_data::Value::from_json`]).
fn handle_append_data(path: &str, req: &Request, shared: &Shared) -> Response {
    let name = path.strip_prefix("/append-data/").unwrap_or_default();
    if name.is_empty() {
        return error_response(
            400,
            "invalid_request",
            "missing array name in /append-data/<name>",
        );
    }
    let entries: Vec<serde_json::Value> = match serde_json::from_slice(&req.body) {
        Ok(e) => e,
        Err(e) => return error_response(400, "invalid_request", &format!("append-data body: {e}")),
    };
    let mut parsed = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let t = entry.get("t").and_then(parse_instant);
        let Some(t) = t else {
            return error_response(
                400,
                "invalid_request",
                &format!("entry {i}: 't' must be a number or [num, den]"),
            );
        };
        let Some(value) = entry.get("value") else {
            return error_response(
                400,
                "invalid_request",
                &format!("entry {i}: missing 'value'"),
            );
        };
        parsed.push((t, v2v_data::Value::from_json(value)));
    }
    let count = parsed.len();
    let mut catalog = shared
        .catalog
        .write()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let array = catalog.arrays_mut().entry(name.to_string()).or_default();
    for (t, v) in parsed {
        array.insert(t, v);
    }
    let total = array.len();
    drop(catalog);
    shared.appends.fetch_add(1, Ordering::Relaxed);
    shared.metrics.sub_appends.inc();
    shared.bump_version();
    Response::json(
        200,
        &serde_json::json!({"array": name, "appended": count, "entries": total}),
    )
}

/// Reads a JSON instant: a number of seconds or an exact `[num, den]`.
fn parse_instant(v: &serde_json::Value) -> Option<v2v_time::Rational> {
    if let Some(pair) = v.as_array().filter(|p| p.len() == 2) {
        let (n, d) = (pair[0].as_i64()?, pair[1].as_i64()?);
        return v2v_time::Rational::checked_new(n, d).ok();
    }
    v.as_i64().map(v2v_time::Rational::from_int)
}

/// A coordinator's request: render one keyed segment of the embedded
/// spec and return the fragment in wire framing.
#[derive(serde::Deserialize)]
struct RenderSegmentRequest {
    /// The full spec, verbatim from the coordinator's client.
    spec: serde_json::Value,
    /// Index of the segment to render in the prepared physical plan.
    seg_index: usize,
    /// Expected fragment key (hex), cross-checked against the plan the
    /// worker derives — a mismatch means coordinator and worker do not
    /// agree on the plan and the dispatch must not be trusted.
    key: String,
}

fn handle_render_segment(req: &Request, shared: &Shared) -> Response {
    let parsed: RenderSegmentRequest = match serde_json::from_slice(&req.body) {
        Ok(p) => p,
        Err(e) => {
            return error_response(400, "invalid_request", &format!("bad render request: {e}"))
        }
    };
    let Ok(key) = u64::from_str_radix(&parsed.key, 16) else {
        return error_response(400, "invalid_request", "key is not a hex u64");
    };
    let spec_bytes = match serde_json::to_vec(&parsed.spec) {
        Ok(b) => b,
        Err(e) => return error_response(400, "invalid_request", &format!("bad spec: {e}")),
    };
    let prepared = match prepare_query(&spec_bytes, shared) {
        Ok(p) => p,
        Err(e) => return error_response(status_for(e.kind()), e.kind().name(), &e.to_string()),
    };
    // The segment key is content-derived, so equality proves both sides
    // planned the same segment over the same sources.
    if prepared.run.segment_keys().get(parsed.seg_index).copied() != Some(Some(key)) {
        return error_response(
            422,
            "corrupt_data",
            &format!(
                "segment {} key mismatch: worker plan disagrees with coordinator",
                parsed.seg_index
            ),
        );
    }
    if !shared.gate.enter() {
        shared.metrics.jobs_rejected.inc();
        return overload_response(shared);
    }
    let started = Instant::now();
    let mut prepared = prepared;
    let result = prepared
        .engine
        .render_segment_fragment(&prepared.run, parsed.seg_index);
    shared.gate.leave();
    shared
        .metrics
        .job_wall_ns
        .record(started.elapsed().as_nanos() as u64);
    match result {
        Ok((frag, stats)) => {
            shared.metrics.segments_rendered.inc();
            record_exec_metrics(&shared.metrics.exec, &stats);
            match v2v_container::fragment_to_wire(key, &frag) {
                Ok(bytes) => Response::new(200, "application/octet-stream", bytes),
                Err(e) => error_response(500, "internal", &format!("fragment encode: {e}")),
            }
        }
        Err(e) => {
            let e = v2v_core::V2vError::from(e);
            error_response(status_for(e.kind()), e.kind().name(), &e.to_string())
        }
    }
}

/// Serves a cached fragment by key, in wire framing. Lets peers fetch
/// already-rendered segments without re-rendering; a miss is a plain
/// 404 (the caller renders or dispatches instead).
fn handle_fragment(path: &str, shared: &Shared) -> Response {
    let hex = path.strip_prefix("/fragment/").unwrap_or_default();
    let Ok(key) = u64::from_str_radix(hex, 16) else {
        return error_response(400, "invalid_request", "fragment key is not a hex u64");
    };
    let Some(cache) = shared.config.engine.render_cache.as_ref() else {
        return error_response(404, "not_found", "no render cache configured");
    };
    match cache.load_segment_tiered(key) {
        Some((frag, _tier)) => match v2v_container::fragment_to_wire(key, &frag) {
            Ok(bytes) => Response::new(200, "application/octet-stream", bytes),
            Err(e) => error_response(500, "internal", &format!("fragment encode: {e}")),
        },
        None => error_response(404, "not_found", &format!("no fragment {key:016x}")),
    }
}

/// `POST /subscribe`: registers a spec and pushes incremental results
/// over the long-lived connection.
///
/// Protocol: the body is spec JSON exactly as `POST /query` takes it.
/// On acceptance the response head carries
/// `content-type: application/x-v2v-delta` and **no** content-length;
/// the body is then a sequence of delta records (see [`sub`]) until
/// the client disconnects, the server stops, or a render fails.
///
/// Each refresh clamps the spec's time domain to the servable prefix
/// ([`v2v_spec::servable_domain`]) of a catalog snapshot, renders it
/// through the normal admission/sharing/cluster path (so unchanged
/// segments come out of the render cache), and pushes the suffix from
/// the output keyframe at-or-before the divergence. The cumulative
/// client-side stream after record `n` is byte-identical to a cold
/// `POST /query` of the same spec at the same source length.
fn handle_subscribe(
    req: &Request,
    mut reader: BufReader<TcpStream>,
    mut writer: TcpStream,
    shared: &Shared,
) {
    let text = match std::str::from_utf8(&req.body) {
        Ok(t) => t,
        Err(e) => {
            let resp = error_response(400, "invalid_request", &format!("spec not UTF-8: {e}"));
            let _ = write_response(&mut writer, &resp);
            return;
        }
    };
    let spec = match Spec::from_json(text) {
        Ok(s) => s,
        Err(e) => {
            let resp = error_response(400, "invalid_request", &format!("bad spec: {e}"));
            let _ = write_response(&mut writer, &resp);
            return;
        }
    };
    // Bind once up front so an unservable spec (missing file, bad SQL)
    // is a proper error response, not an empty stream.
    if let Err(e) = bound_infos(&spec, shared) {
        let resp = error_response(status_for(e.kind()), e.kind().name(), &e.to_string());
        let _ = write_response(&mut writer, &resp);
        return;
    }
    // Accepted: switch to the open-ended delta stream.
    if write!(
        writer,
        "HTTP/1.1 200 OK\r\ncontent-type: {}\r\nconnection: close\r\n\r\n",
        sub::DELTA_CONTENT_TYPE
    )
    .and_then(|()| writer.flush())
    .is_err()
    {
        return;
    }
    shared.subs_active.fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .sub_active
        .set(shared.subs_active.load(Ordering::Relaxed));
    subscription_loop(&spec, &mut reader, &mut writer, shared);
    shared.subs_active.fetch_sub(1, Ordering::Relaxed);
    shared
        .metrics
        .sub_active
        .set(shared.subs_active.load(Ordering::Relaxed));
}

/// Binds `spec`'s sources over a catalog snapshot and returns the
/// source availability the servable-domain clamp consumes.
fn bound_infos(
    spec: &Spec,
    shared: &Shared,
) -> Result<std::collections::BTreeMap<String, v2v_spec::SourceInfo>, V2vError> {
    let mut engine =
        V2vEngine::new(shared.catalog_snapshot()).with_database(shared.database.clone());
    engine.bind(spec).map_err(V2vError::from)?;
    Ok(engine.catalog().source_infos())
}

/// The watcher/render/push cycle of one subscription.
fn subscription_loop(
    spec: &Spec,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    shared: &Shared,
) {
    let mut cumulative: Option<v2v_container::VideoStream> = None;
    let mut last_domain: Option<v2v_time::TimeSet> = None;
    let mut seq = 0u64;
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            return;
        }
        let seen = shared.version();
        let infos = match bound_infos(spec, shared) {
            Ok(i) => i,
            Err(_) => return, // a source vanished mid-subscription
        };
        let clamped = v2v_spec::servable_domain(spec, &infos);
        let dirty =
            !clamped.is_empty() && last_domain.as_ref().map_or(true, |d| !d.set_eq(&clamped));
        if dirty {
            let mut clamped_spec = spec.clone();
            clamped_spec.time_domain = clamped.clone();
            let body = clamped_spec.to_json();
            let prepared = match prepare_query(body.as_bytes(), shared) {
                Ok(p) => p,
                Err(_) => return,
            };
            if !shared.gate.enter() {
                // Saturated: back off, leave last_domain unset so the
                // next cycle retries the same refresh.
                std::thread::sleep(Duration::from_secs(shared.config.retry_after_secs.max(1)));
                continue;
            }
            let mut prepared = prepared;
            let result = prepared.engine.run_prepared(prepared.run);
            shared.gate.leave();
            let (report, _trace) = match result {
                Ok(r) => r,
                Err(_) => return, // render failure terminates the stream
            };
            shared.subs_renders.fetch_add(1, Ordering::Relaxed);
            shared.metrics.sub_renders.inc();
            record_exec_metrics(&shared.metrics.exec, &report.stats);
            if let Some((from, delta)) = sub::delta_between(cumulative.as_ref(), &report.output) {
                let svc = match v2v_container::svc_to_bytes(&delta) {
                    Ok(b) => b,
                    Err(_) => return,
                };
                let header = sub::DeltaHeader {
                    seq,
                    from_frame: from as u64,
                    frames: delta.len() as u64,
                    svc_len: svc.len() as u64,
                    version: seen,
                };
                if sub::write_delta(writer, &header, &svc).is_err() {
                    return; // client gone
                }
                seq += 1;
                shared.subs_deltas.fetch_add(1, Ordering::Relaxed);
                shared.metrics.sub_deltas.inc();
                shared
                    .subs_frames_pushed
                    .fetch_add(delta.len() as u64, Ordering::Relaxed);
                shared.metrics.sub_frames_pushed.add(delta.len() as u64);
            }
            cumulative = Some(report.output);
            last_domain = Some(clamped);
        }
        // Sleep until the catalog grows (or the server stops); poll the
        // client socket each interval so an abandoned subscription does
        // not linger forever.
        let mut v = shared
            .catalog_version
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        while *v == seen {
            if shared.stopping.load(Ordering::SeqCst) {
                return;
            }
            let (guard, timed_out) = shared
                .catalog_grew
                .wait_timeout(v, Duration::from_millis(250))
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            v = guard;
            if timed_out.timed_out() {
                drop(v);
                if client_disconnected(reader) {
                    return;
                }
                v = shared
                    .catalog_version
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        }
    }
}

/// `true` when the subscription's client has closed its end. Clients
/// send nothing after the request, so any `read` returning 0 is a
/// disconnect; a timeout means the peer is simply quiet.
fn client_disconnected(reader: &mut BufReader<TcpStream>) -> bool {
    let stream = reader.get_ref();
    if stream
        .set_read_timeout(Some(Duration::from_millis(1)))
        .is_err()
    {
        return true;
    }
    let mut probe = [0u8; 1];
    match reader.get_mut().read(&mut probe) {
        Ok(0) => true,
        Ok(_) => false, // stray bytes: tolerate
        Err(e) => !matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
    }
}

fn handle_status(shared: &Shared) -> Response {
    let (active, queued) = shared.gate.snapshot();
    let cache = shared.config.engine.render_cache.as_ref().map(|c| {
        let mem = c.mem_tier().map(|m| {
            serde_json::json!({
                "entries": m.entries(),
                "bytes_held": m.bytes_held(),
                "budget_bytes": m.budget_bytes(),
                "hits": m.hits(),
                "promotions": m.promotions(),
                "evictions": m.evictions(),
            })
        });
        serde_json::json!({
            "entries": c.entries(),
            "bytes_held": c.bytes_held(),
            "budget_bytes": c.budget_bytes(),
            "evictions": c.evictions(),
            "mem": mem,
        })
    });
    Response::json(
        200,
        &serde_json::json!({
            "role": shared.config.role.name(),
            "active": active,
            "queued": queued,
            "max_concurrent": shared.config.max_concurrent,
            "queue_depth": shared.config.queue_depth,
            "jobs_done": shared.jobs_done.load(Ordering::Relaxed),
            "jobs_failed": shared.jobs_failed.load(Ordering::Relaxed),
            "jobs_rejected": shared.jobs_rejected.load(Ordering::Relaxed),
            "queue_wait": {
                "count": shared.queue_waits.load(Ordering::Relaxed),
                "total_ns": shared.queue_wait_total_ns.load(Ordering::Relaxed),
                "max_ns": shared.queue_wait_max_ns.load(Ordering::Relaxed),
            },
            "sharing": {
                "enabled": shared.config.work_sharing,
                "inflight": shared.inflight.inflight(),
                "waiting": shared.inflight.waiting(),
                "inflight_hits": shared.inflight.hits(),
                "segments_published": shared.flight.published(),
                "segment_hits": shared.flight.shared(),
            },
            "subscriptions": {
                "active": shared.subs_active.load(Ordering::Relaxed),
                "deltas": shared.subs_deltas.load(Ordering::Relaxed),
                "frames_pushed": shared.subs_frames_pushed.load(Ordering::Relaxed),
                "renders": shared.subs_renders.load(Ordering::Relaxed),
                "appends": shared.appends.load(Ordering::Relaxed),
                "catalog_version": shared.version(),
            },
            "pool": shared.pool.as_ref().map(|p| p.status_json()),
            "cache": cache,
            "store": store_svc::status_block(shared),
        }),
    )
}

/// A parsed, planned query waiting to execute: the engine it was
/// prepared on (carrying the daemon's shared cache and fragment
/// flight) plus the prepared plan.
struct PreparedQuery {
    engine: V2vEngine,
    run: PreparedRun,
}

fn handle_query(req: &Request, shared: &Shared) -> Response {
    // Parse and plan before admission: planning is cheap next to
    // rendering, and the plan fingerprint is what lets an identical
    // in-flight render absorb this request without a slot.
    let prepared = match prepare_query(&req.body, shared) {
        Ok(p) => p,
        Err(e) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            shared.metrics.jobs_failed.inc();
            return error_response(status_for(e.kind()), e.kind().name(), &e.to_string());
        }
    };
    if shared.config.work_sharing {
        if let Some(fp) = prepared.run.fingerprint() {
            return match shared.inflight.join(fp) {
                Join::Leader(guard) => run_admitted(shared, prepared, Some(guard)),
                Join::Follower(outcome) => respond_follower(shared, &outcome),
            };
        }
    }
    run_admitted(shared, prepared, None)
}

/// Takes an admission slot, executes, and (when leading a flight)
/// publishes the outcome — success, failure, or the 429 itself — to
/// every coalesced follower.
fn run_admitted(
    shared: &Shared,
    prepared: PreparedQuery,
    guard: Option<LeaderGuard<'_>>,
) -> Response {
    let waiting = Instant::now();
    if !shared.gate.enter() {
        shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
        shared.metrics.jobs_rejected.inc();
        if let Some(guard) = guard {
            guard.publish(Err(SharedError {
                status: 429,
                kind: "overloaded".into(),
                message: "admission queue full".into(),
            }));
        }
        return overload_response(shared);
    }
    let queue_wait_ns = waiting.elapsed().as_nanos() as u64;
    record_queue_wait(shared, queue_wait_ns);
    let (active, _) = shared.gate.snapshot();
    shared.metrics.active_jobs.set(active as u64);
    let started = Instant::now();
    let result = execute_prepared(prepared);
    shared.gate.leave();
    shared
        .metrics
        .job_wall_ns
        .record(started.elapsed().as_nanos() as u64);
    match result {
        Ok((bytes, stats)) => {
            shared.jobs_done.fetch_add(1, Ordering::Relaxed);
            shared.metrics.jobs_done.inc();
            record_exec_metrics(&shared.metrics.exec, &stats);
            let bytes = Arc::new(bytes);
            if let Some(guard) = guard {
                guard.publish(Ok((Arc::clone(&bytes), stats)));
            }
            Response::new(200, "application/octet-stream", bytes.as_ref().clone())
                .header("x-v2v-stats", stats_header(&stats, queue_wait_ns))
        }
        Err(e) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            shared.metrics.jobs_failed.inc();
            let status = status_for(e.kind());
            let kind = e.kind().name();
            let message = e.to_string();
            if let Some(guard) = guard {
                guard.publish(Err(SharedError {
                    status,
                    kind: kind.into(),
                    message: message.clone(),
                }));
            }
            error_response(status, kind, &message)
        }
    }
}

/// Answers a request from the outcome of the identical in-flight
/// render it coalesced into. The body is byte-for-byte the leader's;
/// the stats carry only the sharing markers (this request did no
/// work).
fn respond_follower(shared: &Shared, outcome: &QueryOutcome) -> Response {
    shared.metrics.inflight_hits.inc();
    match outcome {
        Ok((bytes, _)) => {
            shared.jobs_done.fetch_add(1, Ordering::Relaxed);
            shared.metrics.jobs_done.inc();
            let mut stats = ExecStats::default();
            stats.cache.inflight_hits = 1;
            stats.cache.bytes_reused = bytes.len() as u64;
            record_exec_metrics(&shared.metrics.exec, &stats);
            Response::new(200, "application/octet-stream", bytes.as_ref().clone())
                .header("x-v2v-stats", stats_header(&stats, 0))
        }
        Err(e) if e.status == 429 => {
            shared.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            shared.metrics.jobs_rejected.inc();
            overload_response(shared)
        }
        Err(e) => {
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
            shared.metrics.jobs_failed.inc();
            error_response(e.status, &e.kind, &e.message)
        }
    }
}

/// Parses and plans one spec on a fresh engine over the shared sources
/// (the catalog clone is cheap: streams are `Arc`-backed). The engine
/// is wired to the daemon-wide fragment flight so its segments share
/// with every concurrent render.
fn prepare_query(body: &[u8], shared: &Shared) -> Result<PreparedQuery, V2vError> {
    let text = std::str::from_utf8(body)
        .map_err(|e| V2vError::new(ErrorKind::InvalidRequest, format!("spec not UTF-8: {e}")))?;
    let spec = Spec::from_json(text)
        .map_err(|e| V2vError::new(ErrorKind::InvalidRequest, format!("bad spec: {e}")))?;
    let mut config = shared.config.engine.clone();
    if shared.config.work_sharing {
        config.work_share = Some(Arc::clone(&shared.flight));
    }
    if let Some(pool) = &shared.pool {
        // Coordinator: keyed segments of this query may render on
        // workers. The spec rides along verbatim so each dispatch is
        // self-describing.
        if let Ok(value) = serde_json::from_str::<serde_json::Value>(text) {
            config.remote = Some(Arc::new(PoolRemote::new(Arc::clone(pool), value)));
        }
    }
    let mut engine = V2vEngine::new(shared.catalog_snapshot())
        .with_database(shared.database.clone())
        .with_config(config);
    if let Some(store) = &shared.store {
        // Sources named by locator bind lazily into this query's
        // engine catalog, not the shared one — bind now (prepare's own
        // bind is an idempotent no-op after this) and attach whatever
        // variants the store holds for them. Attach failures degrade
        // to the original: variants are advisory, never load-bearing.
        engine.bind(&spec)?;
        let _ = store.attach(engine.catalog_mut());
    }
    let run = engine.prepare(&spec)?;
    if shared.store.is_some() {
        // Feed the compactor: classify this plan's source reads by
        // access shape (smart-cut / scan / preview).
        let profiles = profile_plan(run.plan(), &engine.catalog().plan_context());
        store_svc::record_profiles(shared, &profiles);
    }
    Ok(PreparedQuery { engine, run })
}

/// Executes a prepared query and serializes the result container.
fn execute_prepared(mut prepared: PreparedQuery) -> Result<(Vec<u8>, ExecStats), V2vError> {
    let (report, _trace) = prepared.engine.run_prepared(prepared.run)?;
    let bytes = v2v_container::svc_to_bytes(&report.output)?;
    Ok((bytes, report.stats))
}

fn record_queue_wait(shared: &Shared, ns: u64) {
    shared.queue_waits.fetch_add(1, Ordering::Relaxed);
    shared.queue_wait_total_ns.fetch_add(ns, Ordering::Relaxed);
    shared.queue_wait_max_ns.fetch_max(ns, Ordering::Relaxed);
    shared.metrics.queue_wait_ns.record(ns);
}

/// The `x-v2v-stats` header value: the run's [`ExecStats`] JSON with
/// the admission wait injected alongside, so clients can split queue
/// time from render time.
fn stats_header(stats: &ExecStats, queue_wait_ns: u64) -> String {
    let mut value = serde_json::to_value(stats).unwrap_or_default();
    if let serde_json::Value::Object(map) = &mut value {
        map.insert("queue_wait_ns".into(), queue_wait_ns.into());
    }
    serde_json::to_string(&value).unwrap_or_default()
}

/// Mirrors one run's [`ExecStats`] into the server-lifetime registry
/// through the pre-resolved handles (no per-counter map lookups).
fn record_exec_metrics(exec: &ExecMetrics, stats: &ExecStats) {
    exec.frames_decoded.add(stats.frames_decoded);
    exec.frames_encoded.add(stats.frames_encoded);
    exec.bytes_decoded.add(stats.bytes_decoded);
    exec.packets_copied.add(stats.packets_copied);
    exec.result_hits.add(stats.cache.result_hits);
    exec.segment_hits.add(stats.cache.segment_hits);
    exec.evictions.add(stats.cache.evictions);
    exec.bytes_reused.add(stats.cache.bytes_reused);
    exec.inflight_hits.add(stats.cache.inflight_hits);
    exec.shared_segment_hits
        .add(stats.cache.shared_segment_hits);
    exec.mem_hits.add(stats.cache.mem_hits);
    exec.remote_segments.add(stats.cache.remote_segments);
}

/// Maps the error taxonomy onto HTTP status codes.
fn status_for(kind: ErrorKind) -> u16 {
    match kind {
        ErrorKind::InvalidRequest | ErrorKind::Plan => 400,
        ErrorKind::NotFound => 404,
        ErrorKind::CorruptData => 422,
        ErrorKind::Io | ErrorKind::Udf | ErrorKind::Internal => 500,
    }
}

fn error_response(status: u16, kind: &str, message: &str) -> Response {
    Response::json(
        status,
        &serde_json::json!({"error": {"kind": kind, "message": message}}),
    )
}

/// The structured body of a 429: the standard error object plus the
/// live queue picture, so a client can tell a transient spike from a
/// saturated daemon.
fn overload_body(queued: usize, queue_limit: usize, retry_after_secs: u64) -> serde_json::Value {
    serde_json::json!({"error": {
        "kind": "overloaded",
        "message": "admission queue full",
        "queue_depth": queued,
        "queue_limit": queue_limit,
        "retry_after_secs": retry_after_secs,
    }})
}

fn overload_response(shared: &Shared) -> Response {
    let (_, queued) = shared.gate.snapshot();
    Response::json(
        429,
        &overload_body(
            queued,
            shared.config.queue_depth,
            shared.config.retry_after_secs,
        ),
    )
    .header("retry-after", shared.config.retry_after_secs.to_string())
}

/// Convenience: open (or create) a persistent render cache for a
/// serving config.
pub fn open_cache(
    dir: impl AsRef<std::path::Path>,
    budget_bytes: u64,
) -> std::io::Result<Arc<RenderCache>> {
    RenderCache::open(dir, budget_bytes).map(Arc::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use http::client;
    use v2v_codec::CodecParams;
    use v2v_container::{StreamWriter, VideoStream};
    use v2v_frame::{marker, Frame, FrameType};
    use v2v_spec::{builder::blur, OutputSettings, SpecBuilder};
    use v2v_time::{r, Rational};

    fn marked_stream(n: usize, gop: u32) -> VideoStream {
        let ty = FrameType::gray8(64, 32);
        let params = CodecParams::new(ty, gop, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            marker::embed(&mut f, i as u32);
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_video("a", marked_stream(120, 30));
        c
    }

    fn spec_json() -> String {
        let output = OutputSettings {
            frame_ty: FrameType::gray8(64, 32),
            frame_dur: r(1, 30),
            gop_size: 30,
            quantizer: 0,
        };
        let spec = SpecBuilder::new(output)
            .video("a", "a.svc")
            .append_filtered("a", r(0, 1), r(1, 1), |e| blur(e, 1.0))
            .build();
        spec.to_json()
    }

    #[test]
    fn serves_query_status_and_metrics() {
        let mut handle = V2vServer::new(catalog()).start("127.0.0.1:0").unwrap();
        let addr = handle.addr();

        let resp = client::post_query(addr, spec_json().as_bytes()).unwrap();
        assert_eq!(
            resp.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&resp.body)
        );
        let stream = v2v_container::svc_from_bytes(&resp.body).unwrap();
        assert_eq!(stream.len(), 30);
        let stats: ExecStats =
            serde_json::from_str(resp.header_value("x-v2v-stats").unwrap()).unwrap();
        assert_eq!(stats.frames_encoded, 30);

        // queue_wait is reported separately from render time.
        let header: serde_json::Value =
            serde_json::from_str(resp.header_value("x-v2v-stats").unwrap()).unwrap();
        assert!(header
            .get("queue_wait_ns")
            .and_then(|x| x.as_u64())
            .is_some());

        let status = client::request(addr, "GET", "/status", b"").unwrap();
        assert_eq!(status.status, 200);
        let v: serde_json::Value = serde_json::from_slice(&status.body).unwrap();
        assert_eq!(v.get("jobs_done").and_then(|x| x.as_u64()), Some(1));
        let wait = v.get("queue_wait").expect("queue_wait block");
        assert_eq!(wait.get("count").and_then(|x| x.as_u64()), Some(1));
        let sharing = v.get("sharing").expect("sharing block");
        assert_eq!(sharing.get("enabled").and_then(|x| x.as_bool()), Some(true));
        assert_eq!(sharing.get("inflight").and_then(|x| x.as_u64()), Some(0));

        let metrics = client::request(addr, "GET", "/metrics", b"").unwrap();
        let snap: v2v_obs::MetricsSnapshot = serde_json::from_slice(&metrics.body).unwrap();
        assert_eq!(snap.counter("serve.jobs_done"), 1);
        assert_eq!(snap.counter("exec.frames_encoded"), 30);

        handle.stop();
    }

    #[test]
    fn bad_spec_maps_to_400_and_unknown_route_to_404() {
        let handle = V2vServer::new(catalog()).start("127.0.0.1:0").unwrap();
        let addr = handle.addr();
        let resp = client::post_query(addr, b"{ not json").unwrap();
        assert_eq!(resp.status, 400);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let kind = v
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(|k| k.as_str());
        assert_eq!(kind, Some("invalid_request"));
        let resp = client::request(addr, "GET", "/nope", b"").unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn missing_video_maps_to_404() {
        let handle = V2vServer::new(Catalog::new()).start("127.0.0.1:0").unwrap();
        let resp = client::post_query(handle.addr(), spec_json().as_bytes()).unwrap();
        // The spec names "a.svc", which does not exist on disk.
        assert_eq!(resp.status, 404);
    }

    fn store_tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "v2v_serve_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn store_config(root: &std::path::Path) -> ServeConfig {
        ServeConfig {
            store: Some(StoreServeConfig::at(root)),
            ..Default::default()
        }
    }

    #[test]
    fn store_routes_materialize_list_drop_and_leave_bytes_identical() {
        // Ground truth: the same query on a storeless daemon.
        let plain = V2vServer::new(catalog()).start("127.0.0.1:0").unwrap();
        let baseline = client::post_query(plain.addr(), spec_json().as_bytes()).unwrap();
        assert_eq!(baseline.status, 200);

        let dir = store_tempdir("routes");
        let handle = V2vServer::new(catalog())
            .with_config(store_config(&dir))
            .start("127.0.0.1:0")
            .unwrap();
        let addr = handle.addr();

        let resp = client::request(addr, "POST", "/store/materialize/a/dense", b"").unwrap();
        assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v.get("covered_frames").and_then(|x| x.as_u64()), Some(120));

        // The attached dense variant must not change a single output
        // byte — variant choice is physical, not logical.
        let with_variant = client::post_query(addr, spec_json().as_bytes()).unwrap();
        assert_eq!(with_variant.status, 200);
        assert_eq!(with_variant.body, baseline.body);

        let ls = client::request(addr, "GET", "/store", b"").unwrap();
        assert_eq!(ls.status, 200);
        let v: serde_json::Value = serde_json::from_slice(&ls.body).unwrap();
        let attached = v.get("attached").expect("attached block");
        assert!(
            attached.get("a").is_some(),
            "dense variant should be attached: {v}"
        );
        assert!(v.get("managed_bytes").and_then(|x| x.as_u64()).unwrap_or(0) > 0);

        // The status page carries the same block.
        let status = client::request(addr, "GET", "/status", b"").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&status.body).unwrap();
        let store = v.get("store").expect("store block");
        assert_eq!(
            store.get("materializations").and_then(|x| x.as_u64()),
            Some(1)
        );

        // Pin, then drop (admin drop is forced and removes even pinned).
        let pin =
            client::request(addr, "POST", "/store/pin/a/dense", b"{\"pinned\":true}").unwrap();
        assert_eq!(pin.status, 200);
        let drop = client::request(addr, "POST", "/store/drop/a/dense", b"").unwrap();
        assert_eq!(drop.status, 200);
        let v: serde_json::Value = serde_json::from_slice(&drop.body).unwrap();
        assert_eq!(v.get("dropped").and_then(|x| x.as_bool()), Some(true));

        // Unknown source and bad kind map to 404.
        let resp = client::request(addr, "POST", "/store/materialize/nope/dense", b"").unwrap();
        assert_eq!(resp.status, 404);
        let resp = client::request(addr, "POST", "/store/materialize/a/bogus", b"").unwrap();
        assert_eq!(resp.status, 404);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn storeless_daemon_404s_store_routes() {
        let handle = V2vServer::new(catalog()).start("127.0.0.1:0").unwrap();
        let resp = client::request(handle.addr(), "GET", "/store", b"").unwrap();
        assert_eq!(resp.status, 404);
        let resp = client::request(handle.addr(), "POST", "/store/compact", b"").unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn compaction_drops_unwanted_variants_and_restart_reattaches_held_ones() {
        let dir = store_tempdir("compact");
        {
            let handle = V2vServer::new(catalog())
                .with_config(store_config(&dir))
                .start("127.0.0.1:0")
                .unwrap();
            let addr = handle.addr();
            let resp = client::request(addr, "POST", "/store/materialize/a/dense", b"").unwrap();
            assert_eq!(resp.status, 200);
            let resp = client::request(addr, "POST", "/store/materialize/a/archive", b"").unwrap();
            assert_eq!(resp.status, 200);
            // Pin archive so it survives the pass; dense has no demand
            // behind it (no queries ran) and must be dropped.
            let resp = client::request(addr, "POST", "/store/pin/a/archive", b"").unwrap();
            assert_eq!(resp.status, 200);
            let resp = client::request(addr, "POST", "/store/compact", b"").unwrap();
            assert_eq!(resp.status, 200);
            let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
            let actions = v.get("actions").and_then(|a| a.as_array()).unwrap();
            assert!(
                actions.iter().any(|a| {
                    a.get("kind").and_then(|k| k.as_str()) == Some("dense")
                        && a.get("op").and_then(|o| o.as_str()) == Some("drop")
                }),
                "idle dense variant should be compacted away: {v}"
            );
            assert!(
                !actions
                    .iter()
                    .any(|a| a.get("kind").and_then(|k| k.as_str()) == Some("archive")),
                "pinned archive must survive: {v}"
            );
        }
        // A fresh daemon over the same root recovers the surviving
        // variant at startup.
        let handle = V2vServer::new(catalog())
            .with_config(store_config(&dir))
            .start("127.0.0.1:0")
            .unwrap();
        let ls = client::request(handle.addr(), "GET", "/store", b"").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&ls.body).unwrap();
        let kinds = v
            .get("attached")
            .and_then(|a| a.get("a"))
            .and_then(|k| k.as_array())
            .cloned()
            .unwrap_or_default();
        assert_eq!(kinds.len(), 1, "{v}");
        assert_eq!(kinds[0].as_str(), Some("archive"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn queries_feed_access_profiles() {
        let dir = store_tempdir("profiles");
        let handle = V2vServer::new(catalog())
            .with_config(store_config(&dir))
            .start("127.0.0.1:0")
            .unwrap();
        let addr = handle.addr();
        let resp = client::post_query(addr, spec_json().as_bytes()).unwrap();
        assert_eq!(resp.status, 200);
        let ls = client::request(addr, "GET", "/store", b"").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&ls.body).unwrap();
        let profile = v
            .get("profiles")
            .and_then(|p| p.get("a"))
            .cloned()
            .unwrap_or_default();
        let total = profile
            .get("smart_cut")
            .and_then(|x| x.as_u64())
            .unwrap_or(0)
            + profile.get("scan").and_then(|x| x.as_u64()).unwrap_or(0)
            + profile.get("preview").and_then(|x| x.as_u64()).unwrap_or(0);
        assert!(total > 0, "query should classify reads: {v}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn full_queue_rejects_with_retry_after() {
        // max_concurrent 1 and queue 0: while one render holds the
        // slot, a second is rejected outright. The first request is a
        // long render; the probe races it, so retry until we observe
        // the 429 (or the first finishes and both succeed — then force
        // the gate directly).
        let gate = JobGate::new(1, 0);
        assert!(gate.enter());
        assert!(!gate.enter(), "queue of 0 must reject while busy");
        gate.leave();
        assert!(gate.enter());
        gate.leave();

        // And over HTTP: hold the gate by saturating it with a real
        // request from another thread is racy, so instead check the
        // response shape with queue_depth 0 and max_concurrent forced
        // through config on a contrived busy server.
        let config = ServeConfig {
            max_concurrent: 1,
            queue_depth: 0,
            // Identical specs would coalesce instead of contending;
            // this test is about the admission gate, so share nothing.
            work_sharing: false,
            ..Default::default()
        };
        let handle = V2vServer::new(catalog())
            .with_config(config)
            .start("127.0.0.1:0")
            .unwrap();
        let addr = handle.addr();
        // Saturate from background threads; at least one response of
        // the burst should be a 429 unless renders finish instantly —
        // accept either, but verify 429s carry the full header + body
        // contract when seen.
        let mut saw_429 = false;
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let spec = spec_json();
                std::thread::spawn(move || client::post_query(addr, spec.as_bytes()).unwrap())
            })
            .collect();
        for h in handles {
            let resp = h.join().unwrap();
            if resp.status == 429 {
                saw_429 = true;
                assert_eq!(resp.header_value("retry-after"), Some("1"));
                let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
                let err = v.get("error").expect("error object");
                assert_eq!(err.get("kind").and_then(|k| k.as_str()), Some("overloaded"));
                assert_eq!(err.get("queue_depth").and_then(|x| x.as_u64()), Some(0));
                assert_eq!(err.get("queue_limit").and_then(|x| x.as_u64()), Some(0));
                assert_eq!(
                    err.get("retry_after_secs").and_then(|x| x.as_u64()),
                    Some(1)
                );
            } else {
                assert_eq!(resp.status, 200);
            }
        }
        // Not asserting saw_429: timing-dependent. But the counter and
        // the responses must agree.
        let (_done, _failed, rejected) = handle.job_counts();
        assert_eq!(saw_429, rejected > 0);
    }

    #[test]
    fn queued_requests_complete_in_fifo_order_eventually() {
        let config = ServeConfig {
            max_concurrent: 1,
            queue_depth: 16,
            ..Default::default()
        };
        let handle = V2vServer::new(catalog())
            .with_config(config)
            .start("127.0.0.1:0")
            .unwrap();
        let addr = handle.addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let spec = spec_json();
                std::thread::spawn(move || client::post_query(addr, spec.as_bytes()).unwrap())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap().status, 200);
        }
        let (done, failed, rejected) = handle.job_counts();
        assert_eq!((done, failed, rejected), (4, 0, 0));
    }

    #[test]
    fn overload_body_reports_queue_state() {
        let body = overload_body(3, 16, 2);
        let err = body.get("error").unwrap();
        assert_eq!(err.get("kind").and_then(|k| k.as_str()), Some("overloaded"));
        assert_eq!(err.get("queue_depth").and_then(|x| x.as_u64()), Some(3));
        assert_eq!(err.get("queue_limit").and_then(|x| x.as_u64()), Some(16));
        assert_eq!(
            err.get("retry_after_secs").and_then(|x| x.as_u64()),
            Some(2)
        );
        assert!(err.get("message").is_some());
    }

    #[test]
    fn identical_concurrent_requests_return_identical_bytes() {
        // Whether a request leads, coalesces, or lands after the flight
        // drained, every response must carry the same container bytes
        // and count as a completed job.
        let config = ServeConfig {
            max_concurrent: 1,
            ..Default::default()
        };
        let handle = V2vServer::new(catalog())
            .with_config(config)
            .start("127.0.0.1:0")
            .unwrap();
        let addr = handle.addr();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let spec = spec_json();
                std::thread::spawn(move || client::post_query(addr, spec.as_bytes()).unwrap())
            })
            .collect();
        let mut bodies = Vec::new();
        let mut coalesced = 0u64;
        for h in handles {
            let resp = h.join().unwrap();
            assert_eq!(resp.status, 200);
            let header: serde_json::Value =
                serde_json::from_str(resp.header_value("x-v2v-stats").unwrap()).unwrap();
            coalesced += header
                .get("cache")
                .and_then(|c| c.get("inflight_hits"))
                .and_then(|x| x.as_u64())
                .unwrap_or(0);
            bodies.push(resp.body);
        }
        assert!(bodies.windows(2).all(|w| w[0] == w[1]));
        let (done, failed, rejected) = handle.job_counts();
        assert_eq!((done, failed, rejected), (4, 0, 0));
        // Coalesced responses (if the race produced any) are mirrored
        // in the status sharing block.
        let status = client::request(addr, "GET", "/status", b"").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&status.body).unwrap();
        assert_eq!(
            v.get("sharing")
                .and_then(|s| s.get("inflight_hits"))
                .and_then(|x| x.as_u64()),
            Some(coalesced)
        );
    }
}
