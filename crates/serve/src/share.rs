//! Whole-response single-flight by canonical plan fingerprint.
//!
//! The daemon's outermost sharing tier: when a request's prepared plan
//! has the same fingerprint as a render already in flight, the request
//! does not run at all — it subscribes to the running one and receives
//! the same `.svc` bytes (or the same error). Equal fingerprints imply
//! byte-identical output over identical sources, so coalescing is
//! invisible to clients except in `ExecStats.cache.inflight_hits`.
//!
//! Leaders register **before** entering the admission gate, so
//! duplicates of a queued request coalesce too, and a burst of K
//! identical queries consumes one admission slot instead of K.
//! The registry mirrors [`FragmentFlight`](v2v_exec::FragmentFlight)
//! one layer up: leader/follower instead of owner/waiter, HTTP outcome
//! instead of fragment.
//!
//! The slot map is sharded by fingerprint: every request (shared or
//! not) takes the registry lock at least once, and at high client
//! counts a single map mutex serialized otherwise-independent
//! requests. Fingerprints are uniform hashes, so `fp % SHARD_COUNT`
//! spreads them evenly; unrelated queries now contend only within
//! their shard while duplicates of one query still meet on the same
//! shard's lock and condvar.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use v2v_exec::ExecStats;

/// Independent slot-map shards (a power of two; fingerprints are
/// uniform, so the low bits index fairly).
const SHARD_COUNT: usize = 8;

/// The error half of a shared outcome: enough to rebuild the HTTP
/// response for every follower.
#[derive(Clone, Debug)]
pub struct SharedError {
    /// HTTP status the leader's run mapped to.
    pub status: u16,
    /// Error-taxonomy kind name (`not_found`, `overloaded`, …).
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

/// What a leader hands its followers: the serialized `.svc` bytes plus
/// the leader's stats, or the error the leader hit (including a 429 —
/// a rejected leader rejects its whole cohort, which is exactly the
/// back-pressure the gate intended).
pub type QueryOutcome = Result<(Arc<Vec<u8>>, ExecStats), SharedError>;

// Slots are few (one per in-flight fingerprint) and short-lived, so
// the size skew between the variants is irrelevant.
#[allow(clippy::large_enum_variant)]
enum SlotState {
    Running,
    Done(QueryOutcome),
}

struct Slot {
    state: SlotState,
    waiters: usize,
}

/// One shard: its own slot map and wake-up channel.
#[derive(Default)]
struct Shard {
    slots: Mutex<HashMap<u64, Slot>>,
    done: Condvar,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, HashMap<u64, Slot>> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Registry of in-flight `POST /query` renders, keyed by plan
/// fingerprint.
pub struct InflightRegistry {
    shards: Vec<Shard>,
    hits: AtomicU64,
}

impl Default for InflightRegistry {
    fn default() -> Self {
        InflightRegistry {
            shards: (0..SHARD_COUNT).map(|_| Shard::default()).collect(),
            hits: AtomicU64::new(0),
        }
    }
}

/// Result of [`InflightRegistry::join`].
pub enum Join<'a> {
    /// This request runs the render and must
    /// [`publish`](LeaderGuard::publish) (or drop the guard, which
    /// publishes an internal error).
    Leader(LeaderGuard<'a>),
    /// An identical render was in flight; here is its outcome.
    Follower(QueryOutcome),
}

/// Ownership of one in-flight fingerprint.
pub struct LeaderGuard<'a> {
    registry: &'a InflightRegistry,
    fingerprint: u64,
    released: bool,
}

impl LeaderGuard<'_> {
    /// Hands the outcome to every follower and releases the slot.
    pub fn publish(mut self, outcome: QueryOutcome) {
        self.released = true;
        self.registry.release(self.fingerprint, outcome);
    }
}

impl Drop for LeaderGuard<'_> {
    fn drop(&mut self) {
        if !self.released {
            self.registry.release(
                self.fingerprint,
                Err(SharedError {
                    status: 500,
                    kind: "internal".into(),
                    message: "in-flight render aborted".into(),
                }),
            );
        }
    }
}

impl InflightRegistry {
    /// An empty registry.
    pub fn new() -> InflightRegistry {
        InflightRegistry::default()
    }

    fn shard(&self, fingerprint: u64) -> &Shard {
        &self.shards[(fingerprint % SHARD_COUNT as u64) as usize]
    }

    /// Requests coalesced into an in-flight render so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Fingerprints currently in flight.
    pub fn inflight(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .values()
                    .filter(|slot| matches!(slot.state, SlotState::Running))
                    .count()
            })
            .sum()
    }

    /// Followers currently blocked on a leader.
    pub fn waiting(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().values().map(|slot| slot.waiters).sum::<usize>())
            .sum()
    }

    /// Joins the flight for `fingerprint`: the first request leads,
    /// concurrent duplicates block until the leader publishes.
    pub fn join(&self, fingerprint: u64) -> Join<'_> {
        let shard = self.shard(fingerprint);
        let mut inner = shard.lock();
        loop {
            match inner.get_mut(&fingerprint) {
                None => {
                    inner.insert(
                        fingerprint,
                        Slot {
                            state: SlotState::Running,
                            waiters: 0,
                        },
                    );
                    return Join::Leader(LeaderGuard {
                        registry: self,
                        fingerprint,
                        released: false,
                    });
                }
                Some(slot) => match &slot.state {
                    SlotState::Done(outcome) => {
                        let outcome = outcome.clone();
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return Join::Follower(outcome);
                    }
                    SlotState::Running => {
                        slot.waiters += 1;
                        inner = shard
                            .done
                            .wait(inner)
                            .unwrap_or_else(PoisonError::into_inner);
                        let slot = inner
                            .get_mut(&fingerprint)
                            .expect("slot removed while followers were registered");
                        if let SlotState::Done(outcome) = &slot.state {
                            let outcome = outcome.clone();
                            slot.waiters -= 1;
                            if slot.waiters == 0 {
                                inner.remove(&fingerprint);
                            }
                            self.hits.fetch_add(1, Ordering::Relaxed);
                            return Join::Follower(outcome);
                        }
                        slot.waiters -= 1;
                        // Spurious wakeup: loop and re-wait.
                    }
                },
            }
        }
    }

    /// Marks the fingerprint done and wakes every follower. With no
    /// followers the slot is removed immediately — a later identical
    /// request is served by the render cache, not a stale slot.
    fn release(&self, fingerprint: u64, outcome: QueryOutcome) {
        let shard = self.shard(fingerprint);
        let mut inner = shard.lock();
        if let Some(slot) = inner.get_mut(&fingerprint) {
            if slot.waiters == 0 {
                inner.remove(&fingerprint);
            } else {
                slot.state = SlotState::Done(outcome);
            }
        }
        drop(inner);
        shard.done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn ok_outcome(tag: u8) -> QueryOutcome {
        Ok((Arc::new(vec![tag; 4]), ExecStats::default()))
    }

    #[test]
    fn followers_receive_the_leaders_bytes_exactly_once() {
        let reg = InflightRegistry::new();
        let leads = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| match reg.join(42) {
                    Join::Leader(guard) => {
                        leads.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        guard.publish(ok_outcome(7));
                    }
                    Join::Follower(outcome) => {
                        let (bytes, _) = outcome.expect("leader succeeded");
                        assert_eq!(*bytes, vec![7; 4]);
                    }
                });
            }
        });
        assert_eq!(leads.load(Ordering::SeqCst), 1);
        assert_eq!(reg.hits(), 7);
        assert_eq!(reg.inflight(), 0);
        assert_eq!(reg.waiting(), 0);
        // Drained: the next identical request leads afresh.
        assert!(matches!(reg.join(42), Join::Leader(_)));
    }

    #[test]
    fn errors_fan_out_to_followers() {
        let reg = InflightRegistry::new();
        std::thread::scope(|scope| {
            let Join::Leader(guard) = reg.join(9) else {
                panic!("first joiner leads");
            };
            let follower = scope.spawn(|| match reg.join(9) {
                Join::Follower(Err(e)) => assert_eq!(e.status, 404),
                _ => panic!("follower must see the leader's error"),
            });
            while reg.waiting() == 0 {
                std::thread::yield_now();
            }
            guard.publish(Err(SharedError {
                status: 404,
                kind: "not_found".into(),
                message: "missing".into(),
            }));
            follower.join().unwrap();
        });
    }

    #[test]
    fn dropped_leader_publishes_internal_error() {
        let reg = InflightRegistry::new();
        std::thread::scope(|scope| {
            let Join::Leader(guard) = reg.join(1) else {
                panic!("first joiner leads");
            };
            let follower = scope.spawn(|| match reg.join(1) {
                Join::Follower(Err(e)) => assert_eq!(e.status, 500),
                _ => panic!("follower must see the abort"),
            });
            while reg.waiting() == 0 {
                std::thread::yield_now();
            }
            drop(guard);
            follower.join().unwrap();
        });
        assert!(matches!(reg.join(1), Join::Leader(_)));
    }

    #[test]
    fn distinct_fingerprints_run_independently() {
        let reg = InflightRegistry::new();
        let Join::Leader(a) = reg.join(1) else {
            panic!("lead 1");
        };
        let Join::Leader(b) = reg.join(2) else {
            panic!("lead 2");
        };
        assert_eq!(reg.inflight(), 2);
        a.publish(ok_outcome(1));
        b.publish(ok_outcome(2));
        assert_eq!(reg.inflight(), 0);
        assert_eq!(reg.hits(), 0);
    }

    #[test]
    fn same_shard_fingerprints_coalesce_independently() {
        // 3 and 3 + SHARD_COUNT land on the same shard; each must still
        // keep its own flight.
        let reg = InflightRegistry::new();
        let fp_a = 3u64;
        let fp_b = 3u64 + SHARD_COUNT as u64;
        let Join::Leader(a) = reg.join(fp_a) else {
            panic!("lead a");
        };
        let Join::Leader(b) = reg.join(fp_b) else {
            panic!("lead b");
        };
        assert_eq!(reg.inflight(), 2);
        a.publish(ok_outcome(1));
        b.publish(ok_outcome(2));
        assert_eq!(reg.inflight(), 0);
    }
}
