//! Scale-out: sharded coordinator/worker execution.
//!
//! A coordinator daemon carves each admitted plan at the temporal-shard
//! boundaries the optimizer already emits and dispatches segments to a
//! pool of worker daemons, exchanging results as content-addressed
//! `seg-*.svf` fragments. The pieces:
//!
//! * [`WorkerPool`] — the worker set plus a consistent-hash ring over
//!   the segment fragment keys, so the same segment always lands on the
//!   same worker (its local render cache then answers repeats without
//!   re-rendering) and adding a worker moves only `1/n` of the
//!   keyspace;
//! * [`PoolRemote`] — the [`RemoteRenderer`] the coordinator installs
//!   into its engines: for each keyed segment it walks the ring order,
//!   POSTs `/render-segment` with a per-dispatch deadline derived from
//!   the optimizer's [`segment_cost`](v2v_exec::segment_cost), verifies
//!   the returned fragment's wire framing + checksum against the
//!   expected key, and re-dispatches to the next worker on the ring
//!   when a worker dies mid-render or returns corrupt bytes.
//!
//! **Byte-identity.** A worker renders the carved single-segment
//! sub-plan with the same domain instants the coordinator would have
//! used (`PhysicalPlan::carve_segment` in `v2v-plan` preserves them),
//! so a remote fragment is byte-identical to a local
//! render and splices into the output exactly like a cache hit.
//! Everything on the wire is digest-checked: the fragment payload
//! carries its FNV-64 checksum and the wire frame carries the segment
//! key, so a corrupt or misrouted response is rejected and re-rendered,
//! never spliced.
//!
//! **Failure policy.** Every dispatch has a deadline
//! (`cost/1000` ms clamped to 1–30 s); on timeout, connection failure,
//! or a corrupt response the coordinator marks the worker dead and
//! tries the next distinct worker on the ring (bounded: at most
//! [`MAX_ATTEMPTS`] workers per segment). When every candidate fails
//! the segment falls back to local rendering — the pool accelerates
//! the coordinator but never gates it.

use crate::http::client;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use v2v_container::{fragment_from_wire, Fragment};
use v2v_exec::RemoteRenderer;

/// Virtual nodes per worker on the hash ring: enough to spread the
/// keyspace evenly across small pools without making ring walks slow.
const VNODES: u32 = 40;

/// Distinct workers tried per segment before falling back to a local
/// render (the first dispatch plus one re-dispatch).
pub const MAX_ATTEMPTS: usize = 2;

/// Minimum interval between dead-worker re-probe sweeps, and the
/// per-probe `GET /status` deadline. Cheap enough to piggyback on the
/// dispatch path (no dedicated health-check thread), long enough that a
/// flapping worker cannot turn every dispatch into a probe storm.
const REPROBE_INTERVAL: Duration = Duration::from_millis(250);

/// FNV-1a, the same hash family the fragment keys use.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One worker in the pool.
#[derive(Debug)]
struct Worker {
    /// The address as configured (for status reporting).
    name: String,
    addr: SocketAddr,
    /// Cleared when a dispatch to this worker fails, set again when one
    /// succeeds. Dead workers are skipped on the ring walk but still
    /// receive one probe dispatch when they are the only candidates —
    /// a recovered worker rejoins the pool on its first success.
    alive: AtomicBool,
}

/// Lifetime dispatch counters for the pool, reported in the
/// coordinator's `/status` `pool` block.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Segment render requests sent to workers (every attempt counts).
    pub dispatched: AtomicU64,
    /// Attempts after the first for a segment: dispatches caused by a
    /// dead, slow, or corrupt-responding worker.
    pub re_dispatched: AtomicU64,
    /// Wire bytes received from workers (fragment responses).
    pub fragment_bytes_in: AtomicU64,
    /// Wire bytes sent to workers (render request bodies).
    pub fragment_bytes_out: AtomicU64,
    /// Cheap `GET /status` probes sent to dead workers by the
    /// dispatch-path re-probe sweep.
    pub probes: AtomicU64,
}

/// A fixed set of workers plus the consistent-hash ring that routes
/// segment keys to them.
#[derive(Debug)]
pub struct WorkerPool {
    workers: Vec<Worker>,
    /// `(ring point, worker index)`, sorted by point.
    ring: Vec<(u64, usize)>,
    /// Lifetime dispatch counters.
    pub stats: PoolStats,
    /// Anchor for [`Self::maybe_revive`]'s monotonic clock (an
    /// `Instant` is not atomic, so elapsed millis since this anchor
    /// are what the CAS gate trades in).
    probe_anchor: Instant,
    /// Elapsed millis (since `probe_anchor`) of the last re-probe
    /// sweep; `u64::MAX` while a sweep is running.
    last_probe_ms: AtomicU64,
}

impl WorkerPool {
    /// Builds a pool from `host:port` strings. Fails if any address
    /// does not resolve; an empty list yields an empty pool (callers
    /// should then skip remote dispatch entirely).
    pub fn new(addrs: &[String]) -> std::io::Result<WorkerPool> {
        let mut workers = Vec::with_capacity(addrs.len());
        for a in addrs {
            let addr = a.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("worker address '{a}' resolves to nothing"),
                )
            })?;
            workers.push(Worker {
                name: a.clone(),
                addr,
                alive: AtomicBool::new(true),
            });
        }
        let mut ring = Vec::with_capacity(workers.len() * VNODES as usize);
        for (i, w) in workers.iter().enumerate() {
            for v in 0..VNODES {
                ring.push((fnv64(format!("{}#{v}", w.name).as_bytes()), i));
            }
        }
        ring.sort_unstable();
        Ok(WorkerPool {
            workers,
            ring,
            stats: PoolStats::default(),
            probe_anchor: Instant::now(),
            last_probe_ms: AtomicU64::new(0),
        })
    }

    /// Workers configured.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when no workers are configured.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Workers currently believed alive.
    pub fn alive(&self) -> usize {
        self.workers
            .iter()
            .filter(|w| w.alive.load(Ordering::Relaxed))
            .count()
    }

    /// Distinct worker indices in ring order starting at the successor
    /// of `key`: the segment's home worker first, then the failover
    /// order every coordinator agrees on.
    pub fn candidates(&self, key: u64) -> Vec<usize> {
        if self.ring.is_empty() {
            return Vec::new();
        }
        let start = self.ring.partition_point(|&(p, _)| p < key);
        let mut order = Vec::with_capacity(self.workers.len());
        for i in 0..self.ring.len() {
            let (_, w) = self.ring[(start + i) % self.ring.len()];
            if !order.contains(&w) {
                order.push(w);
                if order.len() == self.workers.len() {
                    break;
                }
            }
        }
        order
    }

    /// Re-probes dead workers with a cheap `GET /status`, flipping them
    /// alive on any answer. Piggybacked on the dispatch path (no
    /// dedicated health-check thread) and rate-limited to one sweep per
    /// `REPROBE_INTERVAL`, so a restarted worker rejoins the pool
    /// within one interval of the next dispatch instead of waiting to
    /// be the last-resort tail candidate of its own ring range.
    ///
    /// Without this, a worker that died while owning a "cold" ring
    /// range could stay dead forever: `render_remote` only probes dead
    /// workers after exhausting live candidates, and with
    /// [`MAX_ATTEMPTS`] = 2 a pool of three or more live workers never
    /// reaches the dead tail at all.
    pub fn maybe_revive(&self) {
        if self.workers.iter().all(|w| w.alive.load(Ordering::Relaxed)) {
            return;
        }
        let now_ms = self.probe_anchor.elapsed().as_millis() as u64;
        let last = self.last_probe_ms.load(Ordering::Relaxed);
        if now_ms.saturating_sub(last) < REPROBE_INTERVAL.as_millis() as u64 {
            return;
        }
        // One sweep at a time: the winner of the CAS probes, everyone
        // else dispatches without blocking on the probe I/O.
        if self
            .last_probe_ms
            .compare_exchange(last, u64::MAX, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        for w in &self.workers {
            if w.alive.load(Ordering::Relaxed) {
                continue;
            }
            self.stats.probes.fetch_add(1, Ordering::Relaxed);
            if let Ok(resp) =
                client::request_timeout(w.addr, "GET", "/status", b"", REPROBE_INTERVAL)
            {
                if resp.status == 200 {
                    w.alive.store(true, Ordering::Relaxed);
                }
            }
        }
        self.last_probe_ms.store(
            self.probe_anchor.elapsed().as_millis() as u64,
            Ordering::Release,
        );
    }

    /// The `pool` block of the coordinator's `/status` response.
    pub fn status_json(&self) -> serde_json::Value {
        serde_json::json!({
            "workers": self.len(),
            "alive": self.alive(),
            "dispatched": self.stats.dispatched.load(Ordering::Relaxed),
            "re_dispatched": self.stats.re_dispatched.load(Ordering::Relaxed),
            "fragment_bytes_in": self.stats.fragment_bytes_in.load(Ordering::Relaxed),
            "fragment_bytes_out": self.stats.fragment_bytes_out.load(Ordering::Relaxed),
            "probes": self.stats.probes.load(Ordering::Relaxed),
        })
    }
}

/// The coordinator-side [`RemoteRenderer`]: one per admitted query,
/// sharing the daemon-wide [`WorkerPool`]. Carries the query's spec
/// JSON so each dispatch is self-describing — workers are stateless
/// between requests and re-derive the identical plan from the spec.
#[derive(Debug)]
pub struct PoolRemote {
    pool: Arc<WorkerPool>,
    /// The spec as parsed JSON, embedded verbatim in every dispatch.
    spec: serde_json::Value,
}

impl PoolRemote {
    /// A renderer dispatching `spec`'s segments over `pool`.
    pub fn new(pool: Arc<WorkerPool>, spec: serde_json::Value) -> PoolRemote {
        PoolRemote { pool, spec }
    }

    /// The per-dispatch deadline: proportional to the optimizer's cost
    /// estimate, clamped to a sane interactive range.
    fn deadline(cost: f64) -> Duration {
        let ms = (cost / 1000.0).clamp(1_000.0, 30_000.0);
        Duration::from_millis(ms as u64)
    }
}

impl RemoteRenderer for PoolRemote {
    fn render_remote(&self, seg_index: usize, key: u64, cost: f64) -> Option<Fragment> {
        let body = serde_json::to_vec(&serde_json::json!({
            "spec": self.spec,
            "seg_index": seg_index,
            "key": format!("{key:016x}"),
        }))
        .ok()?;
        let timeout = PoolRemote::deadline(cost);
        // Give restarted workers a way back in before partitioning:
        // the live/dead split below never dispatches to a dead worker
        // while enough live candidates remain, so without this sweep a
        // recovered worker would never see traffic again.
        self.pool.maybe_revive();
        let stats = &self.pool.stats;
        let candidates = self.pool.candidates(key);
        // Prefer live workers but keep dead ones at the tail as probes,
        // so a recovered worker is rediscovered without a health check.
        let (live, dead): (Vec<_>, Vec<_>) = candidates
            .into_iter()
            .partition(|&w| self.pool.workers[w].alive.load(Ordering::Relaxed));
        for (attempt, w) in live.into_iter().chain(dead).take(MAX_ATTEMPTS).enumerate() {
            let worker = &self.pool.workers[w];
            stats.dispatched.fetch_add(1, Ordering::Relaxed);
            if attempt > 0 {
                stats.re_dispatched.fetch_add(1, Ordering::Relaxed);
            }
            stats
                .fragment_bytes_out
                .fetch_add(body.len() as u64, Ordering::Relaxed);
            let resp = match client::request_timeout(
                worker.addr,
                "POST",
                "/render-segment",
                &body,
                timeout,
            ) {
                Ok(r) => r,
                Err(_) => {
                    worker.alive.store(false, Ordering::Relaxed);
                    continue;
                }
            };
            stats
                .fragment_bytes_in
                .fetch_add(resp.body.len() as u64, Ordering::Relaxed);
            if resp.status != 200 {
                // The worker answered, so it is alive — it just cannot
                // render this segment (plan mismatch, missing source).
                worker.alive.store(true, Ordering::Relaxed);
                continue;
            }
            match fragment_from_wire(&resp.body, key) {
                Ok(frag) => {
                    worker.alive.store(true, Ordering::Relaxed);
                    return Some(frag);
                }
                Err(_) => {
                    // Corrupt on the wire: never splice bad bytes; let
                    // the next candidate (or the local fallback) render.
                    worker.alive.store(false, Ordering::Relaxed);
                    continue;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> WorkerPool {
        let addrs: Vec<String> = (0..n).map(|i| format!("127.0.0.1:{}", 40000 + i)).collect();
        WorkerPool::new(&addrs).unwrap()
    }

    #[test]
    fn ring_routes_deterministically_and_covers_all_workers() {
        let p = pool(4);
        let mut seen = [0usize; 4];
        for key in 0..4096u64 {
            let order = p.candidates(key.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            assert_eq!(order.len(), 4, "ring walk yields every distinct worker");
            assert_eq!(
                order,
                p.candidates(key.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                "routing is deterministic"
            );
            seen[order[0]] += 1;
        }
        // Consistent hashing spreads home assignments across the pool;
        // with 40 vnodes each worker owns a meaningful share.
        for (i, &n) in seen.iter().enumerate() {
            assert!(n > 4096 / 20, "worker {i} owns too little: {n}/4096");
        }
    }

    #[test]
    fn adding_a_worker_moves_only_part_of_the_keyspace() {
        let small = pool(3);
        let big = pool(4);
        let keys: Vec<u64> = (0..2048u64)
            .map(|k| k.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let moved = keys
            .iter()
            .filter(|&&k| {
                let a = small.candidates(k)[0];
                let b = big.candidates(k)[0];
                // Worker indices are the same for shared addresses.
                a != b
            })
            .count();
        // Naive modulo hashing would move ~3/4 of keys; the ring moves
        // roughly 1/4 (the new worker's share). Allow generous slack.
        assert!(
            moved < keys.len() / 2,
            "too much keyspace moved: {moved}/{}",
            keys.len()
        );
        assert!(moved > 0, "the new worker must own something");
    }

    #[test]
    fn empty_pool_has_no_candidates() {
        let p = WorkerPool::new(&[]).unwrap();
        assert!(p.is_empty());
        assert!(p.candidates(7).is_empty());
    }

    #[test]
    fn deadline_tracks_cost_within_bounds() {
        assert_eq!(PoolRemote::deadline(0.0), Duration::from_secs(1));
        assert_eq!(PoolRemote::deadline(5_000_000.0), Duration::from_secs(5));
        assert_eq!(PoolRemote::deadline(1e12), Duration::from_secs(30));
    }

    #[test]
    fn reprobe_is_rate_limited_and_leaves_unreachable_workers_dead() {
        let p = Arc::new(pool(2));
        let remote = PoolRemote::new(Arc::clone(&p), serde_json::json!({}));
        assert!(remote.render_remote(0, 7, 0.0).is_none());
        assert_eq!(p.alive(), 0, "unreachable workers are marked dead");
        // Within the rate-limit window no probes fire...
        p.maybe_revive();
        assert_eq!(p.stats.probes.load(Ordering::Relaxed), 0);
        std::thread::sleep(Duration::from_millis(300));
        // ...after it, every dead worker gets one probe; with nothing
        // listening they all stay dead.
        p.maybe_revive();
        assert_eq!(p.stats.probes.load(Ordering::Relaxed), 2);
        assert_eq!(p.alive(), 0);
    }

    #[test]
    fn reprobe_revives_a_worker_that_answers_status() {
        // A port no other test in this binary touches: the sibling
        // tests rely on their 40000-range ports staying unbound.
        let p = Arc::new(WorkerPool::new(&["127.0.0.1:41997".to_string()]).unwrap());
        p.workers[0].alive.store(false, Ordering::Relaxed);
        // A plain TCP listener that speaks just enough HTTP: accept one
        // connection and answer 200 to whatever arrives.
        let listener = std::net::TcpListener::bind(p.workers[0].addr);
        let Ok(listener) = listener else {
            return; // port taken on this machine: skip rather than flake
        };
        let server = std::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                use std::io::{Read, Write};
                let mut buf = [0u8; 1024];
                let _ = conn.read(&mut buf);
                let _ = conn.write_all(
                    b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: close\r\n\r\n{}",
                );
            }
        });
        std::thread::sleep(Duration::from_millis(300));
        p.maybe_revive();
        assert_eq!(p.alive(), 1, "an answering worker rejoins the pool");
        let _ = server.join();
    }

    #[test]
    fn dead_worker_pool_falls_back_to_none() {
        // Nothing listens on these ports; every dispatch fails fast and
        // render_remote reports None (the caller renders locally).
        let p = Arc::new(pool(2));
        let remote = PoolRemote::new(Arc::clone(&p), serde_json::json!({}));
        assert!(remote.render_remote(0, 99, 0.0).is_none());
        assert_eq!(p.stats.dispatched.load(Ordering::Relaxed), 2);
        assert_eq!(p.stats.re_dispatched.load(Ordering::Relaxed), 1);
        assert_eq!(p.alive(), 0);
    }
}
