//! Property-based tests for the data layer: value comparison laws,
//! data-array algebra, and annotation JSON round trips.

use proptest::prelude::*;
use v2v_data::{json, DataArray, Value};
use v2v_time::Rational;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-100i64..100, 1i64..50).prop_map(|(n, d)| Value::Rational(Rational::new(n, d))),
        "[a-z]{0,8}".prop_map(Value::Str),
    ]
}

fn instant_strategy() -> impl Strategy<Value = Rational> {
    (-300i64..300, 1i64..31).prop_map(|(n, d)| Rational::new(n, d))
}

fn array_strategy() -> impl Strategy<Value = DataArray> {
    prop::collection::vec((instant_strategy(), value_strategy()), 0..24)
        .prop_map(DataArray::from_pairs)
}

proptest! {
    #[test]
    fn compare_is_antisymmetric(a in value_strategy(), b in value_strategy()) {
        if let (Some(x), Some(y)) = (a.compare(&b), b.compare(&a)) {
            prop_assert_eq!(x, y.reverse());
        }
    }

    #[test]
    fn compare_self_is_equal_unless_null(a in value_strategy()) {
        match a.compare(&a) {
            Some(ord) => prop_assert_eq!(ord, std::cmp::Ordering::Equal),
            None => prop_assert!(a.is_null() || a.as_f64().is_none()),
        }
    }

    #[test]
    fn compare_numeric_transitive(
        a in -100i64..100,
        bn in -100i64..100,
        bd in 1i64..20,
        c in -100i64..100,
    ) {
        use std::cmp::Ordering::Less;
        let va = Value::Int(a);
        let vb = Value::Rational(Rational::new(bn, bd));
        let vc = Value::Float(c as f64);
        if va.compare(&vb) == Some(Less) && vb.compare(&vc) == Some(Less) {
            prop_assert_eq!(va.compare(&vc), Some(Less));
        }
    }

    #[test]
    fn array_get_matches_insert_order(pairs in prop::collection::vec((instant_strategy(), value_strategy()), 0..24)) {
        let arr = DataArray::from_pairs(pairs.clone());
        // Later duplicates win.
        let mut last: std::collections::BTreeMap<Rational, Value> = Default::default();
        for (t, v) in pairs {
            last.insert(t, v);
        }
        prop_assert_eq!(arr.len(), last.len());
        for (t, v) in &last {
            prop_assert_eq!(arr.get(*t), v);
        }
    }

    #[test]
    fn slice_partitions_counts(arr in array_strategy(), lo in instant_strategy(), hi in instant_strategy()) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let inside = arr.slice(lo, hi);
        for (t, v) in inside.iter() {
            prop_assert!(t >= lo && t < hi);
            prop_assert_eq!(arr.get(t), v);
        }
        let n_inside = arr.iter().filter(|(t, _)| *t >= lo && *t < hi).count();
        prop_assert_eq!(inside.len(), n_inside);
    }

    #[test]
    fn sample_and_hold_is_last_at_or_before(arr in array_strategy(), t in instant_strategy()) {
        let expect = arr
            .iter()
            .filter(|(ti, _)| *ti <= t)
            .last()
            .map(|(_, v)| v.clone())
            .unwrap_or(Value::Null);
        prop_assert_eq!(arr.get_at_or_before(t).clone(), expect);
    }

    #[test]
    fn merge_is_right_biased(a in array_strategy(), b in array_strategy()) {
        let mut merged = a.clone();
        merged.merge(&b);
        for (t, v) in b.iter() {
            prop_assert_eq!(merged.get(t), v);
        }
        for (t, v) in a.iter() {
            if !b.contains(t) {
                prop_assert_eq!(merged.get(t), v);
            }
        }
    }

    #[test]
    fn annotation_json_round_trip(arr in array_strategy()) {
        // Float values survive approximately; the strategy avoids floats
        // to assert exact equality (rationals/ints/strings/bools/null).
        let text = json::to_annotation_json(&arr);
        let back = json::parse_annotations(&text).unwrap();
        prop_assert_eq!(back, arr);
    }
}
