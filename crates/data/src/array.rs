//! Time-indexed data arrays: the paper's `data_arrays` spec inputs.

use crate::value::Value;
use std::collections::BTreeMap;
use v2v_time::{Rational, TimeSet};

/// A rational-time-indexed array of values, referenced from specs as
/// `name[t]`.
///
/// Lookups at absent instants return [`Value::Null`] — the relational
/// convention for "no row at this timestamp" (e.g. no detections ran, as
/// opposed to an empty detection list).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DataArray {
    entries: BTreeMap<Rational, Value>,
}

/// The shared NULL returned for absent instants.
static NULL: Value = Value::Null;

impl DataArray {
    /// An empty array.
    pub fn new() -> DataArray {
        DataArray::default()
    }

    /// Builds from `(time, value)` pairs; later duplicates win.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Rational, Value)>) -> DataArray {
        DataArray {
            entries: pairs.into_iter().collect(),
        }
    }

    /// Inserts or replaces the value at `t`.
    pub fn insert(&mut self, t: Rational, v: Value) {
        self.entries.insert(t, v);
    }

    /// The value at exactly `t`, or `Null` when absent.
    pub fn get(&self, t: Rational) -> &Value {
        self.entries.get(&t).unwrap_or(&NULL)
    }

    /// The value at the greatest instant `<= t` (sample-and-hold lookup,
    /// useful when data is sampled coarser than the video grid).
    pub fn get_at_or_before(&self, t: Rational) -> &Value {
        self.entries
            .range(..=t)
            .next_back()
            .map(|(_, v)| v)
            .unwrap_or(&NULL)
    }

    /// `true` if a value exists at exactly `t`.
    pub fn contains(&self, t: Rational) -> bool {
        self.entries.contains_key(&t)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the array holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(time, value)` in time order.
    pub fn iter(&self) -> impl Iterator<Item = (Rational, &Value)> {
        self.entries.iter().map(|(t, v)| (*t, v))
    }

    /// The instants at which entries exist.
    pub fn instants(&self) -> impl Iterator<Item = Rational> + '_ {
        self.entries.keys().copied()
    }

    /// The entry domain as a [`TimeSet`].
    pub fn domain(&self) -> TimeSet {
        TimeSet::from_instants(self.entries.keys().copied())
    }

    /// Restricts to entries with `lo <= t < hi` (bounded materialization).
    pub fn slice(&self, lo: Rational, hi: Rational) -> DataArray {
        DataArray {
            entries: self
                .entries
                .range(lo..hi)
                .map(|(t, v)| (*t, v.clone()))
                .collect(),
        }
    }

    /// Merges another array over this one (other wins on conflicts).
    pub fn merge(&mut self, other: &DataArray) {
        for (t, v) in &other.entries {
            self.entries.insert(*t, v.clone());
        }
    }
}

impl FromIterator<(Rational, Value)> for DataArray {
    fn from_iter<T: IntoIterator<Item = (Rational, Value)>>(iter: T) -> Self {
        DataArray::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_time::r;

    #[test]
    fn exact_lookup_and_null_default() {
        let mut a = DataArray::new();
        a.insert(r(1, 30), Value::Int(5));
        assert_eq!(a.get(r(1, 30)), &Value::Int(5));
        assert_eq!(a.get(r(2, 30)), &Value::Null);
        assert!(a.contains(r(1, 30)));
        assert!(!a.contains(r(2, 30)));
    }

    #[test]
    fn sample_and_hold() {
        let a = DataArray::from_pairs([(r(0, 1), Value::Int(1)), (r(1, 1), Value::Int(2))]);
        assert_eq!(a.get_at_or_before(r(1, 2)), &Value::Int(1));
        assert_eq!(a.get_at_or_before(r(1, 1)), &Value::Int(2));
        assert_eq!(a.get_at_or_before(r(5, 1)), &Value::Int(2));
        assert_eq!(a.get_at_or_before(r(-1, 1)), &Value::Null);
    }

    #[test]
    fn slice_bounds_are_half_open() {
        let a = DataArray::from_pairs((0..10).map(|i| (r(i, 1), Value::Int(i))));
        let s = a.slice(r(3, 1), r(7, 1));
        assert_eq!(s.len(), 4);
        assert!(s.contains(r(3, 1)));
        assert!(!s.contains(r(7, 1)));
    }

    #[test]
    fn domain_is_exact() {
        let a = DataArray::from_pairs([(r(0, 1), Value::Int(0)), (r(1, 2), Value::Int(1))]);
        let d = a.domain();
        assert_eq!(d.count(), 2);
        assert!(d.contains(r(1, 2)));
    }

    #[test]
    fn merge_prefers_other() {
        let mut a = DataArray::from_pairs([(r(0, 1), Value::Int(1))]);
        let b = DataArray::from_pairs([(r(0, 1), Value::Int(9)), (r(1, 1), Value::Int(2))]);
        a.merge(&b);
        assert_eq!(a.get(r(0, 1)), &Value::Int(9));
        assert_eq!(a.len(), 2);
    }
}
