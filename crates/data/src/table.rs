//! In-memory relational store: tables of [`Value`] rows.

use crate::value::Value;
use crate::DataError;
use std::collections::HashMap;

/// A named table with a fixed column list.
#[derive(Clone, Debug, Default)]
pub struct Table {
    name: String,
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, columns: Vec<String>) -> Table {
        Table {
            name: name.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column.
    pub fn column_index(&self, name: &str) -> Result<usize, DataError> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| DataError::Unknown {
                kind: "column",
                name: name.to_string(),
            })
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity does not match the column list.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row arity mismatch for table {}",
            self.name
        );
        self.rows.push(row);
    }

    /// Appends a row given `(column, value)` pairs; missing columns get
    /// NULL.
    pub fn push_record(&mut self, record: &[(&str, Value)]) -> Result<(), DataError> {
        let mut row = vec![Value::Null; self.columns.len()];
        for (col, v) in record {
            let i = self.column_index(col)?;
            row[i] = v.clone();
        }
        self.rows.push(row);
        Ok(())
    }
}

/// A collection of named tables.
#[derive(Clone, Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table, DataError> {
        self.tables.get(name).ok_or_else(|| DataError::Unknown {
            kind: "table",
            name: name.to_string(),
        })
    }

    /// Mutable lookup.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, DataError> {
        self.tables.get_mut(name).ok_or_else(|| DataError::Unknown {
            kind: "table",
            name: name.to_string(),
        })
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Table {
        let mut t = Table::new("people", vec!["name".into(), "age".into()]);
        t.push_row(vec![Value::from("ada"), Value::from(36i64)]);
        t.push_row(vec![Value::from("alan"), Value::from(41i64)]);
        t
    }

    #[test]
    fn column_lookup() {
        let t = people();
        assert_eq!(t.column_index("age").unwrap(), 1);
        assert!(t.column_index("nope").is_err());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn push_record_fills_nulls() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push_record(&[("b", Value::Int(1))]).unwrap();
        assert_eq!(t.rows()[0], vec![Value::Null, Value::Int(1)]);
        assert!(t.push_record(&[("zz", Value::Int(1))]).is_err());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = people();
        t.push_row(vec![Value::Null]);
    }

    #[test]
    fn database_lookup() {
        let mut db = Database::new();
        db.add_table(people());
        assert!(db.table("people").is_ok());
        assert!(db.table("ghosts").is_err());
        db.table_mut("people")
            .unwrap()
            .push_row(vec![Value::from("grace"), Value::from(35i64)]);
        assert_eq!(db.table("people").unwrap().len(), 3);
    }
}
