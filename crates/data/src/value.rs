//! The scalar value model joined with video data.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use v2v_frame::BoxCoord;
use v2v_time::Rational;

/// A relational value.
///
/// The paper's data joins revolve around "a tuple of a rational timestamp
/// and a scalar element"; `Rational` is therefore a first-class variant,
/// as is `Boxes` (the `List⟨BoxCoord⟩` fed to `BoundingBox`).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Value {
    /// SQL NULL / missing.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Exact rational (timestamps).
    Rational(Rational),
    /// UTF-8 string.
    Str(String),
    /// Object bounding boxes for one frame.
    Boxes(Vec<BoxCoord>),
    /// Generic list.
    List(Vec<Value>),
}

impl Value {
    /// `true` if this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Boolean view (`Bool` only).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Integer view (`Int`, or integral `Rational`).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Rational(r) if r.is_integer() => Some(r.num()),
            _ => None,
        }
    }

    /// Numeric view (`Int`, `Float`, `Rational` — lossy for display/compare).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Rational(r) => Some(r.to_f64()),
            _ => None,
        }
    }

    /// Exact rational view (`Rational`, `Int`).
    pub fn as_rational(&self) -> Option<Rational> {
        match self {
            Value::Rational(r) => Some(*r),
            Value::Int(i) => Some(Rational::from_int(*i)),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Bounding-box view. `Null` reads as the empty list (the common
    /// "no detections on this frame" encoding).
    pub fn as_boxes(&self) -> Option<&[BoxCoord]> {
        match self {
            Value::Boxes(b) => Some(b),
            Value::Null => Some(&[]),
            _ => None,
        }
    }

    /// The type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Rational(_) => "rational",
            Value::Str(_) => "string",
            Value::Boxes(_) => "boxes",
            Value::List(_) => "list",
        }
    }

    /// SQL-style comparison: numerics compare cross-type, strings compare
    /// lexicographically, NULL compares to nothing.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            // Exact path for rational/int pairs.
            (a, b) => match (a.as_rational(), b.as_rational()) {
                (Some(x), Some(y)) => Some(x.cmp(&y)),
                _ => match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => x.partial_cmp(&y),
                    _ => None,
                },
            },
        }
    }

    /// Serializes with the plain-JSON annotation conventions — the exact
    /// inverse of [`Value::from_json`]. Scalars map to JSON scalars,
    /// `Boxes` to arrays of `{x, y, w, h, …}` objects (the empty list
    /// uses the tagged form to stay distinguishable from `List`), and
    /// `Rational` uses the tagged form to stay exact.
    pub fn to_json(&self) -> serde_json::Value {
        match self {
            Value::Null => serde_json::Value::Null,
            Value::Bool(b) => serde_json::Value::Bool(*b),
            Value::Int(i) => serde_json::json!(i),
            Value::Float(f) => serde_json::json!(f),
            Value::Str(s) => serde_json::Value::String(s.clone()),
            // Tagged forms parse back through from_json's object fallback.
            Value::Rational(_) => serde_json::to_value(self).expect("serializable"),
            Value::Boxes(b) if b.is_empty() => serde_json::to_value(self).expect("serializable"),
            Value::Boxes(b) => serde_json::to_value(b).expect("serializable"),
            Value::List(items) => {
                serde_json::Value::Array(items.iter().map(Value::to_json).collect())
            }
        }
    }

    /// Converts a `serde_json::Value` with the conventions V2V annotation
    /// files use: arrays of `{x, y, w, h, …}` objects become `Boxes`,
    /// two-element integer arrays under a `"rational"` key are produced by
    /// the explicit enum encoding, numbers become `Int`/`Float`.
    pub fn from_json(v: &serde_json::Value) -> Value {
        match v {
            serde_json::Value::Null => Value::Null,
            serde_json::Value::Bool(b) => Value::Bool(*b),
            serde_json::Value::Number(n) => {
                if let Some(i) = n.as_i64() {
                    Value::Int(i)
                } else {
                    Value::Float(n.as_f64().unwrap_or(f64::NAN))
                }
            }
            serde_json::Value::String(s) => Value::Str(s.clone()),
            serde_json::Value::Array(items) => {
                if !items.is_empty()
                    && items.iter().all(|it| {
                        it.as_object().is_some_and(|o| {
                            ["x", "y", "w", "h"].iter().all(|k| o.contains_key(*k))
                        })
                    })
                {
                    let boxes = items
                        .iter()
                        .filter_map(|it| serde_json::from_value(it.clone()).ok())
                        .collect();
                    Value::Boxes(boxes)
                } else {
                    Value::List(items.iter().map(Value::from_json).collect())
                }
            }
            serde_json::Value::Object(_) => {
                // Fall back to the tagged enum encoding.
                serde_json::from_value(v.clone()).unwrap_or(Value::Null)
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Rational(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Boxes(b) => write!(f, "[{} boxes]", b.len()),
            Value::List(l) => write!(f, "[{} items]", l.len()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<Rational> for Value {
    fn from(v: Rational) -> Value {
        Value::Rational(v)
    }
}

impl From<Vec<BoxCoord>> for Value {
    fn from(v: Vec<BoxCoord>) -> Value {
        Value::Boxes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_time::r;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Rational(r(10, 2)).as_int(), Some(5));
        assert_eq!(Value::Rational(r(1, 2)).as_int(), None);
        assert_eq!(Value::Int(5).as_rational(), Some(r(5, 1)));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Null.as_boxes(), Some(&[][..]));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn comparison_cross_type_numeric() {
        assert_eq!(
            Value::Int(1).compare(&Value::Rational(r(3, 2))),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(1.5).compare(&Value::Int(1)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Rational(r(1, 3)).compare(&Value::Rational(r(2, 6))),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
        assert_eq!(Value::Str("a".into()).compare(&Value::Int(1)), None);
        assert_eq!(
            Value::Str("a".into()).compare(&Value::Str("b".into())),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn from_json_detects_boxes() {
        let js: serde_json::Value = serde_json::json!([
            {"x": 0.1, "y": 0.2, "w": 0.3, "h": 0.4, "label": "zebra"},
            {"x": 0.5, "y": 0.5, "w": 0.1, "h": 0.1}
        ]);
        let v = Value::from_json(&js);
        let boxes = v.as_boxes().unwrap();
        assert_eq!(boxes.len(), 2);
        assert_eq!(boxes[0].label, "zebra");
    }

    #[test]
    fn from_json_plain_types() {
        assert_eq!(Value::from_json(&serde_json::json!(null)), Value::Null);
        assert_eq!(Value::from_json(&serde_json::json!(3)), Value::Int(3));
        assert_eq!(Value::from_json(&serde_json::json!(1.5)), Value::Float(1.5));
        assert_eq!(
            Value::from_json(&serde_json::json!([1, 2])),
            Value::List(vec![Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            Value::from_json(&serde_json::json!("hi")),
            Value::Str("hi".into())
        );
    }

    #[test]
    fn serde_round_trip_tagged() {
        let v = Value::Rational(r(30000, 1001));
        let js = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&js).unwrap();
        assert_eq!(v, back);
    }
}
