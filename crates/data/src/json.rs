//! JSON annotation loading.
//!
//! Two layouts are accepted, matching how annotation tooling exports
//! per-frame data:
//!
//! **Sparse** — a list of timestamped entries (timestamps as `[num, den]`
//! pairs, plain numbers, or `"num/den"` strings):
//!
//! ```json
//! [ {"t": [1, 30], "value": [{"x":0.1,"y":0.2,"w":0.1,"h":0.1,"label":"zebra"}]},
//!   {"t": 2.0,     "value": 42} ]
//! ```
//!
//! **Dense** — a uniform grid with one value per instant:
//!
//! ```json
//! { "start": [0, 1], "step": [1, 30], "values": [null, 42, ...] }
//! ```

use crate::array::DataArray;
use crate::value::Value;
use crate::DataError;
use std::path::Path;
use v2v_time::Rational;

fn parse_time(v: &serde_json::Value) -> Result<Rational, DataError> {
    match v {
        serde_json::Value::Number(n) => {
            if let Some(i) = n.as_i64() {
                Ok(Rational::from_int(i))
            } else {
                // Floats are snapped to a millisecond grid to stay exact.
                let f = n.as_f64().unwrap_or(0.0);
                Ok(Rational::new((f * 1000.0).round() as i64, 1000))
            }
        }
        serde_json::Value::Array(parts) if parts.len() == 2 => {
            let num = parts[0]
                .as_i64()
                .ok_or_else(|| DataError::BadJson("rational numerator".into()))?;
            let den = parts[1]
                .as_i64()
                .ok_or_else(|| DataError::BadJson("rational denominator".into()))?;
            Rational::checked_new(num, den)
                .map_err(|e| DataError::BadJson(format!("bad rational: {e}")))
        }
        serde_json::Value::String(s) => s
            .parse()
            .map_err(|e| DataError::BadJson(format!("bad rational string: {e}"))),
        other => Err(DataError::BadJson(format!(
            "timestamp must be number, [num,den] or string, got {other}"
        ))),
    }
}

/// Parses annotation JSON text into a [`DataArray`].
pub fn parse_annotations(text: &str) -> Result<DataArray, DataError> {
    let root: serde_json::Value =
        serde_json::from_str(text).map_err(|e| DataError::BadJson(e.to_string()))?;
    match &root {
        serde_json::Value::Array(entries) => {
            let mut out = DataArray::new();
            for e in entries {
                let obj = e
                    .as_object()
                    .ok_or_else(|| DataError::BadJson("entry must be an object".into()))?;
                let t = parse_time(
                    obj.get("t")
                        .or_else(|| obj.get("timestamp"))
                        .ok_or_else(|| DataError::BadJson("entry missing 't'".into()))?,
                )?;
                let v = obj
                    .get("value")
                    .map(Value::from_json)
                    .unwrap_or(Value::Null);
                out.insert(t, v);
            }
            Ok(out)
        }
        serde_json::Value::Object(obj) => {
            let start = parse_time(
                obj.get("start")
                    .ok_or_else(|| DataError::BadJson("dense layout missing 'start'".into()))?,
            )?;
            let step = parse_time(
                obj.get("step")
                    .ok_or_else(|| DataError::BadJson("dense layout missing 'step'".into()))?,
            )?;
            if !step.is_positive() {
                return Err(DataError::BadJson("dense step must be positive".into()));
            }
            let values = obj
                .get("values")
                .and_then(|v| v.as_array())
                .ok_or_else(|| DataError::BadJson("dense layout missing 'values'".into()))?;
            let mut out = DataArray::new();
            for (k, v) in values.iter().enumerate() {
                let t = start + step * Rational::from_int(k as i64);
                out.insert(t, Value::from_json(v));
            }
            Ok(out)
        }
        _ => Err(DataError::BadJson(
            "annotations must be a list or a dense object".into(),
        )),
    }
}

/// Loads an annotation file from disk.
pub fn load_annotations(path: impl AsRef<Path>) -> Result<DataArray, DataError> {
    let text = std::fs::read_to_string(path)?;
    parse_annotations(&text)
}

/// Serializes a [`DataArray`] to sparse annotation JSON.
pub fn to_annotation_json(array: &DataArray) -> String {
    let entries: Vec<serde_json::Value> = array
        .iter()
        .map(|(t, v)| {
            serde_json::json!({
                "t": [t.num(), t.den()],
                "value": v.to_json(),
            })
        })
        .collect();
    serde_json::to_string_pretty(&entries).expect("annotation JSON is serializable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_time::r;

    #[test]
    fn sparse_layout_parses() {
        let a = parse_annotations(
            r#"[
                {"t": [1, 30], "value": 5},
                {"t": 2, "value": "zebra"},
                {"t": "1/2", "value": null},
                {"timestamp": 0.25, "value": true}
            ]"#,
        )
        .unwrap();
        assert_eq!(a.get(r(1, 30)), &Value::Int(5));
        assert_eq!(a.get(r(2, 1)), &Value::Str("zebra".into()));
        assert_eq!(a.get(r(1, 2)), &Value::Null);
        assert_eq!(a.get(r(1, 4)), &Value::Bool(true));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn dense_layout_parses() {
        let a =
            parse_annotations(r#"{"start": [0, 1], "step": [1, 2], "values": [1, 2, 3]}"#).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.get(r(1, 2)), &Value::Int(2));
        assert_eq!(a.get(r(1, 1)), &Value::Int(3));
    }

    #[test]
    fn boxes_in_sparse_layout() {
        let a = parse_annotations(
            r#"[{"t": [0,1], "value": [{"x":0.1,"y":0.1,"w":0.2,"h":0.2,"label":"car"}]}]"#,
        )
        .unwrap();
        let boxes = a.get(r(0, 1)).as_boxes().unwrap();
        assert_eq!(boxes.len(), 1);
        assert_eq!(boxes[0].label, "car");
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_annotations("42").is_err());
        assert!(parse_annotations(r#"[{"value": 3}]"#).is_err());
        assert!(parse_annotations(r#"[{"t": [1, 0], "value": 3}]"#).is_err());
        assert!(parse_annotations(r#"{"start": [0,1], "step": [0,1], "values": []}"#).is_err());
        assert!(parse_annotations("not json").is_err());
    }

    #[test]
    fn round_trip_through_text() {
        let a =
            DataArray::from_pairs([(r(0, 1), Value::Int(1)), (r(1, 30), Value::Str("x".into()))]);
        let text = to_annotation_json(&a);
        let back = parse_annotations(&text).unwrap();
        assert_eq!(back.get(r(0, 1)), &Value::Int(1));
        assert_eq!(back.get(r(1, 30)), &Value::Str("x".into()));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("v2v_data_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("annot.json");
        let a = DataArray::from_pairs([(r(1, 24), Value::Float(0.5))]);
        std::fs::write(&path, to_annotation_json(&a)).unwrap();
        let back = load_annotations(&path).unwrap();
        assert_eq!(back.get(r(1, 24)), &Value::Float(0.5));
        std::fs::remove_file(&path).unwrap();
    }
}
