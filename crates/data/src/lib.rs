#![warn(missing_docs)]

//! Relational data substrate for V2V.
//!
//! Video synthesis "must enable joining relational data with video data"
//! (paper §IV-B). This crate supplies the data side of that join:
//!
//! * [`Value`] — the scalar model (including rational timestamps and
//!   bounding-box lists, the two types the paper's examples join on);
//! * [`DataArray`] — the paper's *data array*: a rational-time-indexed
//!   array referenced from specs as `vid1_bb[t]`;
//! * [`json`] — loaders for JSON annotation files (`annot1.json` in the
//!   paper's example spec), in both sparse and dense layouts;
//! * [`Database`] / [`sql`] — an in-memory relational store and a small
//!   SQL subset (`SELECT … FROM … WHERE … [ORDER BY] [LIMIT]`), so specs
//!   can define data arrays with queries like the paper's
//!   `SELECT timestamp, frame_objects FROM video_objects WHERE …`;
//! * bounded materialization — queries can be materialized "in portions
//!   by bounding the time" ([`sql::materialize_bounded`]).

pub mod array;
pub mod json;
pub mod sql;
pub mod table;
pub mod value;

pub use array::DataArray;
pub use sql::{materialize_bounded, AggFunc, Query, SelectItem};
pub use table::{Database, Table};
pub use value::Value;

/// Errors raised by the data layer.
#[derive(Debug, thiserror::Error)]
pub enum DataError {
    /// JSON parse or shape error while loading annotations.
    #[error("invalid annotation JSON: {0}")]
    BadJson(String),
    /// SQL text failed to parse.
    #[error("SQL parse error: {0}")]
    SqlParse(String),
    /// Query referenced a missing table or column.
    #[error("unknown {kind} '{name}'")]
    Unknown {
        /// "table" or "column".
        kind: &'static str,
        /// The missing identifier.
        name: String,
    },
    /// Query evaluation hit an incompatible comparison.
    #[error("cannot compare {0} with {1}")]
    BadComparison(String, String),
    /// Underlying I/O failure.
    #[error("i/o error: {0}")]
    Io(#[from] std::io::Error),
}
