//! A small SQL subset for defining spec data arrays.
//!
//! Supports exactly the query shape the paper's example uses (§IV-B):
//!
//! ```sql
//! SELECT timestamp, frame_objects
//! FROM video_objects
//! WHERE video = 'kabr_cam2' AND model = 'yolov5m'
//!   AND timestamp BETWEEN 0 AND 60
//! ORDER BY timestamp
//! LIMIT 1000;
//! ```
//!
//! … plus the analytics shape from the paper's introduction ("how many
//! videos contained object X per day?"):
//!
//! ```sql
//! SELECT video, count(*) FROM video_objects
//! WHERE model = 'yolov5m' GROUP BY video;
//! ```
//!
//! Grammar: `SELECT items FROM ident [WHERE pred {AND pred}]
//! [GROUP BY ident] [ORDER BY ident [ASC|DESC]] [LIMIT n]`, where an
//! item is a column or `COUNT|SUM|MIN|MAX|AVG(col)` / `COUNT(*)`;
//! predicates are `col (=|!=|<>|<|<=|>|>=) literal` and
//! `col BETWEEN lit AND lit`. Literals: single/double-quoted strings,
//! integers, floats, rationals (`n/d`), `TRUE`, `FALSE`, `NULL`.

use crate::array::DataArray;
use crate::table::Database;
use crate::value::Value;
use crate::DataError;
use std::cmp::Ordering;
use v2v_time::Rational;

/// Comparison operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    fn eval(self, ord: Option<Ordering>) -> bool {
        match (self, ord) {
            (CmpOp::Eq, Some(Ordering::Equal)) => true,
            (CmpOp::Ne, Some(o)) => o != Ordering::Equal,
            (CmpOp::Lt, Some(Ordering::Less)) => true,
            (CmpOp::Le, Some(Ordering::Less | Ordering::Equal)) => true,
            (CmpOp::Gt, Some(Ordering::Greater)) => true,
            (CmpOp::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
            _ => false,
        }
    }
}

/// A WHERE predicate.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// `col op literal`
    Compare {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand literal.
        value: Value,
    },
    /// `col BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column name.
        column: String,
        /// Lower bound.
        lo: Value,
        /// Upper bound.
        hi: Value,
    },
}

/// An aggregate function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFunc {
    /// `COUNT(col)` / `COUNT(*)`.
    Count,
    /// `SUM(col)` (numeric).
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
    /// `AVG(col)` (numeric).
    Avg,
}

impl AggFunc {
    fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// One SELECT item.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// A plain column reference.
    Column(String),
    /// An aggregate over a column (`None` = `*`, COUNT only).
    Aggregate {
        /// The function.
        func: AggFunc,
        /// Aggregated column; `None` means `*`.
        arg: Option<String>,
    },
}

impl SelectItem {
    fn label(&self) -> String {
        match self {
            SelectItem::Column(c) => c.clone(),
            SelectItem::Aggregate { func, arg } => {
                format!("{}({})", func.name(), arg.as_deref().unwrap_or("*"))
            }
        }
    }
}

/// A parsed query.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    /// Projected items (`None` = `*`).
    pub columns: Option<Vec<SelectItem>>,
    /// Source table.
    pub table: String,
    /// Conjunctive predicates.
    pub predicates: Vec<Predicate>,
    /// Optional grouping column (aggregation queries).
    pub group_by: Option<String>,
    /// Optional ordering column and direction (`true` = ascending).
    pub order_by: Option<(String, bool)>,
    /// Optional row limit.
    pub limit: Option<usize>,
}

impl Query {
    /// Parses SQL text.
    pub fn parse(sql: &str) -> Result<Query, DataError> {
        Parser::new(sql)?.query()
    }

    /// Executes against a database, returning projected column names and
    /// rows. Aggregation queries (any aggregate item, optionally with
    /// `GROUP BY`) return one row per group.
    pub fn execute(&self, db: &Database) -> Result<(Vec<String>, Vec<Vec<Value>>), DataError> {
        let table = db.table(&self.table)?;
        // Resolve predicate columns once.
        let preds: Vec<(usize, &Predicate)> = self
            .predicates
            .iter()
            .map(|p| {
                let col = match p {
                    Predicate::Compare { column, .. } | Predicate::Between { column, .. } => column,
                };
                table.column_index(col).map(|i| (i, p))
            })
            .collect::<Result<_, _>>()?;
        let filtered: Vec<&Vec<Value>> = table
            .rows()
            .iter()
            .filter(|row| {
                preds.iter().all(|(i, p)| {
                    let cell = &row[*i];
                    match p {
                        Predicate::Compare { op, value, .. } => op.eval(cell.compare(value)),
                        Predicate::Between { lo, hi, .. } => {
                            CmpOp::Ge.eval(cell.compare(lo)) && CmpOp::Le.eval(cell.compare(hi))
                        }
                    }
                })
            })
            .collect();

        let has_aggregate = self.columns.as_ref().is_some_and(|items| {
            items
                .iter()
                .any(|i| matches!(i, SelectItem::Aggregate { .. }))
        });

        let (cols, mut rows) = if has_aggregate || self.group_by.is_some() {
            self.execute_grouped(table, &filtered)?
        } else {
            // Plain projection.
            let proj: Vec<(String, usize)> = match &self.columns {
                None => table
                    .columns()
                    .iter()
                    .enumerate()
                    .map(|(i, c)| (c.clone(), i))
                    .collect(),
                Some(items) => items
                    .iter()
                    .map(|item| match item {
                        SelectItem::Column(c) => table.column_index(c).map(|i| (c.clone(), i)),
                        SelectItem::Aggregate { .. } => unreachable!("handled above"),
                    })
                    .collect::<Result<_, _>>()?,
            };
            let rows = filtered
                .iter()
                .map(|row| proj.iter().map(|(_, i)| row[*i].clone()).collect())
                .collect();
            (proj.into_iter().map(|(n, _)| n).collect::<Vec<_>>(), rows)
        };

        if let Some((col, asc)) = &self.order_by {
            let sort_idx =
                cols.iter()
                    .position(|name| name == col)
                    .ok_or_else(|| DataError::Unknown {
                        kind: "column",
                        name: col.clone(),
                    })?;
            rows.sort_by(|a: &Vec<Value>, b: &Vec<Value>| {
                let ord = a[sort_idx].compare(&b[sort_idx]).unwrap_or(Ordering::Equal);
                if *asc {
                    ord
                } else {
                    ord.reverse()
                }
            });
        }
        if let Some(n) = self.limit {
            rows.truncate(n);
        }
        Ok((cols, rows))
    }

    /// Grouped/aggregated execution.
    fn execute_grouped(
        &self,
        table: &crate::table::Table,
        filtered: &[&Vec<Value>],
    ) -> Result<(Vec<String>, Vec<Vec<Value>>), DataError> {
        let items = self.columns.as_ref().ok_or_else(|| {
            DataError::SqlParse("aggregation requires an explicit select list".into())
        })?;
        // Validate: plain columns must be the GROUP BY column.
        for item in items {
            if let SelectItem::Column(c) = item {
                if self.group_by.as_deref() != Some(c.as_str()) {
                    return Err(DataError::SqlParse(format!(
                        "column '{c}' must appear in GROUP BY"
                    )));
                }
            }
        }
        let group_idx = self
            .group_by
            .as_ref()
            .map(|c| table.column_index(c))
            .transpose()?;
        // Resolve aggregate argument columns.
        let arg_idx: Vec<Option<usize>> = items
            .iter()
            .map(|item| match item {
                SelectItem::Aggregate { arg: Some(c), .. } => table.column_index(c).map(Some),
                _ => Ok(None),
            })
            .collect::<Result<_, _>>()?;

        // Group preserving first-seen order (display-friendly, and stable
        // for per-day style buckets).
        let mut order: Vec<Value> = Vec::new();
        let mut groups: Vec<Vec<&Vec<Value>>> = Vec::new();
        for row in filtered {
            let key = group_idx.map(|i| row[i].clone()).unwrap_or(Value::Null);
            let slot = order.iter().position(|k| k == &key);
            match slot {
                Some(i) => groups[i].push(row),
                None => {
                    order.push(key);
                    groups.push(vec![row]);
                }
            }
        }
        if group_idx.is_none() && groups.is_empty() {
            // Global aggregate over zero rows still yields one row.
            order.push(Value::Null);
            groups.push(Vec::new());
        }

        let cols: Vec<String> = items.iter().map(|i| i.label()).collect();
        let mut rows = Vec::with_capacity(groups.len());
        for (key, group) in order.into_iter().zip(groups) {
            let mut row = Vec::with_capacity(items.len());
            for (item, arg) in items.iter().zip(&arg_idx) {
                match item {
                    SelectItem::Column(_) => row.push(key.clone()),
                    SelectItem::Aggregate { func, .. } => {
                        row.push(aggregate(*func, *arg, &group));
                    }
                }
            }
            rows.push(row);
        }
        Ok((cols, rows))
    }

    /// Executes and shapes the result into a [`DataArray`]: the first
    /// projected column must hold rational timestamps, the second the
    /// values (the paper's "tuple of a rational timestamp and a scalar
    /// element").
    pub fn materialize(&self, db: &Database) -> Result<DataArray, DataError> {
        let (cols, rows) = self.execute(db)?;
        if cols.len() < 2 {
            return Err(DataError::SqlParse(
                "materializing a data array needs (timestamp, value) columns".into(),
            ));
        }
        let mut out = DataArray::new();
        for row in rows {
            let t = row[0].as_rational().ok_or_else(|| {
                DataError::BadComparison(row[0].type_name().into(), "rational timestamp".into())
            })?;
            out.insert(t, row[1].clone());
        }
        Ok(out)
    }
}

/// Materializes a query restricted to `lo <= timestamp <= hi` — the
/// paper's "materialized in portions by bounding the time", giving
/// "fine-grained control between storage and compute".
pub fn materialize_bounded(
    query: &Query,
    db: &Database,
    time_column: &str,
    lo: Rational,
    hi: Rational,
) -> Result<DataArray, DataError> {
    let mut bounded = query.clone();
    bounded.predicates.push(Predicate::Between {
        column: time_column.to_string(),
        lo: Value::Rational(lo),
        hi: Value::Rational(hi),
    });
    bounded.materialize(db)
}

/// Computes one aggregate over a group (NULLs are skipped, SQL-style;
/// `COUNT(*)` counts rows).
fn aggregate(func: AggFunc, arg: Option<usize>, group: &[&Vec<Value>]) -> Value {
    match func {
        AggFunc::Count => match arg {
            None => Value::Int(group.len() as i64),
            Some(i) => Value::Int(group.iter().filter(|row| !row[i].is_null()).count() as i64),
        },
        AggFunc::Sum | AggFunc::Avg => {
            let i = arg.expect("parser requires a column for SUM/AVG");
            let mut sum = 0.0f64;
            let mut n = 0usize;
            let mut exact = v2v_time::Rational::ZERO;
            let mut all_exact = true;
            for row in group {
                let v = &row[i];
                if v.is_null() {
                    continue;
                }
                match v.as_rational() {
                    Some(rv) if all_exact => match exact.checked_add(rv) {
                        Ok(e) => exact = e,
                        Err(_) => all_exact = false,
                    },
                    _ => all_exact = false,
                }
                match v.as_f64() {
                    Some(f) => {
                        sum += f;
                        n += 1;
                    }
                    None => return Value::Null,
                }
            }
            if n == 0 {
                return Value::Null;
            }
            match func {
                AggFunc::Sum if all_exact => Value::Rational(exact),
                AggFunc::Sum => Value::Float(sum),
                _ => Value::Float(sum / n as f64),
            }
        }
        AggFunc::Min | AggFunc::Max => {
            let i = arg.expect("parser requires a column for MIN/MAX");
            let mut best: Option<&Value> = None;
            for row in group {
                let v = &row[i];
                if v.is_null() {
                    continue;
                }
                best = match best {
                    None => Some(v),
                    Some(b) => match v.compare(b) {
                        Some(Ordering::Less) if func == AggFunc::Min => Some(v),
                        Some(Ordering::Greater) if func == AggFunc::Max => Some(v),
                        _ => Some(b),
                    },
                };
            }
            best.cloned().unwrap_or(Value::Null)
        }
    }
}

// ---------------------------------------------------------------------
// Lexer / parser
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Number(Value),
    Symbol(String),
    Star,
    Comma,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

fn lex(sql: &str) -> Result<Vec<Token>, DataError> {
    let mut out = Vec::new();
    let chars: Vec<char> = sql.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            ';' => i += 1,
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                while i < chars.len() && chars[i] != quote {
                    s.push(chars[i]);
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(DataError::SqlParse("unterminated string literal".into()));
                }
                i += 1;
                out.push(Token::Str(s));
            }
            '=' | '(' | ')' => {
                out.push(Token::Symbol(c.to_string()));
                i += 1;
            }
            '<' | '>' | '!' => {
                let mut s = c.to_string();
                if i + 1 < chars.len() && (chars[i + 1] == '=' || (c == '<' && chars[i + 1] == '>'))
                {
                    s.push(chars[i + 1]);
                    i += 1;
                }
                out.push(Token::Symbol(s));
                i += 1;
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let start = i;
                i += 1;
                while i < chars.len()
                    && (chars[i].is_ascii_digit() || chars[i] == '.' || chars[i] == '/')
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let v = if text.contains('/') {
                    Value::Rational(
                        text.parse()
                            .map_err(|e| DataError::SqlParse(format!("bad rational: {e}")))?,
                    )
                } else if text.contains('.') {
                    Value::Float(
                        text.parse()
                            .map_err(|_| DataError::SqlParse(format!("bad float: {text}")))?,
                    )
                } else {
                    Value::Int(
                        text.parse()
                            .map_err(|_| DataError::SqlParse(format!("bad int: {text}")))?,
                    )
                };
                out.push(Token::Number(v));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(DataError::SqlParse(format!(
                    "unexpected character '{other}'"
                )));
            }
        }
    }
    Ok(out)
}

impl Parser {
    fn new(sql: &str) -> Result<Parser, DataError> {
        Ok(Parser {
            tokens: lex(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), DataError> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(DataError::SqlParse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String, DataError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(DataError::SqlParse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn literal(&mut self) -> Result<Value, DataError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(Value::Str(s)),
            Some(Token::Number(v)) => Ok(v),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            other => Err(DataError::SqlParse(format!(
                "expected literal, found {other:?}"
            ))),
        }
    }

    /// `ident` or `AGG(ident|*)`.
    fn select_item(&mut self) -> Result<SelectItem, DataError> {
        let name = self.ident()?;
        let func = match name.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            "avg" => Some(AggFunc::Avg),
            _ => None,
        };
        if let Some(func) = func {
            if matches!(self.peek(), Some(Token::Symbol(s)) if s == "(") {
                self.pos += 1;
                let arg = if matches!(self.peek(), Some(Token::Star)) {
                    self.pos += 1;
                    if func != AggFunc::Count {
                        return Err(DataError::SqlParse(format!(
                            "{}(*) is only valid for COUNT",
                            func.name()
                        )));
                    }
                    None
                } else {
                    Some(self.ident()?)
                };
                match self.next() {
                    Some(Token::Symbol(s)) if s == ")" => {}
                    other => {
                        return Err(DataError::SqlParse(format!(
                            "expected ')', found {other:?}"
                        )));
                    }
                }
                return Ok(SelectItem::Aggregate { func, arg });
            }
        }
        Ok(SelectItem::Column(name))
    }

    fn predicate(&mut self) -> Result<Predicate, DataError> {
        let column = self.ident()?;
        if self.keyword("between") {
            let lo = self.literal()?;
            self.expect_keyword("and")?;
            let hi = self.literal()?;
            return Ok(Predicate::Between { column, lo, hi });
        }
        let op = match self.next() {
            Some(Token::Symbol(s)) => match s.as_str() {
                "=" => CmpOp::Eq,
                "!=" | "<>" => CmpOp::Ne,
                "<" => CmpOp::Lt,
                "<=" => CmpOp::Le,
                ">" => CmpOp::Gt,
                ">=" => CmpOp::Ge,
                other => {
                    return Err(DataError::SqlParse(format!("unknown operator {other}")));
                }
            },
            other => {
                return Err(DataError::SqlParse(format!(
                    "expected operator, found {other:?}"
                )));
            }
        };
        let value = self.literal()?;
        Ok(Predicate::Compare { column, op, value })
    }

    fn query(&mut self) -> Result<Query, DataError> {
        self.expect_keyword("select")?;
        let columns = if matches!(self.peek(), Some(Token::Star)) {
            self.pos += 1;
            None
        } else {
            let mut cols = vec![self.select_item()?];
            while matches!(self.peek(), Some(Token::Comma)) {
                self.pos += 1;
                cols.push(self.select_item()?);
            }
            Some(cols)
        };
        self.expect_keyword("from")?;
        let table = self.ident()?;
        let mut predicates = Vec::new();
        if self.keyword("where") {
            predicates.push(self.predicate()?);
            while self.keyword("and") {
                predicates.push(self.predicate()?);
            }
        }
        let mut group_by = None;
        if self.keyword("group") {
            self.expect_keyword("by")?;
            group_by = Some(self.ident()?);
        }
        let mut order_by = None;
        if self.keyword("order") {
            self.expect_keyword("by")?;
            let col = self.ident()?;
            let asc = if self.keyword("desc") {
                false
            } else {
                self.keyword("asc");
                true
            };
            order_by = Some((col, asc));
        }
        let mut limit = None;
        if self.keyword("limit") {
            match self.next() {
                Some(Token::Number(Value::Int(n))) if n >= 0 => limit = Some(n as usize),
                other => {
                    return Err(DataError::SqlParse(format!(
                        "expected LIMIT count, found {other:?}"
                    )));
                }
            }
        }
        if self.pos != self.tokens.len() {
            return Err(DataError::SqlParse(format!(
                "trailing tokens after query: {:?}",
                self.peek()
            )));
        }
        Ok(Query {
            columns,
            table,
            predicates,
            group_by,
            order_by,
            limit,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Table;
    use v2v_time::r;

    fn objects_db() -> Database {
        let mut t = Table::new(
            "video_objects",
            vec![
                "video".into(),
                "model".into(),
                "timestamp".into(),
                "frame_objects".into(),
            ],
        );
        for i in 0..10 {
            t.push_row(vec![
                Value::from(if i % 2 == 0 { "a.mp4" } else { "b.mp4" }),
                Value::from("yolov5m"),
                Value::Rational(r(i, 30)),
                Value::Int(i),
            ]);
        }
        let mut db = Database::new();
        db.add_table(t);
        db
    }

    #[test]
    fn parse_paper_query() {
        let q = Query::parse(
            "SELECT timestamp, frame_objects FROM video_objects \
             WHERE video = 'a.mp4' AND model = \"yolov5m\";",
        )
        .unwrap();
        assert_eq!(
            q.columns,
            Some(vec![
                SelectItem::Column("timestamp".into()),
                SelectItem::Column("frame_objects".into())
            ])
        );
        assert_eq!(q.table, "video_objects");
        assert_eq!(q.predicates.len(), 2);
    }

    #[test]
    fn execute_filters_and_projects() {
        let db = objects_db();
        let q = Query::parse(
            "SELECT timestamp, frame_objects FROM video_objects WHERE video = 'a.mp4'",
        )
        .unwrap();
        let (cols, rows) = q.execute(&db).unwrap();
        assert_eq!(cols, vec!["timestamp", "frame_objects"]);
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r.len() == 2));
    }

    #[test]
    fn between_order_limit() {
        let db = objects_db();
        let q = Query::parse(
            "SELECT timestamp, frame_objects FROM video_objects \
             WHERE timestamp BETWEEN 1/30 AND 8/30 \
             ORDER BY timestamp DESC LIMIT 3",
        )
        .unwrap();
        let (_, rows) = q.execute(&db).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Rational(r(8, 30)));
        assert_eq!(rows[2][0], Value::Rational(r(6, 30)));
    }

    #[test]
    fn select_star() {
        let db = objects_db();
        let q = Query::parse("SELECT * FROM video_objects LIMIT 1").unwrap();
        let (cols, rows) = q.execute(&db).unwrap();
        assert_eq!(cols.len(), 4);
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn materialize_builds_data_array() {
        let db = objects_db();
        let q = Query::parse(
            "SELECT timestamp, frame_objects FROM video_objects WHERE video = 'b.mp4'",
        )
        .unwrap();
        let a = q.materialize(&db).unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a.get(r(1, 30)), &Value::Int(1));
        assert_eq!(a.get(r(2, 30)), &Value::Null); // b.mp4 has odd rows only
    }

    #[test]
    fn materialize_bounded_restricts_time() {
        let db = objects_db();
        let q = Query::parse("SELECT timestamp, frame_objects FROM video_objects").unwrap();
        let a = materialize_bounded(&q, &db, "timestamp", r(2, 30), r(5, 30)).unwrap();
        assert_eq!(a.len(), 4); // 2/30 .. 5/30 inclusive
        assert!(a.contains(r(5, 30)));
        assert!(!a.contains(r(6, 30)));
    }

    #[test]
    fn numeric_comparisons() {
        let db = objects_db();
        let q = Query::parse(
            "SELECT timestamp, frame_objects FROM video_objects WHERE frame_objects >= 8",
        )
        .unwrap();
        let (_, rows) = q.execute(&db).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(Query::parse("SELEKT x FROM t").is_err());
        assert!(Query::parse("SELECT x FROM t WHERE").is_err());
        assert!(Query::parse("SELECT x FROM t WHERE a = 'unterminated").is_err());
        assert!(Query::parse("SELECT x FROM t LIMIT banana").is_err());
        assert!(Query::parse("SELECT x FROM t extra junk").is_err());
        assert!(Query::parse("SELECT x FROM t WHERE a ~ 1").is_err());
    }

    #[test]
    fn unknown_table_and_column() {
        let db = objects_db();
        assert!(Query::parse("SELECT x FROM nope")
            .unwrap()
            .execute(&db)
            .is_err());
        assert!(Query::parse("SELECT nope FROM video_objects")
            .unwrap()
            .execute(&db)
            .is_err());
    }

    #[test]
    fn null_never_matches() {
        let mut db = Database::new();
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec![Value::Null]);
        t.push_row(vec![Value::Int(1)]);
        db.add_table(t);
        let q = Query::parse("SELECT a FROM t WHERE a = 1").unwrap();
        let (_, rows) = q.execute(&db).unwrap();
        assert_eq!(rows.len(), 1);
        let q = Query::parse("SELECT a FROM t WHERE a != 1").unwrap();
        let (_, rows) = q.execute(&db).unwrap();
        assert_eq!(rows.len(), 0, "NULL != 1 is not TRUE in SQL semantics");
    }

    #[test]
    fn global_aggregates() {
        let db = objects_db();
        let q = Query::parse(
            "SELECT count(*), min(timestamp), max(timestamp), avg(frame_objects) \
             FROM video_objects",
        )
        .unwrap();
        let (cols, rows) = q.execute(&db).unwrap();
        assert_eq!(
            cols,
            vec![
                "count(*)",
                "min(timestamp)",
                "max(timestamp)",
                "avg(frame_objects)"
            ]
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(10));
        assert_eq!(rows[0][1], Value::Rational(r(0, 30)));
        assert_eq!(rows[0][2], Value::Rational(r(9, 30)));
        assert_eq!(rows[0][3], Value::Float(4.5));
    }

    #[test]
    fn group_by_counts_per_video() {
        // The paper's intro analytics: how many detections per video?
        let db = objects_db();
        let q =
            Query::parse("SELECT video, count(*) FROM video_objects GROUP BY video ORDER BY video")
                .unwrap();
        let (cols, rows) = q.execute(&db).unwrap();
        assert_eq!(cols, vec!["video", "count(*)"]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![Value::from("a.mp4"), Value::Int(5)]);
        assert_eq!(rows[1], vec![Value::from("b.mp4"), Value::Int(5)]);
    }

    #[test]
    fn sum_is_exact_over_rationals() {
        let db = objects_db();
        let q = Query::parse("SELECT sum(timestamp) FROM video_objects").unwrap();
        let (_, rows) = q.execute(&db).unwrap();
        // 0/30 + 1/30 + … + 9/30 = 45/30 = 3/2.
        assert_eq!(rows[0][0], Value::Rational(r(3, 2)));
    }

    #[test]
    fn aggregates_skip_nulls_and_empty_is_null() {
        let mut db = Database::new();
        let mut t = Table::new("t", vec!["a".into()]);
        t.push_row(vec![Value::Null]);
        t.push_row(vec![Value::Int(4)]);
        db.add_table(t);
        let q = Query::parse("SELECT count(a), sum(a), count(*) FROM t").unwrap();
        let (_, rows) = q.execute(&db).unwrap();
        assert_eq!(
            rows[0],
            vec![Value::Int(1), Value::Rational(r(4, 1)), Value::Int(2)]
        );
        // Empty filter result: aggregates still produce one row.
        let q = Query::parse("SELECT count(*), max(a) FROM t WHERE a > 100").unwrap();
        let (_, rows) = q.execute(&db).unwrap();
        assert_eq!(rows[0], vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn aggregation_errors() {
        let db = objects_db();
        // Non-grouped column in an aggregate query.
        let q = Query::parse("SELECT video, count(*) FROM video_objects").unwrap();
        assert!(q.execute(&db).is_err());
        // sum(*) is invalid.
        assert!(Query::parse("SELECT sum(*) FROM t").is_err());
        // Unclosed parenthesis.
        assert!(Query::parse("SELECT count(x FROM t").is_err());
    }

    #[test]
    fn aggregate_named_column_still_selectable() {
        // A table can legitimately have a column named `count`; without
        // parentheses it parses as a plain column.
        let mut db = Database::new();
        let mut t = Table::new("t", vec!["count".into()]);
        t.push_row(vec![Value::Int(7)]);
        db.add_table(t);
        let q = Query::parse("SELECT count FROM t").unwrap();
        let (cols, rows) = q.execute(&db).unwrap();
        assert_eq!(cols, vec!["count"]);
        assert_eq!(rows[0][0], Value::Int(7));
    }

    #[test]
    fn group_by_order_preserves_first_seen() {
        let db = objects_db();
        let q =
            Query::parse("SELECT video, min(timestamp) FROM video_objects GROUP BY video").unwrap();
        let (_, rows) = q.execute(&db).unwrap();
        // a.mp4 appears first in the table.
        assert_eq!(rows[0][0], Value::from("a.mp4"));
        assert_eq!(rows[0][1], Value::Rational(r(0, 30)));
        assert_eq!(rows[1][1], Value::Rational(r(1, 30)));
    }
}
