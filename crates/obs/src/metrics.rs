//! Counters, gauges, histograms, and the thread-safe registry.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonic counter. Increments are relaxed atomics: safe to bump
/// from parallel segment workers, read once at trace-assembly time.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (e.g. frames currently held by a cache).
/// Stores the latest `set` and the high-water mark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the current value, updating the high-water mark.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set.
    pub fn high_water(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets a [`Histogram`] keeps: bucket `i`
/// counts values in `[2^i, 2^(i+1))` (bucket 0 also holds zero), which
/// spans `u64` at nanosecond or byte granularity.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free histogram over power-of-two buckets, tracking count, sum,
/// and max exactly (the buckets bound everything else).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Index of the bucket holding `v`.
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (63 - v.leading_zeros()) as usize
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// A serializable snapshot (sparse: only non-empty buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets,
        }
    }
}

/// Frozen histogram state: exact count/sum/max plus the non-empty
/// power-of-two buckets as `(bucket index, count)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// `(bucket index, count)` for non-empty buckets, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another snapshot into this one (bucket-wise addition; max
    /// of maxes). Lossless: merging snapshots equals snapshotting the
    /// merged streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for (i, n) in &other.buckets {
            *merged.entry(*i).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// One metric's frozen value inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge: `(current, high water)`.
    Gauge(u64, u64),
    /// A histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// A frozen, serializable view of a [`Registry`]: metric name → value,
/// in sorted name order (stable JSON).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Metric values by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Looks up a counter total (0 when absent or a different kind).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Merges another snapshot: counters add, gauges keep the max high
    /// water (current takes `other`'s), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.metrics {
            match (self.metrics.get_mut(name), value) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Gauge(cur, hw)), MetricValue::Gauge(c, h)) => {
                    *cur = *c;
                    *hw = (*hw).max(*h);
                }
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(b),
                (_, v) => {
                    self.metrics.insert(name.clone(), v.clone());
                }
            }
        }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serializes")
    }

    /// Parses a snapshot back from JSON.
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, serde_json::Error> {
        serde_json::from_str(text)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A thread-safe name → metric map. Handles are `Arc`s: registration
/// takes the lock once, recording is lock-free on the shared handle.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, creating it at zero on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric '{name}' is not a counter"),
        }
    }

    /// The gauge named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric '{name}' is not a gauge"),
        }
    }

    /// The histogram named `name`, creating it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("registry poisoned");
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric '{name}' is not a histogram"),
        }
    }

    /// Freezes every metric into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock().expect("registry poisoned");
        let metrics = m
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get(), g.high_water()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.high_water(), 7);
    }

    #[test]
    fn histogram_buckets_and_merge() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let a = h.snapshot();
        assert_eq!(a.count, 6);
        assert_eq!(a.sum, 1010);
        assert_eq!(a.max, 1000);
        // 0,1 → bucket 0; 2,3 → bucket 1; 4 → bucket 2; 1000 → bucket 9.
        assert_eq!(a.buckets, vec![(0, 2), (1, 2), (2, 1), (9, 1)]);

        let h2 = Histogram::new();
        h2.record(3);
        h2.record(2000);
        let mut merged = a.clone();
        merged.merge(&h2.snapshot());
        assert_eq!(merged.count, 8);
        assert_eq!(merged.sum, 1010 + 2003);
        assert_eq!(merged.max, 2000);
        assert_eq!(
            merged.buckets,
            vec![(0, 2), (1, 3), (2, 1), (9, 1), (10, 1)]
        );
        assert!((merged.mean() - (3013.0 / 8.0)).abs() < 1e-9);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let r = Registry::new();
        r.counter("frames_decoded").add(120);
        r.gauge("cache_frames").set(64);
        r.histogram("segment_wall_ns").record(1_500_000);
        let snap = r.snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("frames_decoded"), 120);
        assert_eq!(back.counter("missing"), 0);
    }

    #[test]
    fn snapshot_merge_combines_by_kind() {
        let a = Registry::new();
        a.counter("x").add(1);
        a.gauge("g").set(10);
        let b = Registry::new();
        b.counter("x").add(2);
        b.counter("y").add(5);
        b.gauge("g").set(4);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counter("x"), 3);
        assert_eq!(s.counter("y"), 5);
        assert_eq!(
            s.metrics.get("g"),
            Some(&MetricValue::Gauge(4, 10)),
            "gauge keeps max high-water, takes other's current"
        );
    }

    #[test]
    fn concurrent_registry_updates() {
        let r = Arc::new(Registry::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let c = r.counter("shared");
                    let h = r.histogram("hist");
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("shared"), 8000);
        match snap.metrics.get("hist") {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, 8000);
                assert_eq!(h.max, 999);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.gauge("m");
        r.counter("m");
    }
}
