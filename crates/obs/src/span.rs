//! Scoped wall-clock spans.
//!
//! A [`SpanSink`] is a thread-safe log of completed [`SpanRecord`]s,
//! all timed relative to the sink's creation so serialized traces carry
//! small monotonic offsets instead of wall-clock timestamps. Spans are
//! recorded either explicitly ([`SpanSink::record`]) or by the RAII
//! [`SpanTimer`], which measures from construction to `finish`/drop.

use serde::{Deserialize, Serialize};
use std::sync::Mutex;
use std::time::Instant;

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name (e.g. `"plan"`, `"segment"`).
    pub name: String,
    /// Start offset from the sink's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Key → value attributes (e.g. `("segment", "3")`), in recording
    /// order.
    pub attrs: Vec<(String, String)>,
}

/// A thread-safe collector of completed spans sharing one epoch.
#[derive(Debug)]
pub struct SpanSink {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Default for SpanSink {
    fn default() -> SpanSink {
        SpanSink::new()
    }
}

impl SpanSink {
    /// An empty sink whose epoch is now.
    pub fn new() -> SpanSink {
        SpanSink {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Nanoseconds elapsed since the sink's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records a completed span.
    pub fn record(&self, span: SpanRecord) {
        self.spans.lock().expect("span sink poisoned").push(span);
    }

    /// Starts a timed span ending when the returned timer is finished
    /// or dropped.
    pub fn start(&self, name: impl Into<String>) -> SpanTimer<'_> {
        SpanTimer {
            sink: self,
            name: name.into(),
            start_ns: self.now_ns(),
            started: Instant::now(),
            attrs: Vec::new(),
            done: false,
        }
    }

    /// Drains the completed spans, sorted by start offset.
    pub fn take(&self) -> Vec<SpanRecord> {
        let mut spans = std::mem::take(&mut *self.spans.lock().expect("span sink poisoned"));
        spans.sort_by_key(|s| s.start_ns);
        spans
    }
}

/// RAII span: measures from [`SpanSink::start`] until [`finish`] or
/// drop, then records into the sink.
///
/// [`finish`]: SpanTimer::finish
#[derive(Debug)]
pub struct SpanTimer<'a> {
    sink: &'a SpanSink,
    name: String,
    start_ns: u64,
    started: Instant,
    attrs: Vec<(String, String)>,
    done: bool,
}

impl SpanTimer<'_> {
    /// Attaches a key=value attribute.
    pub fn attr(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.attrs.push((key.into(), value.to_string()));
        self
    }

    /// Ends the span now and records it.
    pub fn finish(mut self) {
        self.flush();
    }

    fn flush(&mut self) {
        if self.done {
            return;
        }
        self.done = true;
        self.sink.record(SpanRecord {
            name: std::mem::take(&mut self.name),
            start_ns: self.start_ns,
            dur_ns: self.started.elapsed().as_nanos() as u64,
            attrs: std::mem::take(&mut self.attrs),
        });
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_records_on_finish_and_drop() {
        let sink = SpanSink::new();
        sink.start("a").attr("k", 7).finish();
        {
            let _t = sink.start("b");
        }
        let spans = sink.take();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "a");
        assert_eq!(spans[0].attrs, vec![("k".to_string(), "7".to_string())]);
        assert_eq!(spans[1].name, "b");
        assert!(sink.take().is_empty(), "take drains");
    }

    #[test]
    fn spans_sort_by_start_offset() {
        let sink = SpanSink::new();
        sink.record(SpanRecord {
            name: "late".into(),
            start_ns: 100,
            dur_ns: 1,
            attrs: vec![],
        });
        sink.record(SpanRecord {
            name: "early".into(),
            start_ns: 5,
            dur_ns: 1,
            attrs: vec![],
        });
        let spans = sink.take();
        assert_eq!(spans[0].name, "early");
        assert_eq!(spans[1].name, "late");
    }

    #[test]
    fn record_json_round_trip() {
        let rec = SpanRecord {
            name: "segment".into(),
            start_ns: 12,
            dur_ns: 34,
            attrs: vec![("i".into(), "0".into())],
        };
        let json = serde_json::to_string(&rec).unwrap();
        let back: SpanRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn concurrent_span_recording() {
        let sink = std::sync::Arc::new(SpanSink::new());
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let sink = sink.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        sink.start("w").attr("t", i).finish();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(sink.take().len(), 400);
    }
}
