#![warn(missing_docs)]

//! V2V observability primitives.
//!
//! The engine attributes its speedups to *which* rewrites fired and
//! *what* each operator actually did (frames decoded vs. stream-copied,
//! bytes moved, seeks taken). This crate is the lightweight,
//! offline-friendly substrate those attributions are built on:
//!
//! * [`Counter`] / [`Gauge`] — monotonic and point-in-time values behind
//!   relaxed atomics, safe to bump from rayon workers;
//! * [`Histogram`] — power-of-two bucketed latency/size distributions
//!   with lock-free recording and lossless merge;
//! * [`Registry`] — a thread-safe name → metric map producing
//!   [`MetricsSnapshot`]s that serialize to stable JSON;
//! * [`SpanSink`] / [`SpanTimer`] — scoped wall-clock spans with
//!   key=value attributes, collected into a [`SpanRecord`] log.
//!
//! There is no background thread, no exporter, and no global state: a
//! trace is an explicit value the pipeline threads through planning and
//! execution, then serializes with [`serde_json`]. The planner's rewrite
//! trace and the executor's per-segment metrics (in `v2v-plan` /
//! `v2v-exec`) are built on these types; `v2v-core` assembles them into
//! the single trace artifact the CLI writes under `--trace`.

pub mod metrics;
pub mod span;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsSnapshot, Registry,
};
pub use span::{SpanRecord, SpanSink, SpanTimer};

/// Schema version stamped into serialized trace artifacts. Bump on any
/// backward-incompatible change to the JSON layout.
///
/// Version history:
/// * 1 — initial layout (rewrites + exec trace + spans + metrics).
/// * 2 — pipelined scheduler: per-segment `parts`/`stage` fields,
///   `splits`/`steals` counters, and synthetic `exec.stage.*` spans.
/// * 3 — fault tolerance: `exec.faults.*` counters, fault-related
///   `ExecStats` fields, the `errors` segment-fault report on the exec
///   trace, and fault attrs on the `execute` span.
/// * 4 — persistent render cache: the `cache` stats block on
///   `ExecStats` (`result_hits` / `segment_hits` / `evictions` /
///   `bytes_reused`) and `exec.cache.*` counters.
/// * 5 — multi-query work sharing: `inflight_hits` /
///   `shared_segment_hits` / `mem_hits` on the `cache` stats block and
///   the matching `exec.cache.*` counters.
pub const TRACE_SCHEMA_VERSION: u32 = 5;
