//! VDBMS integration helpers (paper §IV-A "Integrating into VDBMSs").
//!
//! A VDBMS runs a relational query that "yields a relation detailing what
//! videos are to be used and then this is transformed into a V2V spec".
//! [`montage_spec`] is that transformation for the common case: a table
//! of events `(video, start, duration, [label], [boxes array])` becomes a
//! supercut spec with optional per-segment annotations — the shape of the
//! paper's motivating zebra query.

use v2v_spec::builder::{bounding_box, highlight, text_overlay, zoom};
use v2v_spec::{OutputSettings, RenderExpr, Spec, SpecBuilder};
use v2v_time::Rational;

/// One montage segment, typically one row of a VDBMS result relation.
#[derive(Clone, Debug)]
pub struct MontageSegment {
    /// Video name (bound in the catalog / spec videos map).
    pub video: String,
    /// Event start in the source.
    pub start: Rational,
    /// Event duration.
    pub duration: Rational,
    /// Optional caption burned into the segment.
    pub label: Option<String>,
    /// Optional data-array name with per-frame bounding boxes.
    pub boxes_array: Option<String>,
}

impl MontageSegment {
    /// A bare clip segment.
    pub fn clip(video: impl Into<String>, start: Rational, duration: Rational) -> MontageSegment {
        MontageSegment {
            video: video.into(),
            start,
            duration,
            label: None,
            boxes_array: None,
        }
    }

    /// Adds a caption.
    pub fn with_label(mut self, label: impl Into<String>) -> MontageSegment {
        self.label = Some(label.into());
        self
    }

    /// Adds a bounding-box overlay from a data array.
    pub fn with_boxes(mut self, array: impl Into<String>) -> MontageSegment {
        self.boxes_array = Some(array.into());
        self
    }
}

/// Montage rendering options.
#[derive(Clone, Debug)]
pub struct MontageOptions {
    /// Output stream settings.
    pub output: OutputSettings,
    /// Zoom factor applied to every segment (1.0 = none).
    pub zoom: f64,
    /// When set, segments with a boxes array use `Highlight` (dim the
    /// surroundings by this amount) instead of plain bounding boxes —
    /// the paper's "highlight an object" presentation.
    pub highlight_dim: Option<f64>,
}

impl MontageOptions {
    /// Plain montage at the given output settings.
    pub fn new(output: OutputSettings) -> MontageOptions {
        MontageOptions {
            output,
            zoom: 1.0,
            highlight_dim: None,
        }
    }
}

/// Builds a supercut spec from relational event rows.
///
/// Video and data-array locators are set to the segment's own names; the
/// engine resolves them against the catalog, so callers bind streams
/// under the same names the relation used.
pub fn montage_spec(segments: &[MontageSegment], options: &MontageOptions) -> Spec {
    let mut builder = SpecBuilder::new(options.output);
    for seg in segments {
        builder = builder.video(seg.video.clone(), seg.video.clone());
        if let Some(arr) = &seg.boxes_array {
            builder = builder.data_array(arr.clone(), arr.clone());
        }
        let video = seg.video.clone();
        let start = seg.start;
        let label = seg.label.clone();
        let boxes = seg.boxes_array.clone();
        let zoom_factor = options.zoom;
        let highlight_dim = options.highlight_dim;
        builder = builder.append_with(seg.duration, move |out_start| {
            let mut expr = RenderExpr::FrameRef {
                video,
                time: v2v_time::AffineTimeMap::shift(start - out_start),
            };
            if let Some(arr) = boxes {
                expr = match highlight_dim {
                    Some(dim) => highlight(expr, arr, dim),
                    None => bounding_box(expr, arr),
                };
            }
            if zoom_factor > 1.0 {
                expr = zoom(expr, zoom_factor);
            }
            if let Some(text) = label {
                expr = text_overlay(expr, text, 0.05, 0.9);
            }
            expr
        });
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_frame::FrameType;
    use v2v_time::r;

    fn output() -> OutputSettings {
        OutputSettings::new(FrameType::yuv420p(64, 64), 30)
    }

    #[test]
    fn plain_montage_is_a_splice() {
        let segs = vec![
            MontageSegment::clip("cam1", r(10, 1), r(2, 1)),
            MontageSegment::clip("cam2", r(0, 1), r(3, 1)),
        ];
        let spec = montage_spec(&segs, &MontageOptions::new(output()));
        assert_eq!(spec.time_domain.count(), 150);
        assert_eq!(spec.videos.len(), 2);
        assert!(spec.data_arrays.is_empty());
    }

    #[test]
    fn annotated_montage_wraps_segments() {
        let segs = vec![MontageSegment::clip("cam1", r(0, 1), r(1, 1))
            .with_label("ZEBRA 12 GRAZING")
            .with_boxes("cam1_bb")];
        let mut opts = MontageOptions::new(output());
        opts.zoom = 1.5;
        let spec = montage_spec(&segs, &opts);
        assert!(spec.data_arrays.contains_key("cam1_bb"));
        // Expression nests TextOverlay(Zoom(BoundingBox(ref))).
        let mut depth = 0;
        let mut cur = &spec.render;
        while let RenderExpr::Transform { args, .. } = cur {
            depth += 1;
            cur = args
                .iter()
                .find_map(|a| a.as_frame())
                .expect("frame arg present");
        }
        assert_eq!(depth, 3);
        assert!(matches!(cur, RenderExpr::FrameRef { .. }));
    }

    #[test]
    fn montage_passes_static_checks_when_sources_cover() {
        use v2v_spec::check::{check_spec, SourceInfo};
        use v2v_time::{TimeRange, TimeSet};
        let segs = vec![
            MontageSegment::clip("cam1", r(10, 1), r(2, 1)),
            MontageSegment::clip("cam1", r(20, 1), r(2, 1)),
        ];
        let spec = montage_spec(&segs, &MontageOptions::new(output()));
        let sources = [(
            "cam1".to_string(),
            SourceInfo {
                frame_ty: FrameType::yuv420p(64, 64),
                available: TimeSet::from_range(TimeRange::new(r(0, 1), r(30, 1), r(1, 30))),
            },
        )]
        .into();
        assert!(check_spec(&spec, &sources).is_ok());
    }

    #[test]
    fn highlight_montage_uses_highlight_op() {
        let segs = vec![MontageSegment::clip("cam1", r(0, 1), r(1, 1)).with_boxes("bb")];
        let mut opts = MontageOptions::new(output());
        opts.highlight_dim = Some(0.6);
        let spec = montage_spec(&segs, &opts);
        fn has_highlight(e: &RenderExpr) -> bool {
            match e {
                RenderExpr::Transform { op, args } => {
                    *op == v2v_spec::TransformOp::Highlight
                        || args
                            .iter()
                            .any(|a| a.as_frame().map(has_highlight).unwrap_or(false))
                }
                RenderExpr::Match { arms } => arms.iter().any(|a| has_highlight(&a.expr)),
                RenderExpr::FrameRef { .. } => false,
            }
        }
        assert!(has_highlight(&spec.render));
    }
}
