//! The embeddable V2V engine.

use crate::observe::{AnalyzeReport, ExplainReport, RunTrace};
use crate::EngineError;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};
use v2v_container::{Fnv64, Fragment, VideoStream};
use v2v_data::{Database, Query};
use v2v_exec::{
    execute_naive, execute_streaming_with, execute_traced, CacheTier, Catalog, ExecOptions,
    ExecStats, ExecTrace, FragmentFlight, RenderCache, SegmentCacheCtx, StageTimes, StreamingStats,
};
use v2v_obs::{SpanRecord, SpanSink};
use v2v_plan::{
    explain_logical, explain_physical, lower_spec, optimize_traced, select_variants, CostModel,
    OptimizerConfig, PhysicalPlan, PlanStats, PlanTrace, SegPlan, SourceDigests, VariantPolicy,
};
use v2v_spec::{check_spec_with_udfs, CheckReport, Spec};

/// Engine configuration: which parts of the V2V optimization story run.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Plan-level rewrites (stream copy, smart cut, sharding).
    pub optimizer: OptimizerConfig,
    /// Runtime options (parallel segment execution, worker count,
    /// pipeline depth, runtime work splitting, shared decoded-GOP cache
    /// size via `gop_cache_frames`).
    pub exec: ExecOptions,
    /// Apply data-dependent rewrites before planning (§IV-C).
    pub data_rewrites: bool,
    /// Persistent render cache shared across runs (and across engines —
    /// the serving layer hands every worker the same `Arc`). `None`
    /// disables result and segment reuse. Ignored while a fault
    /// injector is configured: degraded output must never be persisted.
    pub render_cache: Option<Arc<RenderCache>>,
    /// In-flight work-sharing registry shared across *concurrent*
    /// engines (one per daemon): segments with the same fragment key
    /// render exactly once across every run attached to the same
    /// registry, whether or not a disk cache is configured. `None`
    /// (the default, and the right choice for one-shot runs) disables
    /// concurrent sharing. Ignored while a fault injector is
    /// configured, like the render cache.
    pub work_share: Option<Arc<FragmentFlight>>,
    /// Remote segment dispatch hook (the serving coordinator installs
    /// its worker pool here): keyed whole segments that miss every
    /// local tier are offered to the hook before rendering in-process.
    /// `None` (the default) keeps execution fully local. Like the cache
    /// tiers, ignored while a fault injector is configured.
    pub remote: Option<Arc<dyn v2v_exec::RemoteRenderer>>,
    /// How render reads choose among attached storage variants
    /// (`v2v-store`): `Auto` (default) picks the cheapest
    /// decode-sufficient variant per segment, `Disabled` always reads
    /// originals, `Force(kind)` pins one kind where legal. A no-op
    /// unless variants are attached to the catalog. Never affects plan
    /// fingerprints, cache keys, or output bytes.
    pub variants: VariantPolicy,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            optimizer: OptimizerConfig::default(),
            exec: ExecOptions::default(),
            data_rewrites: true,
            render_cache: None,
            work_share: None,
            remote: None,
            variants: VariantPolicy::Auto,
        }
    }
}

/// Everything a run produces besides the video itself.
#[derive(Debug)]
pub struct RunReport {
    /// The synthesized video.
    pub output: VideoStream,
    /// Static-check results (per-video requirements, warnings).
    pub check: CheckReport,
    /// Execution cost accounting.
    pub stats: ExecStats,
    /// Optimizer bookkeeping (empty for unoptimized runs).
    pub plan_stats: PlanStats,
    /// Operator sites specialized by the data-dependent rewriter.
    pub dde_rewrites: usize,
    /// Wall-clock execution time (excludes planning).
    pub wall: Duration,
    /// Structured error report: one entry per segment part that failed
    /// and was recovered, skipped, or substituted under the configured
    /// [`ErrorPolicy`](v2v_exec::ErrorPolicy). Empty on clean runs (and
    /// always empty under `Abort`, where the first failure aborts the
    /// run instead of landing here).
    pub errors: Vec<v2v_exec::SegmentFault>,
}

/// A spec carried through bind → specialize → check → plan, ready to
/// execute. Produced by [`V2vEngine::prepare`]; holds the canonical
/// cache identity (plan fingerprint, per-segment keys) so callers like
/// the serving daemon can coalesce identical in-flight requests
/// *before* paying for execution.
pub struct PreparedRun {
    physical: PhysicalPlan,
    check: CheckReport,
    plan_trace: PlanTrace,
    dde_rewrites: usize,
    /// Canonical plan fingerprint; `None` when the plan is not
    /// content-addressable (UDF programs) or a fault injector is active.
    fingerprint: Option<u64>,
    /// Per-segment fragment keys, aligned with `physical.segments`
    /// (empty when `fingerprint` is `None`).
    keys: Vec<Option<u64>>,
    spans: SpanSink,
}

impl PreparedRun {
    /// The canonical plan fingerprint, when the plan is cacheable.
    /// Two prepared runs with equal fingerprints produce byte-identical
    /// output from identical sources.
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// Per-segment fragment keys (aligned with the physical plan's
    /// segments; `None` marks an unkeyable segment).
    pub fn segment_keys(&self) -> &[Option<u64>] {
        &self.keys
    }

    /// Segments in the physical plan.
    pub fn segment_count(&self) -> usize {
        self.physical.segments.len()
    }

    /// The static-check report for the prepared spec.
    pub fn check(&self) -> &CheckReport {
        &self.check
    }

    /// The optimized physical plan (the serving layer profiles source
    /// access shapes from it for store compaction).
    pub fn plan(&self) -> &PhysicalPlan {
        &self.physical
    }
}

/// The V2V engine: binds data, rewrites, checks, plans, and executes
/// specs against a catalog (and an optional relational database for
/// `sql:` data-array locators).
pub struct V2vEngine {
    catalog: Catalog,
    database: Database,
    config: EngineConfig,
}

impl V2vEngine {
    /// An engine over a catalog with default configuration.
    pub fn new(catalog: Catalog) -> V2vEngine {
        V2vEngine {
            catalog,
            database: Database::new(),
            config: EngineConfig::default(),
        }
    }

    /// Attaches a relational database for `sql:` locators.
    pub fn with_database(mut self, database: Database) -> V2vEngine {
        self.database = database;
        self
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: EngineConfig) -> V2vEngine {
        self.config = config;
        self
    }

    /// The bound catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (bind more sources).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Resolves the spec's locators into the catalog:
    ///
    /// * data arrays — `sql:<query>` runs against the attached database;
    ///   other locators are JSON annotation paths; names already bound in
    ///   the catalog win over both;
    /// * videos — names already bound win; otherwise the locator is read
    ///   as an `.svc` file.
    pub fn bind(&mut self, spec: &Spec) -> Result<(), EngineError> {
        let windows = spec.array_windows();
        for (name, locator) in &spec.data_arrays {
            if self.catalog.arrays().contains_key(name) {
                continue;
            }
            let array = if let Some(sql) = locator.strip_prefix("sql:") {
                // Bounded materialization (§IV-B): pull only the time
                // window the spec actually reads, trading storage for
                // compute at fine grain.
                Query::parse(sql)
                    .and_then(|q| match windows.get(name) {
                        Some((lo, hi)) => {
                            v2v_data::materialize_bounded(&q, &self.database, "timestamp", *lo, *hi)
                        }
                        None => q.materialize(&self.database),
                    })
                    .map_err(|source| EngineError::Bind {
                        name: name.clone(),
                        source,
                    })?
            } else {
                v2v_data::json::load_annotations(locator).map_err(|source| EngineError::Bind {
                    name: name.clone(),
                    source,
                })?
            };
            self.catalog.add_array(name.clone(), array);
        }
        for (name, locator) in &spec.videos {
            if self.catalog.video(name).is_some() {
                continue;
            }
            let stream = v2v_container::read_svc(locator).map_err(|e| EngineError::VideoBind {
                name: name.clone(),
                locator: locator.clone(),
                reason: e.to_string(),
            })?;
            self.catalog.add_video(name.clone(), stream);
        }
        Ok(())
    }

    /// Applies the data-dependent rewriter (pass 1 of the two-pass
    /// execution), returning the specialized spec. Pass-through spans
    /// shorter than half an output GOP are not split — too short to
    /// enable a stream copy, they would only fragment the plan.
    pub fn specialize(&self, spec: &Spec) -> (Spec, usize) {
        if self.config.data_rewrites {
            let min_run = u64::from(spec.output.gop_size / 2).max(1);
            crate::dde::rewrite_spec_with_min_run(spec, self.catalog.arrays(), min_run)
        } else {
            (spec.clone(), 0)
        }
    }

    /// Checks, plans, and optimizes a (bound, specialized) spec.
    pub fn plan(&self, spec: &Spec) -> Result<(PhysicalPlan, CheckReport), EngineError> {
        let (physical, check, _) = self.plan_traced(spec)?;
        Ok((physical, check))
    }

    /// [`plan`](V2vEngine::plan), also returning the optimizer's rewrite
    /// trace (one event per rule application).
    pub fn plan_traced(
        &self,
        spec: &Spec,
    ) -> Result<(PhysicalPlan, CheckReport, PlanTrace), EngineError> {
        let check = check_spec_with_udfs(
            spec,
            &self.catalog.source_infos(),
            self.catalog.udf_registry(),
        )
        .map_err(EngineError::Check)?;
        let logical = lower_spec(spec)?;
        let ctx = self.catalog.plan_context();
        let (mut physical, trace) = optimize_traced(&logical, &ctx, &self.config.optimizer)?;
        // Storage-variant selection runs after all plan rewrites: it
        // only retargets render reads, so the plan's shape, fingerprint,
        // and cache keys are already final.
        select_variants(
            &mut physical,
            &ctx,
            &CostModel::default(),
            self.config.variants,
        );
        Ok((physical, check, trace))
    }

    /// Computes the plan's canonical cache identity: the whole-plan
    /// fingerprint and per-segment fragment keys. `None` when a fault
    /// injector is active (degraded output must never be shared or
    /// persisted) or the plan is not cacheable (UDF programs have no
    /// content-addressable identity). Independent of whether a disk
    /// cache is configured — the in-flight sharing tiers need the
    /// identity even without one.
    fn plan_identity(&self, plan: &PhysicalPlan) -> Option<(u64, Vec<Option<u64>>)> {
        let fault_active = self
            .config
            .exec
            .fault
            .as_deref()
            .is_some_and(|f| !f.is_empty());
        if fault_active {
            return None;
        }
        let digests = self.source_digests(plan);
        if !v2v_plan::cacheable(plan, &digests) {
            return None;
        }
        let fingerprint = v2v_plan::plan_fingerprint(plan, &digests);
        let keys = v2v_plan::segment_keys(plan, &digests);
        Some((fingerprint, keys))
    }

    /// Content digests of every source the plan reads: per-video stream
    /// digests with their committed-GOP prefix index, per-array entry
    /// digests (so segment keys fold only the entries their windows can
    /// reach), plus one coarse digest over all bound arrays.
    fn source_digests(&self, plan: &PhysicalPlan) -> SourceDigests {
        let mut referenced: BTreeSet<&str> = BTreeSet::new();
        for seg in &plan.segments {
            match &seg.plan {
                SegPlan::StreamCopy { video, .. } => {
                    referenced.insert(video);
                }
                SegPlan::Render { inputs, .. } => {
                    for clip in inputs {
                        referenced.insert(&clip.video);
                    }
                }
            }
        }
        let mut digests = SourceDigests::default();
        for name in referenced {
            if let Some(stream) = self.catalog.video(name) {
                digests
                    .videos
                    .insert(name.to_string(), v2v_plan::VideoDigest::of(stream));
            }
        }
        let mut h = Fnv64::new();
        for (name, array) in self.catalog.arrays() {
            h.write_str(name);
            h.write_u64(array.len() as u64);
            let mut entries = Vec::with_capacity(array.len());
            for (t, v) in array.iter() {
                h.write_str(&t.to_string());
                let json = serde_json::to_string(v).unwrap_or_default();
                h.write_str(&json);
                let mut eh = Fnv64::new();
                eh.write_str(&t.to_string());
                eh.write_str(&json);
                entries.push((t, eh.finish()));
            }
            // DataArray iteration is time-ordered; keep the invariant
            // explicit for the windowed partition point.
            entries.sort_by_key(|e| e.0);
            digests.array_entries.insert(name.clone(), entries);
        }
        digests.arrays = h.finish();
        digests
    }

    /// Full pipeline: bind → specialize → check → plan → execute.
    pub fn run(&mut self, spec: &Spec) -> Result<RunReport, EngineError> {
        let (report, _) = self.run_traced(spec)?;
        Ok(report)
    }

    /// [`run`](V2vEngine::run), also returning the observability
    /// artifact: rewrite trace, per-segment execution trace,
    /// pipeline-stage spans, and a metrics snapshot, serializable as one
    /// JSON document (the CLI's `--trace` flag).
    pub fn run_traced(&mut self, spec: &Spec) -> Result<(RunReport, RunTrace), EngineError> {
        let prepared = self.prepare(spec)?;
        self.run_prepared(prepared)
    }

    /// The front half of [`run_traced`](V2vEngine::run_traced): bind →
    /// specialize → check → plan, plus the plan's canonical cache
    /// identity. The daemon prepares a request *before* admission so an
    /// identical in-flight render can be joined without executing at
    /// all; [`run_prepared`](V2vEngine::run_prepared) finishes the job.
    pub fn prepare(&mut self, spec: &Spec) -> Result<PreparedRun, EngineError> {
        let spans = SpanSink::new();
        let timer = spans.start("bind");
        self.bind(spec)?;
        timer.finish();
        let timer = spans.start("specialize");
        let (specialized, dde_rewrites) = self.specialize(spec);
        timer.finish();
        let timer = spans.start("plan");
        let (physical, check, plan_trace) = self.plan_traced(&specialized)?;
        timer
            .attr("segments", physical.segments.len())
            .attr("rewrites", plan_trace.events.len())
            .finish();
        let identity = self.plan_identity(&physical);
        let (fingerprint, keys) = match identity {
            Some((fp, keys)) => (Some(fp), keys),
            None => (None, Vec::new()),
        };
        Ok(PreparedRun {
            physical,
            check,
            plan_trace,
            dde_rewrites,
            fingerprint,
            keys,
            spans,
        })
    }

    /// Executes a [`PreparedRun`]: whole-result cache lookup (memory
    /// tier first), shared-segment execution, result store, span and
    /// trace assembly.
    pub fn run_prepared(
        &mut self,
        prepared: PreparedRun,
    ) -> Result<(RunReport, RunTrace), EngineError> {
        let PreparedRun {
            physical,
            check,
            plan_trace,
            dde_rewrites,
            fingerprint,
            keys,
            spans,
        } = prepared;
        let cache = fingerprint.and_then(|_| self.config.render_cache.clone());
        let flight = fingerprint.and_then(|_| self.config.work_share.clone());
        let remote = fingerprint.and_then(|_| self.config.remote.clone());
        let timer = spans.start("execute");
        let exec_start_ns = spans.now_ns();
        let hit_start = Instant::now();
        let result_hit = match (&cache, fingerprint) {
            (Some(cache), Some(fp)) => cache.load_result_tiered(fp),
            _ => None,
        };
        let (output, exec_trace, wall) = match result_hit {
            Some((output, tier)) => {
                // Whole-result hit: splice the cached container bytes
                // straight through — no planning cost was wasted (the
                // fingerprint needs the optimized plan), but no decode,
                // render, or encode happens at all.
                let mut trace = ExecTrace::default();
                trace.totals.cache.result_hits = 1;
                trace.totals.cache.bytes_reused = output.byte_size();
                trace.totals.cache.mem_hits = u64::from(tier == CacheTier::Memory);
                let wall = hit_start.elapsed();
                trace.wall_ns = wall.as_nanos() as u64;
                (output, trace, wall)
            }
            _ => {
                let share_exec = fingerprint.is_some()
                    && (cache.is_some() || flight.is_some() || remote.is_some());
                let (output, exec_trace, wall) = if share_exec {
                    let mut exec_opts = self.config.exec.clone();
                    exec_opts.segment_cache = Some(Arc::new(SegmentCacheCtx {
                        cache: cache.clone(),
                        flight: flight.clone(),
                        keys,
                        remote: remote.clone(),
                    }));
                    execute_traced(&physical, &self.catalog, &exec_opts)?
                } else {
                    execute_traced(&physical, &self.catalog, &self.config.exec)?
                };
                if let (Some(cache), Some(fp)) = (&cache, fingerprint) {
                    if exec_trace.errors.is_empty() {
                        // Failed stores only cost the next run a
                        // re-render; never fail the query for one.
                        let _ = cache.store_result(fp, &output);
                    }
                }
                (output, exec_trace, wall)
            }
        };
        timer
            .attr("frames", output.len())
            .attr("splits", exec_trace.totals.splits)
            .attr("steals", exec_trace.totals.steals)
            .attr("faults", exec_trace.totals.faults_injected)
            .attr("fault_retries", exec_trace.totals.retries)
            .attr("parts_skipped", exec_trace.totals.parts_skipped)
            .attr("parts_substituted", exec_trace.totals.parts_substituted)
            .finish();
        // Synthetic per-stage spans: the scheduler's pipeline stages run
        // overlapped across worker threads, so these carry summed *busy*
        // time (anchored at the execute span's start), not exclusive wall
        // intervals.
        let stage = exec_trace
            .segments
            .iter()
            .fold(StageTimes::default(), |acc, s| acc.merge(s.stage));
        for (name, dur_ns) in [
            ("exec.stage.decode", stage.decode_ns),
            ("exec.stage.compose", stage.compose_ns),
            ("exec.stage.encode", stage.encode_ns),
        ] {
            spans.record(SpanRecord {
                name: name.into(),
                start_ns: exec_start_ns,
                dur_ns,
                attrs: vec![("busy".into(), "true".into())],
            });
        }
        let report = RunReport {
            output,
            check,
            stats: exec_trace.totals,
            plan_stats: physical.stats,
            dde_rewrites,
            wall,
            errors: exec_trace.errors.clone(),
        };
        let trace = RunTrace::assemble(
            dde_rewrites as u64,
            physical.stats,
            plan_trace,
            exec_trace,
            spans.take(),
        );
        Ok((report, trace))
    }

    /// Renders exactly one segment of a prepared plan and returns it as
    /// a zero-based [`Fragment`] — the worker half of the
    /// coordinator/worker protocol.
    ///
    /// The carved sub-plan preserves the parent plan's domain instants
    /// ([`PhysicalPlan::carve_segment`]), and every render evaluates
    /// programs at absolute domain instants with a fresh encoder per
    /// output GOP, so the fragment's packets are byte-identical to what
    /// a full local run would encode for that segment. The engine's own
    /// cache tiers and in-flight registry are consulted and warmed
    /// through the normal segment-cache path, so a worker that renders
    /// the same key twice serves the repeat from its cache.
    pub fn render_segment_fragment(
        &mut self,
        prepared: &PreparedRun,
        seg_index: usize,
    ) -> Result<(Fragment, ExecStats), EngineError> {
        let sub = prepared
            .physical
            .carve_segment(seg_index)
            .ok_or(EngineError::SegmentIndex {
                index: seg_index,
                count: prepared.physical.segments.len(),
            })?;
        let key = prepared.keys.get(seg_index).copied().flatten();
        let cache = key.and_then(|_| self.config.render_cache.clone());
        let flight = key.and_then(|_| self.config.work_share.clone());
        let mut exec_opts = self.config.exec.clone();
        if key.is_some() && (cache.is_some() || flight.is_some()) {
            // The carved plan has one segment at index 0; hand it the
            // parent's key (segment keys are position-independent, so
            // the carve preserves the content address). Never install a
            // remote hook here — a worker must not re-dispatch.
            exec_opts.segment_cache = Some(Arc::new(SegmentCacheCtx {
                cache,
                flight,
                keys: vec![key],
                remote: None,
            }));
        } else {
            exec_opts.segment_cache = None;
        }
        let (output, exec_trace, _) = execute_traced(&sub, &self.catalog, &exec_opts)?;
        Ok((Fragment::from_stream(&output), exec_trace.totals))
    }

    /// Full pipeline with on-demand streaming delivery: packets reach
    /// `sink` in presentation order as segments complete, so playback
    /// can begin long before synthesis finishes (paper §I: "begin
    /// playback within seconds").
    pub fn run_streaming(
        &mut self,
        spec: &Spec,
        sink: impl FnMut(&v2v_codec::Packet),
    ) -> Result<(RunReport, StreamingStats), EngineError> {
        self.bind(spec)?;
        let (specialized, dde_rewrites) = self.specialize(spec);
        let (physical, check) = self.plan(&specialized)?;
        // Streaming honors the same ExecOptions as batch runs (it used
        // to silently fall back to the default GOP-cache size, making
        // the two executors report different cache hit/miss counts).
        let (output, streaming) =
            execute_streaming_with(&physical, &self.catalog, &self.config.exec, sink)?;
        Ok((
            RunReport {
                output,
                check,
                stats: streaming.exec,
                plan_stats: physical.stats,
                dde_rewrites,
                wall: streaming.total,
                errors: streaming.errors.clone(),
            },
            streaming,
        ))
    }

    /// Runs a spec and binds its output video back into the catalog under
    /// `name` — the closed query algebra (§I: "a single video as a final
    /// output … allows for a closed query algebra, enabling users to
    /// express complex compound query operations"). Subsequent specs can
    /// reference `name` like any source.
    pub fn run_into_catalog(
        &mut self,
        name: impl Into<String>,
        spec: &Spec,
    ) -> Result<RunReport, EngineError> {
        let report = self.run(spec)?;
        self.catalog.add_video(name.into(), report.output.clone());
        Ok(report)
    }

    /// Runs the unoptimized plan (naive operator-at-a-time execution, no
    /// data rewrites) — the baseline arm of the paper's evaluation.
    pub fn run_unoptimized(&mut self, spec: &Spec) -> Result<RunReport, EngineError> {
        self.bind(spec)?;
        let check = check_spec_with_udfs(
            spec,
            &self.catalog.source_infos(),
            self.catalog.udf_registry(),
        )
        .map_err(EngineError::Check)?;
        let logical = lower_spec(spec)?;
        let (output, stats, wall) = execute_naive(&logical, &self.catalog)?;
        Ok(RunReport {
            output,
            check,
            stats,
            plan_stats: PlanStats::default(),
            dde_rewrites: 0,
            wall,
            errors: Vec::new(),
        })
    }

    /// Explains a spec without executing it: both plan renderings (the
    /// Fig. 2 pair) plus the optimizer's rewrite trace.
    pub fn explain(&mut self, spec: &Spec) -> Result<ExplainReport, EngineError> {
        self.bind(spec)?;
        let (specialized, dde_rewrites) = self.specialize(spec);
        let logical_unopt = lower_spec(spec)?;
        let (physical, _, trace) = self.plan_traced(&specialized)?;
        Ok(ExplainReport {
            logical: explain_logical(&logical_unopt),
            physical: explain_physical(&physical),
            trace,
            plan_stats: physical.stats,
            dde_rewrites: dde_rewrites as u64,
        })
    }

    /// `EXPLAIN ANALYZE`: plans *and runs* the spec, returning the plan
    /// annotated with the measured per-operator execution metrics (the
    /// output video is discarded).
    pub fn explain_analyze(&mut self, spec: &Spec) -> Result<AnalyzeReport, EngineError> {
        self.bind(spec)?;
        let (specialized, dde_rewrites) = self.specialize(spec);
        let logical_unopt = lower_spec(spec)?;
        let (physical, _, trace) = self.plan_traced(&specialized)?;
        let (output, exec_trace, _) = execute_traced(&physical, &self.catalog, &self.config.exec)?;
        Ok(AnalyzeReport {
            explain: ExplainReport {
                logical: explain_logical(&logical_unopt),
                physical: explain_physical(&physical),
                trace,
                plan_stats: physical.stats,
                dde_rewrites: dde_rewrites as u64,
            },
            exec: exec_trace,
            output_frames: output.len() as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_codec::CodecParams;
    use v2v_container::StreamWriter;
    use v2v_data::{Table, Value};
    use v2v_frame::{marker, BoxCoord, Frame, FrameType};
    use v2v_spec::builder::bounding_box;
    use v2v_spec::{OutputSettings, SpecBuilder};
    use v2v_time::{r, Rational};

    fn marked_stream(n: usize, gop: u32) -> VideoStream {
        let ty = FrameType::gray8(64, 32);
        let params = CodecParams::new(ty, gop, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            marker::embed(&mut f, i as u32);
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    fn output() -> OutputSettings {
        OutputSettings {
            frame_ty: FrameType::gray8(64, 32),
            frame_dur: r(1, 30),
            gop_size: 30,
            quantizer: 0,
        }
    }

    fn engine_with_video() -> V2vEngine {
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(120, 30));
        V2vEngine::new(catalog)
    }

    #[test]
    fn end_to_end_run_and_baseline_agree() {
        let mut engine = engine_with_video();
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 1), r(2, 1))
            .build();
        let opt = engine.run(&spec).unwrap();
        let unopt = engine.run_unoptimized(&spec).unwrap();
        assert_eq!(opt.output.len(), 60);
        assert_eq!(unopt.output.len(), 60);
        let (fa, _) = opt.output.decode_range(0, 60).unwrap();
        let (fb, _) = unopt.output.decode_range(0, 60).unwrap();
        assert_eq!(fa, fb);
        assert!(opt.stats.packets_copied > 0);
        // The naive arm still paid a full decode+encode for the clip
        // (its only copies are the final concat splice of its own
        // intermediates).
        assert_eq!(unopt.stats.frames_encoded, 60);
        assert_eq!(opt.stats.frames_encoded, 0);
    }

    #[test]
    fn dde_plus_optimizer_stream_copies_boxless_spans() {
        // Sparse detections: boxes only on frames 30..60 of a 120-frame
        // clip. After dde + optimization, the box-free spans stream-copy.
        let mut engine = engine_with_video();
        let mut bb = v2v_data::DataArray::new();
        for i in 30..60 {
            bb.insert(
                r(i, 30),
                Value::Boxes(vec![BoxCoord::new(0.2, 0.2, 0.3, 0.3, "z")]),
            );
        }
        engine.catalog_mut().add_array("bb", bb);
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .data_array("bb", "catalog")
            .append_filtered("a", r(0, 1), r(4, 1), |e| bounding_box(e, "bb"))
            .build();
        let report = engine.run(&spec).unwrap();
        assert_eq!(report.dde_rewrites, 1);
        assert!(
            report.stats.packets_copied >= 60,
            "box-free GOPs must copy: {:?}",
            report.stats
        );
        // And compare against dde-off: everything renders.
        let mut engine_off = engine_with_video();
        engine_off.catalog_mut().add_array("bb", {
            let mut bb = v2v_data::DataArray::new();
            for i in 30..60 {
                bb.insert(
                    r(i, 30),
                    Value::Boxes(vec![BoxCoord::new(0.2, 0.2, 0.3, 0.3, "z")]),
                );
            }
            bb
        });
        let cfg = EngineConfig {
            data_rewrites: false,
            ..Default::default()
        };
        let mut engine_off = V2vEngine {
            catalog: engine_off.catalog.clone(),
            database: Database::new(),
            config: cfg,
        };
        let report_off = engine_off.run(&spec).unwrap();
        assert_eq!(report_off.stats.packets_copied, 0);
        // Same frames either way.
        let (fa, _) = report.output.decode_range(0, report.output.len()).unwrap();
        let (fb, _) = report_off
            .output
            .decode_range(0, report_off.output.len())
            .unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    fn sql_locator_binds_from_database() {
        let mut t = Table::new(
            "video_objects",
            vec![
                "video".into(),
                "model".into(),
                "timestamp".into(),
                "frame_objects".into(),
            ],
        );
        for i in 0..30 {
            t.push_row(vec![
                Value::from("a"),
                Value::from("yolov5m"),
                Value::Rational(r(i, 30)),
                Value::Boxes(vec![]),
            ]);
        }
        let mut db = Database::new();
        db.add_table(t);
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(60, 30));
        let mut engine = V2vEngine::new(catalog).with_database(db);
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .data_array(
                "bb",
                "sql:SELECT timestamp, frame_objects FROM video_objects \
                 WHERE video = 'a' AND model = 'yolov5m'",
            )
            .append_filtered("a", r(0, 1), r(1, 1), |e| bounding_box(e, "bb"))
            .build();
        let report = engine.run(&spec).unwrap();
        // All rows have empty boxes → dde collapses to a pure clip →
        // everything copies.
        assert!(report.dde_rewrites >= 1);
        assert_eq!(report.stats.frames_encoded, 0);
    }

    #[test]
    fn bad_sql_locator_reports_bind_error() {
        let mut engine = engine_with_video();
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .data_array("bb", "sql:SELEKT nope")
            .append_filtered("a", r(0, 1), r(1, 1), |e| bounding_box(e, "bb"))
            .build();
        assert!(matches!(engine.run(&spec), Err(EngineError::Bind { .. })));
    }

    #[test]
    fn check_failure_surfaces() {
        let mut engine = engine_with_video();
        // Clip past the end of the 4-second source.
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(3, 1), r(5, 1))
            .build();
        assert!(matches!(engine.run(&spec), Err(EngineError::Check(_))));
    }

    #[test]
    fn explain_produces_both_plans() {
        let mut engine = engine_with_video();
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 1), r(2, 1))
            .build();
        let report = engine.explain(&spec).unwrap();
        assert!(report.logical.contains("Clip"));
        assert!(report.physical.contains("StreamCopy"));
        assert_eq!(report.trace.fired("stream_copy"), 1);
        let text = report.pretty();
        assert!(text.contains("unoptimized logical plan"));
        assert!(text.contains("stream_copy"));
    }

    #[test]
    fn explain_analyze_measures_the_run() {
        let mut engine = engine_with_video();
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 1), r(2, 1))
            .build();
        let report = engine.explain_analyze(&spec).unwrap();
        assert_eq!(report.output_frames, 60);
        assert_eq!(report.stats().packets_copied, 60);
        assert_eq!(report.stats().frames_encoded, 0);
        assert_eq!(report.exec.segments.len(), 1);
        assert_eq!(report.exec.segments[0].kind, "stream_copy");
        assert!(report.pretty().contains("measured execution"));
    }

    #[test]
    fn run_traced_artifact_matches_run() {
        let mut engine = engine_with_video();
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_clip("a", r(1, 1), r(2, 1))
            .build();
        let (report, trace) = engine.run_traced(&spec).unwrap();
        assert_eq!(trace.exec.totals, report.stats);
        assert_eq!(trace.rewrites.fired("stream_copy"), 1);
        assert_eq!(
            trace.metrics.counter("exec.packets_copied"),
            report.stats.packets_copied
        );
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        for stage in [
            "bind",
            "specialize",
            "plan",
            "execute",
            "exec.stage.decode",
            "exec.stage.compose",
            "exec.stage.encode",
        ] {
            assert!(names.contains(&stage), "missing span {stage}: {names:?}");
        }
        // The artifact survives a JSON round trip unchanged.
        let back = crate::observe::RunTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn sql_binding_is_time_bounded() {
        // The table spans 4 s; the spec reads only [0, 1) s: bind must
        // materialize the window, not the whole query (§IV-B bounded
        // materialization).
        let mut t = Table::new(
            "video_objects",
            vec![
                "video".into(),
                "model".into(),
                "timestamp".into(),
                "frame_objects".into(),
            ],
        );
        for i in 0..120 {
            t.push_row(vec![
                Value::from("a"),
                Value::from("yolov5m"),
                Value::Rational(r(i, 30)),
                Value::Boxes(vec![]),
            ]);
        }
        let mut db = Database::new();
        db.add_table(t);
        let mut catalog = Catalog::new();
        catalog.add_video("a", marked_stream(120, 30));
        let mut engine = V2vEngine::new(catalog).with_database(db);
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .data_array(
                "bb",
                "sql:SELECT timestamp, frame_objects FROM video_objects WHERE video = 'a'",
            )
            .append_filtered("a", r(0, 1), r(1, 1), |e| bounding_box(e, "bb"))
            .build();
        engine.bind(&spec).unwrap();
        let bound = &engine.catalog().arrays()["bb"];
        assert_eq!(bound.len(), 30, "only the read window materializes");
        assert!(bound.contains(r(29, 30)));
        assert!(!bound.contains(r(30, 30)));
    }
}
