//! The unified V2V error taxonomy.
//!
//! Every layer of the system has its own error enum — [`CodecError`]
//! for bitstream parsing, [`ContainerError`] for `.svc` files,
//! [`ExecError`] for execution, [`EngineError`] for the pipeline — and
//! each is precise within its layer but opaque across layers: a caller
//! embedding the engine sees a chain of `#[from]` wrappers with no
//! stable way to ask "was this corrupt input or a missing file?".
//!
//! [`V2vError`] is the cross-layer answer: any lower-level error wraps
//! into one carrying
//!
//! * a machine-readable [`ErrorKind`] (stable, serializable, safe to
//!   match on across releases),
//! * the source location that did the wrapping (via
//!   `#[track_caller]`), so a report points at the call site rather
//!   than at an error-constructor helper,
//! * free-form context pushed by intermediate layers
//!   ([`V2vError::context`]), outermost first, and
//! * the original error as a boxed [`std::error::Error`] source, so
//!   `anyhow`-style chains and `Error::source()` walks keep working.
//!
//! Classification happens in the `From` impls, so `?` conversion does
//! the right thing without per-call-site ceremony.
//!
//! [`CodecError`]: v2v_codec::CodecError
//! [`ContainerError`]: v2v_container::ContainerError
//! [`ExecError`]: v2v_exec::ExecError

use crate::EngineError;
use serde::{Deserialize, Serialize};
use std::error::Error as StdError;
use std::panic::Location;
use v2v_codec::CodecError;
use v2v_container::ContainerError;
use v2v_exec::ExecError;

/// Stable machine-readable error classes, the cross-layer vocabulary of
/// [`V2vError::kind`]. Serialized in snake case (`corrupt_data`, …) in
/// error reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ErrorKind {
    /// Malformed or hostile input bytes: corrupt packets, truncated
    /// files, lying headers.
    CorruptData,
    /// An I/O failure (real or injected) reading or writing data.
    Io,
    /// A referenced resource (video, image, UDF, table) does not exist.
    NotFound,
    /// The spec or plan asked for something invalid (bad argument,
    /// frame off the grid, incompatible streams).
    InvalidRequest,
    /// Static checking or planning rejected the query.
    Plan,
    /// A user-supplied kernel (UDF) failed.
    Udf,
    /// Anything else: internal invariants, unclassified wrappers.
    Internal,
}

impl ErrorKind {
    /// Stable lowercase name, the same token the serde encoding uses.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::CorruptData => "corrupt_data",
            ErrorKind::Io => "io",
            ErrorKind::NotFound => "not_found",
            ErrorKind::InvalidRequest => "invalid_request",
            ErrorKind::Plan => "plan",
            ErrorKind::Udf => "udf",
            ErrorKind::Internal => "internal",
        }
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The unified error: a classified, located, contextualized wrapper
/// around any layer's error.
#[derive(Debug)]
pub struct V2vError {
    kind: ErrorKind,
    /// Context lines, outermost first.
    context: Vec<String>,
    /// Where the error was wrapped into a `V2vError`.
    location: &'static Location<'static>,
    source: Option<Box<dyn StdError + Send + Sync + 'static>>,
}

impl V2vError {
    /// A fresh error with no underlying source.
    #[track_caller]
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> V2vError {
        V2vError {
            kind,
            context: vec![message.into()],
            location: Location::caller(),
            source: None,
        }
    }

    /// Wraps an arbitrary error under an explicit kind.
    #[track_caller]
    pub fn wrap(kind: ErrorKind, source: impl StdError + Send + Sync + 'static) -> V2vError {
        V2vError {
            kind,
            context: Vec::new(),
            location: Location::caller(),
            source: Some(Box::new(source)),
        }
    }

    /// Pushes a context line (outermost first), preserving kind,
    /// location, and source.
    #[must_use]
    pub fn context(mut self, line: impl Into<String>) -> V2vError {
        self.context.insert(0, line.into());
        self
    }

    /// The machine-readable class.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// Source location where the error was wrapped.
    pub fn location(&self) -> &'static Location<'static> {
        self.location
    }
}

impl std::fmt::Display for V2vError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] ", self.kind.name())?;
        for line in &self.context {
            write!(f, "{line}: ")?;
        }
        match &self.source {
            Some(s) => write!(f, "{s}"),
            None => {
                // The last context line already carried the message;
                // trim the trailing separator.
                Ok(())
            }
        }?;
        write!(f, " (at {}:{})", self.location.file(), self.location.line())
    }
}

impl StdError for V2vError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        self.source
            .as_deref()
            .map(|s| s as &(dyn StdError + 'static))
    }
}

fn codec_kind(e: &CodecError) -> ErrorKind {
    match e {
        // Malformed bytes, or delta packets fed without their reference
        // (which is what decoding a damaged stream looks like).
        CodecError::Corrupt(_) | CodecError::MissingReference => ErrorKind::CorruptData,
        CodecError::FrameTypeMismatch { .. } | CodecError::IncompatibleStream => {
            ErrorKind::InvalidRequest
        }
    }
}

fn container_kind(e: &ContainerError) -> ErrorKind {
    match e {
        ContainerError::Io(_) => ErrorKind::Io,
        ContainerError::Codec(_) | ContainerError::BadFile(_) | ContainerError::NoKeyframe => {
            ErrorKind::CorruptData
        }
        ContainerError::NotOnGrid(_)
        | ContainerError::Incompatible
        | ContainerError::SpliceNotKeyframe
        | ContainerError::OutOfOrder => ErrorKind::InvalidRequest,
    }
}

fn exec_kind(e: &ExecError) -> ErrorKind {
    match e {
        ExecError::UnknownVideo(_) | ExecError::UnknownImage(_) | ExecError::UnknownUdf(_) => {
            ErrorKind::NotFound
        }
        ExecError::UdfFailed { .. } => ErrorKind::Udf,
        ExecError::MissingFrame { .. } | ExecError::BadArgument { .. } => ErrorKind::InvalidRequest,
        ExecError::SourceIo { .. } => ErrorKind::Io,
        ExecError::Codec(c) => codec_kind(c),
        ExecError::Container(c) => container_kind(c),
        ExecError::Plan(_) => ErrorKind::Plan,
    }
}

fn engine_kind(e: &EngineError) -> ErrorKind {
    match e {
        EngineError::Check(_) => ErrorKind::Plan,
        EngineError::Bind { .. } | EngineError::VideoBind { .. } => ErrorKind::NotFound,
        EngineError::Plan(_) => ErrorKind::Plan,
        EngineError::SegmentIndex { .. } => ErrorKind::InvalidRequest,
        EngineError::Exec(x) => exec_kind(x),
    }
}

impl From<CodecError> for V2vError {
    #[track_caller]
    fn from(e: CodecError) -> V2vError {
        V2vError::wrap(codec_kind(&e), e)
    }
}

impl From<ContainerError> for V2vError {
    #[track_caller]
    fn from(e: ContainerError) -> V2vError {
        V2vError::wrap(container_kind(&e), e)
    }
}

impl From<ExecError> for V2vError {
    #[track_caller]
    fn from(e: ExecError) -> V2vError {
        V2vError::wrap(exec_kind(&e), e)
    }
}

impl From<EngineError> for V2vError {
    #[track_caller]
    fn from(e: EngineError) -> V2vError {
        V2vError::wrap(engine_kind(&e), e)
    }
}

impl From<std::io::Error> for V2vError {
    #[track_caller]
    fn from(e: std::io::Error) -> V2vError {
        V2vError::wrap(ErrorKind::Io, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_is_stable_across_layers() {
        let corrupt: V2vError = CodecError::Corrupt("bad run".into()).into();
        assert_eq!(corrupt.kind(), ErrorKind::CorruptData);

        let bad_file: V2vError = ContainerError::BadFile("oversized header".into()).into();
        assert_eq!(bad_file.kind(), ErrorKind::CorruptData);

        let io: V2vError = ContainerError::Io(std::io::Error::other("disk gone")).into();
        assert_eq!(io.kind(), ErrorKind::Io);

        let missing: V2vError = ExecError::UnknownVideo("ghost".into()).into();
        assert_eq!(missing.kind(), ErrorKind::NotFound);

        // Nested: an exec error wrapping a codec error classifies by the
        // innermost cause.
        let nested: V2vError =
            ExecError::Codec(v2v_codec::CodecError::Corrupt("truncated".into())).into();
        assert_eq!(nested.kind(), ErrorKind::CorruptData);
    }

    #[test]
    fn display_carries_kind_location_and_context() {
        let err = V2vError::new(ErrorKind::CorruptData, "packet 3 truncated")
            .context("decoding 'clip-a'");
        let text = err.to_string();
        assert!(text.starts_with("[corrupt_data] "), "{text}");
        assert!(text.contains("decoding 'clip-a'"), "{text}");
        assert!(text.contains("packet 3 truncated"), "{text}");
        assert!(text.contains("error.rs"), "location missing: {text}");
    }

    #[test]
    fn source_chain_survives_wrapping() {
        let err: V2vError = ExecError::UnknownVideo("ghost".into()).into();
        let src = std::error::Error::source(&err).expect("source kept");
        assert!(src.to_string().contains("ghost"));
    }

    #[test]
    fn kind_serializes_snake_case() {
        assert_eq!(
            serde_json::to_string(&ErrorKind::CorruptData).unwrap(),
            "\"corrupt_data\""
        );
        let back: ErrorKind = serde_json::from_str("\"not_found\"").unwrap();
        assert_eq!(back, ErrorKind::NotFound);
    }
}
