#![warn(missing_docs)]

//! The V2V system (paper §IV): a video result synthesis engine.
//!
//! V2V extends declarative video editing with relational data joins and
//! *data-dependent rewrites*. The pipeline an engine run performs:
//!
//! ```text
//! spec ──bind data──▶ spec + arrays
//!      ──data-dependent rewriter (f_dde, two-pass)──▶ specialized spec
//!      ──type check──▶ dependency report
//!      ──lower──▶ logical plan ──optimize──▶ physical plan
//!      ──execute (parallel)──▶ output video + stats
//! ```
//!
//! * [`V2vEngine`] — the embeddable engine (the paper's "pluggable
//!   module that provides video synthesis functions for existing
//!   VDBMSs");
//! * [`dde`] — the data-dependent rewriter: per-operator equivalence
//!   functions (`IfThenElse_dde`, `BoundingBox_dde`, `Highlight_dde`, …) evaluated over
//!   the time domain in a data-only first pass, specializing the spec so
//!   the (data-agnostic) optimizer can stream-copy what the data proves
//!   untouched;
//! * [`facade`] — VDBMS integration helpers that turn relational query
//!   results (e.g. event tables) directly into synthesis specs.

pub mod dde;
pub mod engine;
pub mod error;
pub mod facade;
pub mod observe;

pub use dde::rewrite_spec;
pub use engine::{EngineConfig, PreparedRun, RunReport, V2vEngine};
pub use error::{ErrorKind, V2vError};
pub use facade::{montage_spec, MontageOptions, MontageSegment};
pub use observe::{AnalyzeReport, ExplainReport, RunTrace};

fn format_check_errors(errors: &[v2v_spec::SpecError]) -> String {
    errors
        .iter()
        .map(|e| e.to_string())
        .collect::<Vec<_>>()
        .join("; ")
}

/// Errors surfaced by engine runs.
#[derive(Debug, thiserror::Error)]
pub enum EngineError {
    /// The spec failed static checking.
    #[error("spec check failed: {}", format_check_errors(.0))]
    Check(Vec<v2v_spec::SpecError>),
    /// Data binding failed (bad locator, SQL error, missing file).
    #[error("data binding failed for '{name}': {source}")]
    Bind {
        /// The array or video name.
        name: String,
        /// Underlying failure.
        #[source]
        source: v2v_data::DataError,
    },
    /// A video locator could not be resolved.
    #[error("cannot resolve video '{name}' from locator '{locator}': {reason}")]
    VideoBind {
        /// The video name.
        name: String,
        /// The locator in the spec.
        locator: String,
        /// Why resolution failed.
        reason: String,
    },
    /// A per-segment render request named a segment the plan does not
    /// have (coordinator/worker plan mismatch).
    #[error("segment index {index} out of range for a {count}-segment plan")]
    SegmentIndex {
        /// The requested segment index.
        index: usize,
        /// Segments in the prepared plan.
        count: usize,
    },
    /// Planning failed.
    #[error(transparent)]
    Plan(#[from] v2v_plan::PlanError),
    /// Execution failed.
    #[error(transparent)]
    Exec(#[from] v2v_exec::ExecError),
}
