//! `EXPLAIN`, `EXPLAIN ANALYZE`, and the run trace artifact.
//!
//! Three views of one pipeline, in increasing cost:
//!
//! * [`ExplainReport`] — planning only: both plan renderings plus the
//!   optimizer's [`PlanTrace`] (which rewrite fired where);
//! * [`AnalyzeReport`] — plan *and* run: the same report annotated with
//!   the executor's measured [`ExecTrace`] (per-operator frames
//!   decoded/copied/encoded, bytes, seeks, wall times);
//! * [`RunTrace`] — the machine-readable artifact the CLI's `--trace`
//!   flag writes and CI's metrics-snapshot job diffs: one JSON document
//!   carrying the rewrite trace, the execution trace, pipeline-stage
//!   spans, and a metrics snapshot, stamped with
//!   [`TRACE_SCHEMA_VERSION`].
//!
//! Wall-clock fields (`wall_ns`, spans, per-segment times) are measured
//! and machine-dependent; golden comparisons must restrict themselves to
//! the counter fields.

use serde::{Deserialize, Serialize};
use v2v_exec::{ExecStats, ExecTrace};
use v2v_obs::{MetricsSnapshot, Registry, SpanRecord, TRACE_SCHEMA_VERSION};
use v2v_plan::{PlanStats, PlanTrace};

/// What `v2v explain` shows: both plans and the rewrite history, no
/// execution.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExplainReport {
    /// The unoptimized logical plan, rendered.
    pub logical: String,
    /// The optimized physical plan, rendered.
    pub physical: String,
    /// The optimizer's rewrite trace.
    pub trace: PlanTrace,
    /// Optimizer summary counters.
    pub plan_stats: PlanStats,
    /// Operator sites specialized by the data-dependent rewriter before
    /// planning.
    pub dde_rewrites: u64,
}

impl ExplainReport {
    /// Pretty rendering: both plans plus the rewrite trace.
    pub fn pretty(&self) -> String {
        format!(
            "--- unoptimized logical plan ---\n{}\n--- optimized physical plan ---\n{}\n--- rewrites ({} data-dependent) ---\n{}",
            self.logical, self.physical, self.dde_rewrites, self.trace.pretty()
        )
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }
}

/// What `v2v explain --analyze` shows: the plan annotated with measured
/// per-operator execution metrics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeReport {
    /// The planning-side report.
    pub explain: ExplainReport,
    /// The executor's measured per-segment trace.
    pub exec: ExecTrace,
    /// Output frames produced.
    pub output_frames: u64,
}

impl AnalyzeReport {
    /// Run-level cost totals.
    pub fn stats(&self) -> ExecStats {
        self.exec.totals
    }

    /// Pretty rendering: the explain output plus measured per-segment
    /// metrics.
    pub fn pretty(&self) -> String {
        format!(
            "{}--- measured execution ({} output frame(s)) ---\n{}",
            self.explain.pretty(),
            self.output_frames,
            self.exec.pretty()
        )
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("report serializes")
    }
}

/// The single JSON trace artifact of one run (`v2v run --trace`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Trace format version ([`TRACE_SCHEMA_VERSION`]); bump on
    /// breaking layout changes so CI goldens fail loudly.
    pub schema_version: u32,
    /// Operator sites specialized by the data-dependent rewriter.
    pub dde_rewrites: u64,
    /// Optimizer summary counters.
    pub plan_stats: PlanStats,
    /// The optimizer's rewrite trace.
    pub rewrites: PlanTrace,
    /// The executor's measured per-segment trace.
    pub exec: ExecTrace,
    /// Pipeline-stage spans (`bind`, `specialize`, `plan`, `execute`),
    /// epoch-relative.
    pub spans: Vec<SpanRecord>,
    /// Run-level metrics snapshot (counters mirror
    /// [`ExecStats`], plus distribution histograms such as per-segment
    /// wall time).
    pub metrics: MetricsSnapshot,
}

impl RunTrace {
    /// Assembles the artifact from the pipeline's pieces. The metrics
    /// snapshot is built here — counters mirror the stats totals, and a
    /// histogram captures the per-segment wall-time distribution.
    pub fn assemble(
        dde_rewrites: u64,
        plan_stats: PlanStats,
        rewrites: PlanTrace,
        exec: ExecTrace,
        spans: Vec<SpanRecord>,
    ) -> RunTrace {
        let registry = Registry::new();
        let t = exec.totals;
        registry
            .counter("exec.frames_decoded")
            .add(t.frames_decoded);
        registry
            .counter("exec.frames_encoded")
            .add(t.frames_encoded);
        registry
            .counter("exec.packets_copied")
            .add(t.packets_copied);
        registry.counter("exec.bytes_copied").add(t.bytes_copied);
        registry.counter("exec.bytes_decoded").add(t.bytes_decoded);
        registry.counter("exec.bytes_encoded").add(t.bytes_encoded);
        registry.counter("exec.seeks").add(t.seeks);
        registry.counter("exec.segments").add(t.segments);
        registry
            .counter("exec.gop_cache_hits")
            .add(t.gop_cache_hits);
        registry
            .counter("exec.gop_cache_misses")
            .add(t.gop_cache_misses);
        registry.counter("exec.splits").add(t.splits);
        registry.counter("exec.steals").add(t.steals);
        registry
            .counter("exec.faults.injected")
            .add(t.faults_injected);
        registry.counter("exec.faults.retries").add(t.retries);
        registry
            .counter("exec.faults.parts_skipped")
            .add(t.parts_skipped);
        registry
            .counter("exec.faults.parts_substituted")
            .add(t.parts_substituted);
        registry
            .counter("exec.faults.frames_substituted")
            .add(t.frames_substituted);
        registry
            .counter("exec.cache.result_hits")
            .add(t.cache.result_hits);
        registry
            .counter("exec.cache.segment_hits")
            .add(t.cache.segment_hits);
        registry
            .counter("exec.cache.evictions")
            .add(t.cache.evictions);
        registry
            .counter("exec.cache.bytes_reused")
            .add(t.cache.bytes_reused);
        registry
            .counter("exec.cache.inflight_hits")
            .add(t.cache.inflight_hits);
        registry
            .counter("exec.cache.shared_segment_hits")
            .add(t.cache.shared_segment_hits);
        registry
            .counter("exec.cache.mem_hits")
            .add(t.cache.mem_hits);
        registry
            .counter("plan.rewrite_events")
            .add(rewrites.events.len() as u64);
        let seg_wall = registry.histogram("exec.segment_wall_ns");
        let seg_decoded = registry.histogram("exec.segment_frames_decoded");
        for s in &exec.segments {
            seg_wall.record(s.wall_ns);
            seg_decoded.record(s.stats.frames_decoded);
        }
        RunTrace {
            schema_version: TRACE_SCHEMA_VERSION,
            dde_rewrites,
            plan_stats,
            rewrites,
            exec,
            spans,
            metrics: registry.snapshot(),
        }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("trace serializes")
    }

    /// Parses a trace back from JSON.
    pub fn from_json(text: &str) -> Result<RunTrace, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_trace_round_trip_and_metrics_mirror_stats() {
        let mut rewrites = PlanTrace::default();
        rewrites.record("stream_copy", 0, "a #0..#60", 1, 1);
        let exec = ExecTrace {
            totals: ExecStats {
                frames_decoded: 12,
                packets_copied: 60,
                segments: 2,
                ..Default::default()
            },
            ..Default::default()
        };
        let trace = RunTrace::assemble(1, PlanStats::default(), rewrites, exec, vec![]);
        assert_eq!(trace.schema_version, TRACE_SCHEMA_VERSION);
        assert_eq!(trace.metrics.counter("exec.frames_decoded"), 12);
        assert_eq!(trace.metrics.counter("exec.packets_copied"), 60);
        assert_eq!(trace.metrics.counter("plan.rewrite_events"), 1);
        let back = RunTrace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn reports_pretty_sections() {
        let explain = ExplainReport {
            logical: "Concat".into(),
            physical: "StreamCopy".into(),
            trace: PlanTrace::default(),
            plan_stats: PlanStats::default(),
            dde_rewrites: 0,
        };
        let text = explain.pretty();
        assert!(text.contains("unoptimized logical plan"));
        assert!(text.contains("optimized physical plan"));
        assert!(text.contains("rewrites"));
        let analyze = AnalyzeReport {
            explain,
            exec: ExecTrace::default(),
            output_frames: 60,
        };
        assert!(analyze.pretty().contains("measured execution"));
    }
}
