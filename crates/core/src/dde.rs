//! The data-dependent rewriter (paper §IV-C).
//!
//! "We use a two-pass execution method: the first is data-only, and the
//! second is the full execution. The first data-only pass applies
//! rewrites to the spec based on the data referenced by the spec. Each
//! operator is associated with a new *data-dependent equivalence*
//! function, denoted as `f_dde`. This function only takes non-frame
//! 'relational data' parameters and returns an equivalent expression."
//!
//! The rewriter walks the render expression with its evaluation domain,
//! evaluates every data-dependent operator's `f_dde` at each instant, and
//! partitions the domain by outcome: instants where the operator reduces
//! to a pass-through of one frame argument become match arms around that
//! argument. The rewritten spec is equivalent to the input *on the
//! referenced data*, and exposes identity spans the optimizer can turn
//! into stream copies.

use std::collections::BTreeMap;
use v2v_data::{DataArray, Value};
use v2v_spec::{Arg, DataExpr, RenderExpr, Spec, TransformOp};
use v2v_time::{Rational, TimeSet};

/// Outcome of one operator's `f_dde` at one instant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Outcome {
    /// The operator must run.
    Keep,
    /// The operator is equivalent to its `i`-th *frame* argument.
    PassThrough(usize),
}

/// `f_dde` table: evaluates an operator's data-dependent equivalence on
/// the data argument values (in signature order, frames excluded).
///
/// Returns `None` for operators with no data-dependent equivalence.
fn f_dde(op: TransformOp, data: &[Value]) -> Option<Outcome> {
    use TransformOp as Op;
    let num = |v: &Value| v.as_f64();
    match op {
        // IfThenElse_dde(c, x, y) = x if c, y if ¬c (NULL → else).
        Op::IfThenElse => Some(match data[0].as_bool() {
            Some(true) => Outcome::PassThrough(0),
            _ => Outcome::PassThrough(1),
        }),
        // BoundingBox_dde(x, b) = x iff |b| = 0; Highlight likewise.
        Op::BoundingBox | Op::Highlight => Some(match data[0].as_boxes() {
            Some([]) => Outcome::PassThrough(0),
            Some(_) => Outcome::Keep,
            None => Outcome::PassThrough(0), // non-boxes data: nothing to draw
        }),
        // Empty text draws nothing.
        Op::TextOverlay => Some(match &data[0] {
            Value::Null => Outcome::PassThrough(0),
            Value::Str(s) if s.is_empty() => Outcome::PassThrough(0),
            _ => Outcome::Keep,
        }),
        // Degenerate numeric parameters reduce to identity.
        Op::Blur | Op::Sharpen => Some(match num(&data[0]) {
            Some(v) if v <= 0.0 => Outcome::PassThrough(0),
            Some(_) => Outcome::Keep,
            None => Outcome::PassThrough(0),
        }),
        Op::Zoom => Some(match num(&data[0]) {
            Some(v) if v <= 1.0 => Outcome::PassThrough(0),
            Some(_) => Outcome::Keep,
            None => Outcome::PassThrough(0),
        }),
        Op::FadeToBlack => Some(match num(&data[0]) {
            Some(v) if v <= 0.0 => Outcome::PassThrough(0),
            Some(_) => Outcome::Keep,
            None => Outcome::PassThrough(0),
        }),
        // Crossfade endpoints select one side outright.
        Op::Crossfade => Some(match num(&data[0]) {
            Some(v) if v <= 0.0 => Outcome::PassThrough(0),
            Some(v) if v >= 1.0 => Outcome::PassThrough(1),
            Some(_) => Outcome::Keep,
            None => Outcome::PassThrough(0),
        }),
        // Fully transparent overlays vanish.
        Op::OverlayAt => Some(match num(&data[3]) {
            Some(v) if v <= 0.0 => Outcome::PassThrough(0),
            Some(_) => Outcome::Keep,
            None => Outcome::Keep,
        }),
        _ => None,
    }
}

/// `true` if [`f_dde`] defines an equivalence for this operator.
fn has_dde(op: TransformOp) -> bool {
    use TransformOp as Op;
    matches!(
        op,
        Op::IfThenElse
            | Op::BoundingBox
            | Op::Highlight
            | Op::TextOverlay
            | Op::Blur
            | Op::Sharpen
            | Op::Zoom
            | Op::FadeToBlack
            | Op::Crossfade
            | Op::OverlayAt
    )
}

/// Rewrites a spec's render expression against bound data arrays.
///
/// Returns the specialized spec and the number of operator sites that
/// were rewritten (0 means the spec came back unchanged). Applies every
/// profitable split (`min_run = 1`); engines should prefer
/// [`rewrite_spec_with_min_run`] with a GOP-derived threshold.
pub fn rewrite_spec(spec: &Spec, arrays: &BTreeMap<String, DataArray>) -> (Spec, usize) {
    rewrite_spec_with_min_run(spec, arrays, 1)
}

/// Like [`rewrite_spec`], but pass-through spans shorter than `min_run`
/// consecutive output frames are left in place.
///
/// A rewrite only pays off when the identity span it exposes is long
/// enough for the optimizer to stream-copy (roughly a GOP); splitting a
/// dense timeline at every isolated object-free frame fragments the plan
/// into single-frame segments that each restart a GOP — strictly worse
/// than running the operator. This is the rewriter's benefit heuristic,
/// mirroring a cost-based optimizer declining an unprofitable rewrite.
pub fn rewrite_spec_with_min_run(
    spec: &Spec,
    arrays: &BTreeMap<String, DataArray>,
    min_run: u64,
) -> (Spec, usize) {
    let mut ctx = RewriteCtx {
        arrays,
        step: spec.output.frame_dur,
        min_run: min_run.max(1),
        rewrites: 0,
    };
    let render = rewrite(&spec.render, &spec.time_domain, &mut ctx);
    (
        Spec {
            render,
            ..spec.clone()
        },
        ctx.rewrites,
    )
}

struct RewriteCtx<'a> {
    arrays: &'a BTreeMap<String, DataArray>,
    step: Rational,
    min_run: u64,
    rewrites: usize,
}

/// Splits a sorted instant list into maximal runs contiguous at `step`,
/// returning `(kept_runs_concatenated, spilled_short_run_instants)`.
fn filter_short_runs(
    instants: Vec<Rational>,
    step: Rational,
    min_run: u64,
) -> (Vec<Rational>, Vec<Rational>) {
    if min_run <= 1 {
        return (instants, Vec::new());
    }
    let mut kept = Vec::with_capacity(instants.len());
    let mut spilled = Vec::new();
    let mut run: Vec<Rational> = Vec::new();
    let flush = |run: &mut Vec<Rational>, kept: &mut Vec<Rational>, spilled: &mut Vec<Rational>| {
        if run.len() as u64 >= min_run {
            kept.append(run);
        } else {
            spilled.append(run);
        }
    };
    for t in instants {
        if let Some(&last) = run.last() {
            if t - last != step {
                flush(&mut run, &mut kept, &mut spilled);
            }
        }
        run.push(t);
    }
    flush(&mut run, &mut kept, &mut spilled);
    (kept, spilled)
}

fn rewrite(expr: &RenderExpr, domain: &TimeSet, ctx: &mut RewriteCtx<'_>) -> RenderExpr {
    if domain.is_empty() {
        return expr.clone();
    }
    match expr {
        RenderExpr::FrameRef { .. } => expr.clone(),
        RenderExpr::Match { arms } => {
            let mut remaining = domain.clone();
            let new_arms = arms
                .iter()
                .map(|arm| {
                    let covered = remaining.intersect(&arm.when);
                    remaining = remaining.difference(&covered);
                    v2v_spec::expr::MatchArm {
                        when: arm.when.clone(),
                        expr: rewrite(&arm.expr, &covered, ctx),
                    }
                })
                .collect();
            RenderExpr::Match { arms: new_arms }
        }
        RenderExpr::Transform { op, args } => {
            // Rewrite frame arguments first (inner-to-outer pass).
            let args: Vec<Arg> = args
                .iter()
                .map(|a| match a {
                    Arg::Frame(e) => Arg::Frame(rewrite(e, domain, ctx)),
                    Arg::Data(d) => Arg::Data(d.clone()),
                })
                .collect();
            let data_exprs: Vec<&DataExpr> = args.iter().filter_map(|a| a.as_data()).collect();
            if !has_dde(*op) || data_exprs.is_empty() {
                return RenderExpr::Transform { op: *op, args };
            }
            // Evaluate f_dde at every instant of the domain and partition.
            let mut partitions: BTreeMap<Outcome, Vec<Rational>> = BTreeMap::new();
            for t in domain.iter() {
                let values: Vec<Value> = data_exprs.iter().map(|d| d.eval(t, ctx.arrays)).collect();
                let outcome = f_dde(*op, &values).expect("op checked above");
                partitions.entry(outcome).or_default().push(t);
            }
            // Benefit heuristic: pass-through spans shorter than min_run
            // frames stay with the operator.
            if partitions.len() > 1 && ctx.min_run > 1 {
                let mut spill_to_keep: Vec<Rational> = Vec::new();
                for (outcome, instants) in std::mem::take(&mut partitions) {
                    match outcome {
                        Outcome::Keep => partitions
                            .entry(Outcome::Keep)
                            .or_default()
                            .extend(instants),
                        Outcome::PassThrough(_) => {
                            let (kept, spilled) =
                                filter_short_runs(instants, ctx.step, ctx.min_run);
                            if !kept.is_empty() {
                                partitions.entry(outcome).or_default().extend(kept);
                            }
                            spill_to_keep.extend(spilled);
                        }
                    }
                }
                if !spill_to_keep.is_empty() {
                    partitions
                        .entry(Outcome::Keep)
                        .or_default()
                        .extend(spill_to_keep);
                }
                if let Some(keep) = partitions.get_mut(&Outcome::Keep) {
                    keep.sort();
                }
            }
            if partitions.len() == 1 {
                let (outcome, _) = partitions.into_iter().next().expect("one partition");
                return match outcome {
                    Outcome::Keep => RenderExpr::Transform { op: *op, args },
                    Outcome::PassThrough(i) => {
                        ctx.rewrites += 1;
                        frame_arg(&args, i)
                    }
                };
            }
            ctx.rewrites += 1;
            let arms = partitions
                .into_iter()
                .map(|(outcome, instants)| {
                    let when = TimeSet::from_instants(instants);
                    let expr = match outcome {
                        Outcome::Keep => RenderExpr::Transform {
                            op: *op,
                            args: args.clone(),
                        },
                        Outcome::PassThrough(i) => frame_arg(&args, i),
                    };
                    (when, expr)
                })
                .collect();
            RenderExpr::matching(arms)
        }
    }
}

/// The `i`-th frame argument of an argument list.
fn frame_arg(args: &[Arg], i: usize) -> RenderExpr {
    args.iter()
        .filter_map(|a| a.as_frame())
        .nth(i)
        .expect("f_dde references an existing frame argument")
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_frame::{BoxCoord, FrameType};
    use v2v_spec::builder::{bounding_box, if_then_else};
    use v2v_spec::{OutputSettings, SpecBuilder};
    use v2v_time::{r, TimeRange};

    fn output() -> OutputSettings {
        OutputSettings::new(FrameType::yuv420p(64, 64), 30)
    }

    fn instants(n: i64) -> TimeSet {
        TimeSet::from_range(TimeRange::from_parts(r(0, 1), r(1, 1), n as u64))
    }

    /// The paper's worked example: a = [3, 6, 8],
    /// Render(t) = IfThenElse(a[t] < 5, vid1[t], vid2[t])
    /// rewrites to match t { {0} => vid1[t], {1, 2} => vid2[t] }.
    #[test]
    fn paper_if_then_else_example() {
        let spec = v2v_spec::Spec {
            time_domain: instants(3),
            render: if_then_else(
                DataExpr::lt(DataExpr::array("a"), DataExpr::constant(5i64)),
                RenderExpr::video("vid1"),
                RenderExpr::video("vid2"),
            ),
            videos: [
                ("vid1".to_string(), "v1.svc".to_string()),
                ("vid2".to_string(), "v2.svc".to_string()),
            ]
            .into(),
            data_arrays: [("a".to_string(), "a.json".to_string())].into(),
            output: OutputSettings {
                frame_dur: r(1, 1),
                ..output()
            },
        };
        let arrays: BTreeMap<String, DataArray> = [(
            "a".to_string(),
            DataArray::from_pairs([
                (r(0, 1), Value::Int(3)),
                (r(1, 1), Value::Int(6)),
                (r(2, 1), Value::Int(8)),
            ]),
        )]
        .into();
        let (rewritten, n) = rewrite_spec(&spec, &arrays);
        assert_eq!(n, 1);
        let RenderExpr::Match { arms } = &rewritten.render else {
            panic!("expected a match, got {:?}", rewritten.render);
        };
        assert_eq!(arms.len(), 2);
        // PassThrough(0) = vid1 covers {0}; PassThrough(1) = vid2 covers {1, 2}.
        let vid1_arm = arms
            .iter()
            .find(|a| matches!(&a.expr, RenderExpr::FrameRef { video, .. } if video == "vid1"))
            .expect("vid1 arm");
        assert!(vid1_arm.when.set_eq(&TimeSet::singleton(r(0, 1))));
        let vid2_arm = arms
            .iter()
            .find(|a| matches!(&a.expr, RenderExpr::FrameRef { video, .. } if video == "vid2"))
            .expect("vid2 arm");
        assert_eq!(vid2_arm.when.count(), 2);
    }

    #[test]
    fn bounding_box_empty_spans_become_identity() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .data_array("bb", "bb.json")
            .append_filtered("a", r(0, 1), r(1, 1), |e| bounding_box(e, "bb"))
            .build();
        // Boxes only on frames 10..20 of 30.
        let mut bb = DataArray::new();
        for i in 10..20 {
            bb.insert(
                r(i, 30),
                Value::Boxes(vec![BoxCoord::new(0.1, 0.1, 0.2, 0.2, "z")]),
            );
        }
        let arrays: BTreeMap<String, DataArray> = [("bb".to_string(), bb)].into();
        let (rewritten, n) = rewrite_spec(&spec, &arrays);
        assert_eq!(n, 1);
        let RenderExpr::Match { arms } = &rewritten.render else {
            panic!("expected match");
        };
        assert_eq!(arms.len(), 2);
        // Identity arm covers 20 instants, boxed arm covers 10.
        let identity_arm = arms
            .iter()
            .find(|a| matches!(a.expr, RenderExpr::FrameRef { .. }))
            .expect("identity arm");
        assert_eq!(identity_arm.when.count(), 20);
    }

    #[test]
    fn all_empty_boxes_collapse_without_match() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .data_array("bb", "bb.json")
            .append_filtered("a", r(0, 1), r(1, 1), |e| bounding_box(e, "bb"))
            .build();
        let arrays: BTreeMap<String, DataArray> = [("bb".to_string(), DataArray::new())].into();
        let (rewritten, n) = rewrite_spec(&spec, &arrays);
        assert_eq!(n, 1);
        assert!(
            matches!(rewritten.render, RenderExpr::FrameRef { .. }),
            "BoundingBox over no objects is the identity: {:?}",
            rewritten.render
        );
    }

    #[test]
    fn dense_boxes_leave_spec_unchanged() {
        // The paper's ToS observation: objects on nearly every frame →
        // data rewrites cannot help.
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .data_array("bb", "bb.json")
            .append_filtered("a", r(0, 1), r(1, 1), |e| bounding_box(e, "bb"))
            .build();
        let mut bb = DataArray::new();
        for i in 0..30 {
            bb.insert(
                r(i, 30),
                Value::Boxes(vec![BoxCoord::new(0.1, 0.1, 0.2, 0.2, "z")]),
            );
        }
        let arrays: BTreeMap<String, DataArray> = [("bb".to_string(), bb)].into();
        let (rewritten, n) = rewrite_spec(&spec, &arrays);
        assert_eq!(n, 0);
        assert_eq!(rewritten.render, spec.render);
    }

    #[test]
    fn non_data_ops_untouched() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_filtered("a", r(0, 1), r(1, 1), |e| {
                v2v_spec::builder::grid4(e.clone(), e.clone(), e.clone(), e)
            })
            .build();
        let (rewritten, n) = rewrite_spec(&spec, &BTreeMap::new());
        assert_eq!(n, 0);
        assert_eq!(rewritten.render, spec.render);
    }

    #[test]
    fn constant_blur_sigma_zero_elides() {
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .append_filtered("a", r(0, 1), r(1, 1), |e| v2v_spec::builder::blur(e, 0.0))
            .build();
        let (rewritten, n) = rewrite_spec(&spec, &BTreeMap::new());
        assert_eq!(n, 1);
        assert!(matches!(rewritten.render, RenderExpr::FrameRef { .. }));
    }

    #[test]
    fn nested_rewrites_compose() {
        // Blur(BoundingBox(x, empty), 0) collapses all the way to x.
        let spec = SpecBuilder::new(output())
            .video("a", "a.svc")
            .data_array("bb", "bb.json")
            .append_filtered("a", r(0, 1), r(1, 1), |e| {
                v2v_spec::builder::blur(bounding_box(e, "bb"), 0.0)
            })
            .build();
        let arrays: BTreeMap<String, DataArray> = [("bb".to_string(), DataArray::new())].into();
        let (rewritten, n) = rewrite_spec(&spec, &arrays);
        assert_eq!(n, 2);
        assert!(matches!(rewritten.render, RenderExpr::FrameRef { .. }));
    }
}
