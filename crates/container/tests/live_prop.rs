//! Append-under-read torture for the live container: arbitrary
//! interleavings of appends, mid-append crashes (torn batch records),
//! and reads must always yield the last *committed* prefix — never a
//! parse error, never a torn batch — and the recovered stream's digest
//! must match a from-scratch seal of the same packets.

use proptest::prelude::*;
use v2v_codec::CodecParams;
use v2v_container::{read_svc, read_svc_live, LiveWriter, VideoStream};
use v2v_frame::{Frame, FrameType};
use v2v_time::{r, Rational};

const GOP: usize = 4;
const TOTAL: usize = 64;

/// The full source history every test draws batches from.
fn history() -> VideoStream {
    let ty = FrameType::gray8(32, 32);
    let params = CodecParams::new(ty, GOP as u32, 0);
    let mut w = v2v_container::StreamWriter::new(params, Rational::ZERO, r(1, 30));
    for i in 0..TOTAL {
        let mut f = Frame::black(ty);
        for (k, v) in f.plane_mut(0).data_mut().iter_mut().enumerate() {
            *v = ((i * 31 + k) % 256) as u8;
        }
        w.push_frame(&f).unwrap();
    }
    w.finish().unwrap()
}

/// Frames `a..b` of the history, stamped at their absolute instants.
fn slice(h: &VideoStream, a: usize, b: usize) -> VideoStream {
    let at = h.start() + h.frame_dur() * Rational::from_int(a as i64);
    let packets = h.copy_packet_range(a, b, at).unwrap();
    VideoStream::new(*h.params(), at, h.frame_dur(), packets).unwrap()
}

/// A from-scratch seal of the first `n` frames: the digest ground
/// truth a recovered live prefix must match.
fn sealed_prefix(h: &VideoStream, n: usize) -> VideoStream {
    let packets = h.copy_packet_range(0, n, h.start()).unwrap();
    VideoStream::new(*h.params(), h.start(), h.frame_dur(), packets).unwrap()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("v2v_live_prop_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// One scripted operation against the live file.
#[derive(Debug, Clone)]
enum Op {
    /// Append up to this many GOPs of fresh history (one batch).
    Append(usize),
    /// Append one GOP but tear the batch record at this byte fraction —
    /// the crash leaves a partial record on disk and kills the writer.
    Crash(f64),
    /// Scribble this many junk bytes past the committed end, as a torn
    /// header of a batch that never got further.
    Junk(usize),
    /// Read mid-history and check the committed prefix.
    Read,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..4).prop_map(Op::Append),
        (0.0f64..1.0).prop_map(Op::Crash),
        (1usize..24).prop_map(Op::Junk),
        Just(Op::Read),
    ]
}

/// Asserts the on-disk live container holds exactly the first
/// `committed` frames of the history, readable both through the live
/// reader and the format-sniffing `read_svc`, with digests equal to a
/// from-scratch seal.
fn check_committed(path: &std::path::Path, h: &VideoStream, committed: usize) {
    let live = read_svc_live(path).expect("committed prefix must always parse");
    assert_eq!(live.len(), committed, "reader sees the committed prefix");
    let sealed = sealed_prefix(h, committed);
    assert_eq!(
        live.content_digest(),
        sealed.content_digest(),
        "recovered prefix digest matches a from-scratch seal"
    );
    assert_eq!(
        live.content_digest(),
        h.prefix_digest(committed),
        "prefix-incremental digest agrees with the sealed prefix"
    );
    // The sniffing entry point agrees with the dedicated one.
    let sniffed = read_svc(path).expect("read_svc dispatches on the live magic");
    assert_eq!(sniffed.len(), committed);
    assert_eq!(sniffed.content_digest(), sealed.content_digest());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of appends, torn-record crashes, junk tails,
    /// and reads keeps every read at the committed prefix, and
    /// recovery (`LiveWriter::open`) always resumes cleanly.
    #[test]
    fn interleaved_appends_crashes_and_reads_always_see_the_committed_prefix(
        ops in prop::collection::vec(op_strategy(), 1..12),
        seed in 0u32..1000,
    ) {
        let h = history();
        let path = tmp(&format!("torture_{seed}_{}.svc", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut writer =
            Some(LiveWriter::create(&path, *h.params(), h.start(), h.frame_dur()).unwrap());
        let mut committed = 0usize;
        for op in ops {
            match op {
                Op::Append(gops) => {
                    let take = (gops * GOP).min(TOTAL - committed);
                    if take == 0 {
                        continue;
                    }
                    let w = match writer.as_mut() {
                        Some(w) => w,
                        None => {
                            writer = Some(LiveWriter::open(&path).unwrap());
                            writer.as_mut().unwrap()
                        }
                    };
                    w.append_stream(&slice(&h, committed, committed + take)).unwrap();
                    committed += take;
                    prop_assert_eq!(w.committed() as usize, committed);
                }
                Op::Crash(frac) => {
                    if committed + GOP > TOTAL {
                        continue;
                    }
                    // Perform a real append, then tear its record: the
                    // file keeps only a prefix of the batch bytes, as a
                    // crash between write and sync would leave it.
                    let before = std::fs::metadata(&path).unwrap().len();
                    let w = match writer.as_mut() {
                        Some(w) => w,
                        None => {
                            writer = Some(LiveWriter::open(&path).unwrap());
                            writer.as_mut().unwrap()
                        }
                    };
                    w.append_stream(&slice(&h, committed, committed + GOP)).unwrap();
                    let after = std::fs::metadata(&path).unwrap().len();
                    let record = after - before;
                    let keep = before + ((record - 1) as f64 * frac) as u64;
                    let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
                    f.set_len(keep).unwrap();
                    drop(f);
                    writer = None; // the crash killed the writer
                }
                Op::Junk(n) => {
                    use std::io::Write as _;
                    let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
                    f.write_all(&vec![0xAAu8; n]).unwrap();
                    drop(f);
                    writer = None; // stale offsets: recover before reuse
                }
                Op::Read => check_committed(&path, &h, committed),
            }
            // Readers never depend on the writer being alive or sane.
            check_committed(&path, &h, committed);
        }

        // Recovery after the final op: open truncates debris and the
        // next append lands exactly where the model says.
        let mut w = writer.unwrap_or_else(|| LiveWriter::open(&path).unwrap());
        prop_assert_eq!(w.committed() as usize, committed);
        if committed < TOTAL {
            w.append_stream(&slice(&h, committed, TOTAL)).unwrap();
            committed = TOTAL;
        }
        drop(w);
        check_committed(&path, &h, committed);
        std::fs::remove_file(&path).unwrap();
    }
}

/// A live reader racing a live writer: every successful read taken
/// while batches are landing must be a committed, GOP-aligned prefix
/// whose digest matches the from-scratch seal of that length.
#[test]
fn concurrent_reads_only_ever_see_committed_prefixes() {
    let h = history();
    let path = tmp("concurrent.svc");
    let _ = std::fs::remove_file(&path);
    let mut writer = LiveWriter::create(&path, *h.params(), h.start(), h.frame_dur()).unwrap();

    // Digest ground truth for every batch boundary.
    let expect: Vec<u64> = (0..=TOTAL / GOP)
        .map(|k| sealed_prefix(&h, k * GOP).content_digest())
        .collect();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader = {
        let path = path.clone();
        let stop = std::sync::Arc::clone(&stop);
        let expect = expect.clone();
        std::thread::spawn(move || {
            let mut seen = 0usize;
            let mut reads = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let s = read_svc_live(&path).expect("reads never fail mid-append");
                assert_eq!(s.len() % GOP, 0, "only whole batches are visible");
                assert!(s.len() >= seen, "committed prefixes only grow");
                seen = s.len();
                assert_eq!(
                    s.content_digest(),
                    expect[s.len() / GOP],
                    "every read is byte-identical to a sealed prefix"
                );
                reads += 1;
            }
            reads
        })
    };

    for k in 0..TOTAL / GOP {
        writer
            .append_stream(&slice(&h, k * GOP, (k + 1) * GOP))
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let reads = reader.join().unwrap();
    assert!(reads > 0, "the reader must actually have raced the writer");
    assert_eq!(writer.committed() as usize, TOTAL);
    drop(writer);
    std::fs::remove_file(&path).unwrap();
}
