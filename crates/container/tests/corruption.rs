//! Failure injection: corrupted container files and packet payloads must
//! surface errors, never panic or loop.

use proptest::prelude::*;
use v2v_codec::CodecParams;
use v2v_container::{read_svc, write_svc, StreamWriter, VideoStream};
use v2v_frame::{Frame, FrameType};
use v2v_time::{r, Rational};

fn sample_stream() -> VideoStream {
    let ty = FrameType::yuv420p(32, 32);
    let params = CodecParams::new(ty, 4, 2);
    let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
    for i in 0..10 {
        let mut f = Frame::black(ty);
        for v in f.plane_mut(0).data_mut() {
            *v = (i * 20 % 256) as u8;
        }
        w.push_frame(&f).unwrap();
    }
    w.finish().unwrap()
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("v2v_corruption_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flipping any single byte of a container file either still loads a
    /// structurally consistent stream or fails cleanly — no panics.
    #[test]
    fn single_byte_flip_never_panics(pos_frac in 0.0f64..1.0, xor in 1u8..=255) {
        let s = sample_stream();
        let path = tmp(&format!("flip_{pos_frac:.6}_{xor}.svc"));
        write_svc(&s, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= xor;
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(stream) = read_svc(&path) {
            // Loaded despite the flip (payload-only damage): decoding must
            // not panic either, whatever it returns.
            let _ = stream.decode_range(0, stream.len());
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Truncating a container file at any point fails cleanly or loads a
    /// consistent prefix.
    #[test]
    fn truncation_never_panics(keep_frac in 0.0f64..1.0) {
        let s = sample_stream();
        let path = tmp(&format!("trunc_{keep_frac:.6}.svc"));
        write_svc(&s, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let keep = (bytes.len() as f64 * keep_frac) as usize;
        std::fs::write(&path, &bytes[..keep]).unwrap();
        if let Ok(stream) = read_svc(&path) {
            let _ = stream.decode_range(0, stream.len());
        }
        std::fs::remove_file(&path).unwrap();
    }

    /// Random garbage is rejected (or at worst decodes to errors).
    #[test]
    fn random_garbage_rejected(data in prop::collection::vec(any::<u8>(), 0..512)) {
        let path = tmp(&format!("garbage_{}.svc", data.len()));
        std::fs::write(&path, &data).unwrap();
        if let Ok(stream) = read_svc(&path) {
            let _ = stream.decode_range(0, stream.len());
        }
        std::fs::remove_file(&path).unwrap();
    }
}
