//! Stream assembly: encoding frames and splicing copied packets.

use crate::stream::VideoStream;
use crate::ContainerError;
use v2v_codec::{CodecParams, Encoder, Packet};
use v2v_frame::Frame;
use v2v_time::Rational;

/// Builds a [`VideoStream`] by encoding frames, splicing stream-copied
/// packets, or both — the output-side abstraction of the execution
/// engine.
///
/// Splicing a packet run after encoded frames (or vice versa) is legal
/// only when the run starts with a keyframe; the writer re-stamps all
/// timestamps onto its own output grid and forces a keyframe on the first
/// encoded frame after any splice.
pub struct StreamWriter {
    params: CodecParams,
    start: Rational,
    frame_dur: Rational,
    encoder: Encoder,
    packets: Vec<Packet>,
    frames_encoded: u64,
    packets_copied: u64,
    bytes_copied: u64,
}

impl StreamWriter {
    /// A writer producing a stream on the grid `start + k · frame_dur`.
    pub fn new(params: CodecParams, start: Rational, frame_dur: Rational) -> StreamWriter {
        StreamWriter {
            params,
            start,
            frame_dur,
            encoder: Encoder::new(params),
            packets: Vec::new(),
            frames_encoded: 0,
            packets_copied: 0,
            bytes_copied: 0,
        }
    }

    fn next_pts(&self) -> Rational {
        self.start + self.frame_dur * Rational::from_int(self.packets.len() as i64)
    }

    /// Encodes `frame` as the next output frame.
    pub fn push_frame(&mut self, frame: &Frame) -> Result<(), ContainerError> {
        let pts = self.next_pts();
        let packet = self.encoder.encode(frame, pts)?;
        self.packets.push(packet);
        self.frames_encoded += 1;
        Ok(())
    }

    /// Splices a run of compressed packets (from `VideoStream::
    /// copy_packet_range` on a compatible stream). The run must start
    /// with a keyframe.
    pub fn push_copied(&mut self, packets: &[Packet]) -> Result<(), ContainerError> {
        let Some(first) = packets.first() else {
            return Ok(());
        };
        if !first.keyframe {
            return Err(ContainerError::SpliceNotKeyframe);
        }
        for p in packets {
            let pts = self.next_pts();
            self.bytes_copied += p.size() as u64;
            self.packets_copied += 1;
            self.packets.push(p.retimed(pts));
        }
        // Any subsequent encoded frame must restart its own GOP: the
        // copied packets displaced the encoder's reference.
        self.encoder.reset();
        Ok(())
    }

    /// Frames that went through the encoder.
    pub fn frames_encoded(&self) -> u64 {
        self.frames_encoded
    }

    /// Packets that were spliced by copy.
    pub fn packets_copied(&self) -> u64 {
        self.packets_copied
    }

    /// Compressed bytes that were spliced by copy.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Frames written so far (encoded + copied).
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Finalizes the stream.
    pub fn finish(self) -> Result<VideoStream, ContainerError> {
        VideoStream::new(self.params, self.start, self.frame_dur, self.packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_frame::FrameType;
    use v2v_time::r;

    fn frame(ty: FrameType, i: usize) -> Frame {
        let mut f = Frame::black(ty);
        for v in f.plane_mut(0).data_mut() {
            *v = (i * 16 % 256) as u8;
        }
        f
    }

    #[test]
    fn encode_then_copy_then_encode() {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);

        // A source stream to copy from.
        let mut sw = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..8 {
            sw.push_frame(&frame(ty, i)).unwrap();
        }
        let src = sw.finish().unwrap();

        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        w.push_frame(&frame(ty, 100)).unwrap();
        let run = src.copy_packet_range(4, 8, Rational::ZERO).unwrap();
        w.push_copied(&run).unwrap();
        w.push_frame(&frame(ty, 101)).unwrap();
        assert_eq!(w.frames_encoded(), 2);
        assert_eq!(w.packets_copied(), 4);
        let out = w.finish().unwrap();
        assert_eq!(out.len(), 6);
        // The frame after the splice restarted the GOP.
        assert!(out.packets()[5].keyframe);
        // Everything decodes end to end.
        let (frames, _) = out.decode_range(0, 6).unwrap();
        assert_eq!(frames.len(), 6);
        assert_eq!(frames[0], frame(ty, 100));
        assert_eq!(frames[1], frame(ty, 4));
        assert_eq!(frames[5], frame(ty, 101));
    }

    #[test]
    fn splice_requires_keyframe_head() {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut sw = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..8 {
            sw.push_frame(&frame(ty, i)).unwrap();
        }
        let src = sw.finish().unwrap();
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        // Hand-built non-keyframe run bypassing copy_packet_range's check.
        let bad: Vec<_> = src.packets()[1..3].to_vec();
        assert!(matches!(
            w.push_copied(&bad),
            Err(ContainerError::SpliceNotKeyframe)
        ));
        assert!(w.push_copied(&[]).is_ok());
    }

    #[test]
    fn output_grid_is_continuous() {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 2, 0);
        let mut w = StreamWriter::new(params, r(10, 1), r(1, 24));
        for i in 0..5 {
            w.push_frame(&frame(ty, i)).unwrap();
        }
        let s = w.finish().unwrap();
        assert_eq!(s.start(), r(10, 1));
        assert_eq!(s.packets()[3].pts, r(10, 1) + r(3, 24));
    }
}
