//! The `.svc` on-disk container format.
//!
//! Layout:
//!
//! ```text
//! magic   4 bytes   "SVC1"
//! hdr_len u32 LE    JSON header byte length
//! header  JSON      {params, start, frame_dur, count}
//! packets count ×   (u32 LE: len << 1 | keyframe, payload bytes)
//! ```
//!
//! Timestamps are implied by the grid, so the packet table stores only
//! lengths and keyframe flags — the keyframe index is rebuilt on load.

use crate::stream::VideoStream;
use crate::ContainerError;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;
use v2v_codec::{CodecParams, Packet};
use v2v_time::Rational;

const MAGIC: &[u8; 4] = b"SVC1";

#[derive(Serialize, Deserialize)]
struct Header {
    params: CodecParams,
    start: Rational,
    frame_dur: Rational,
    count: u64,
}

/// Writes a stream to `path` in `.svc` format.
pub fn write_svc(stream: &VideoStream, path: impl AsRef<Path>) -> Result<(), ContainerError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_svc_to(stream, &mut f)?;
    f.flush()?;
    Ok(())
}

/// Serializes a stream to `.svc` bytes in memory — the serving daemon's
/// response body is exactly an `.svc` file.
pub fn svc_to_bytes(stream: &VideoStream) -> Result<Vec<u8>, ContainerError> {
    let mut out = Vec::with_capacity(stream.byte_size() as usize + stream.len() * 4 + 256);
    write_svc_to(stream, &mut out)?;
    Ok(out)
}

fn write_svc_to(stream: &VideoStream, f: &mut impl Write) -> Result<(), ContainerError> {
    let header = Header {
        params: *stream.params(),
        start: stream.start(),
        frame_dur: stream.frame_dur(),
        count: stream.len() as u64,
    };
    let hdr = serde_json::to_vec(&header)
        .map_err(|e| ContainerError::BadFile(format!("header encode: {e}")))?;
    f.write_all(MAGIC)?;
    f.write_all(&(hdr.len() as u32).to_le_bytes())?;
    f.write_all(&hdr)?;
    for p in stream.packets() {
        let tag = (p.size() as u32) << 1 | u32::from(p.keyframe);
        f.write_all(&tag.to_le_bytes())?;
        f.write_all(&p.data)?;
    }
    Ok(())
}

/// Reads exactly `buf.len()` bytes, reporting a short read as
/// [`ContainerError::BadFile`] naming `what`: truncation is a property
/// of the file, not of the disk, so it must not surface as a bare I/O
/// error.
fn read_exact_or_bad(f: &mut impl Read, buf: &mut [u8], what: &str) -> Result<(), ContainerError> {
    f.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ContainerError::BadFile(format!("truncated {what}"))
        } else {
            ContainerError::Io(e)
        }
    })
}

/// Reads a stream from an `.svc` file.
///
/// Every size in the file (header length, packet count, packet lengths)
/// is untrusted: each is validated against the file's actual size before
/// any allocation, so a hostile header can neither OOM the process nor
/// panic the parser — it gets [`ContainerError::BadFile`].
pub fn read_svc(path: impl AsRef<Path>) -> Result<VideoStream, ContainerError> {
    let file = std::fs::File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut f = std::io::BufReader::new(file);
    read_svc_from(&mut f, file_len)
}

/// Parses `.svc` bytes from memory with the same hostile-input
/// validation as [`read_svc`] — how a serving client interprets a
/// response body.
pub fn svc_from_bytes(bytes: &[u8]) -> Result<VideoStream, ContainerError> {
    let mut cursor = std::io::Cursor::new(bytes);
    read_svc_from(&mut cursor, bytes.len() as u64)
}

fn read_svc_from(f: &mut impl Read, file_len: u64) -> Result<VideoStream, ContainerError> {
    let mut magic = [0u8; 4];
    read_exact_or_bad(&mut *f, &mut magic, "magic")?;
    if &magic == crate::live::LIVE_MAGIC {
        // Live (append-aware) variant: yields the committed prefix.
        return crate::live::read_live_from(f, file_len - 4);
    }
    if &magic != MAGIC {
        return Err(ContainerError::BadFile("bad magic".into()));
    }
    let mut len4 = [0u8; 4];
    read_exact_or_bad(&mut *f, &mut len4, "header length")?;
    let hdr_len = u64::from(u32::from_le_bytes(len4));
    if hdr_len > 1 << 20 || 8 + hdr_len > file_len {
        return Err(ContainerError::BadFile("oversized header".into()));
    }
    let mut hdr = vec![0u8; hdr_len as usize];
    read_exact_or_bad(&mut *f, &mut hdr, "header")?;
    let header: Header = serde_json::from_slice(&hdr)
        .map_err(|e| ContainerError::BadFile(format!("header decode: {e}")))?;
    header
        .params
        .validate()
        .map_err(|e| ContainerError::BadFile(format!("bad codec params: {e}")))?;
    if !header.frame_dur.is_positive() {
        return Err(ContainerError::BadFile(
            "frame duration must be positive".into(),
        ));
    }
    // Every packet costs at least its 4-byte tag, so a truthful count is
    // bounded by the bytes left after the header; a hostile count cannot
    // force a giant up-front allocation.
    let body = file_len - 8 - hdr_len;
    if header.count > body / 4 {
        return Err(ContainerError::BadFile(format!(
            "packet count {} exceeds what a {file_len}-byte file can hold",
            header.count
        )));
    }
    let mut packets = Vec::with_capacity(header.count as usize);
    let mut remaining = body;
    for k in 0..header.count {
        remaining = remaining.checked_sub(4).ok_or_else(|| {
            ContainerError::BadFile(format!("truncated packet table at packet {k}"))
        })?;
        read_exact_or_bad(&mut *f, &mut len4, "packet tag")?;
        let tag = u32::from_le_bytes(len4);
        let keyframe = tag & 1 == 1;
        let len = u64::from(tag >> 1);
        if len > remaining {
            return Err(ContainerError::BadFile(format!(
                "packet {k} length {len} exceeds remaining file bytes"
            )));
        }
        let mut data = vec![0u8; len as usize];
        read_exact_or_bad(&mut *f, &mut data, "packet payload")?;
        remaining -= len;
        let pts = header.start + header.frame_dur * Rational::from_int(k as i64);
        packets.push(Packet::new(pts, keyframe, Bytes::from(data)));
    }
    VideoStream::new(header.params, header.start, header.frame_dur, packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::StreamWriter;
    use v2v_frame::{Frame, FrameType};
    use v2v_time::{r, Rational};

    fn sample_stream() -> VideoStream {
        let ty = FrameType::yuv420p(32, 32);
        let params = CodecParams::new(ty, 3, 2);
        let mut w = StreamWriter::new(params, r(5, 1), r(1, 24));
        for i in 0..7 {
            let mut f = Frame::black(ty);
            for v in f.plane_mut(0).data_mut() {
                *v = (i * 30 % 256) as u8;
            }
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn file_round_trip() {
        let s = sample_stream();
        let dir = std::env::temp_dir().join("v2v_container_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.svc");
        write_svc(&s, &path).unwrap();
        let back = read_svc(&path).unwrap();
        assert_eq!(back.len(), s.len());
        assert_eq!(back.params(), s.params());
        assert_eq!(back.start(), s.start());
        assert_eq!(back.frame_dur(), s.frame_dur());
        for (a, b) in s.packets().iter().zip(back.packets()) {
            assert_eq!(a.pts, b.pts);
            assert_eq!(a.keyframe, b.keyframe);
            assert_eq!(a.data, b.data);
        }
        // Decodes identically.
        let (fa, _) = s.decode_range(0, s.len()).unwrap();
        let (fb, _) = back.decode_range(0, back.len()).unwrap();
        assert_eq!(fa, fb);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = std::env::temp_dir().join("v2v_container_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_magic.svc");
        std::fs::write(&path, b"NOPE....").unwrap();
        assert!(matches!(read_svc(&path), Err(ContainerError::BadFile(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_rejected() {
        let s = sample_stream();
        let dir = std::env::temp_dir().join("v2v_container_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.svc");
        write_svc(&s, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_svc(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    /// Writes a hand-built `.svc` with the given header and raw packet
    /// body, returning its path.
    fn hostile_file(header: &Header, body: &[u8], name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("v2v_container_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let hdr = serde_json::to_vec(header).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&(hdr.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&hdr);
        bytes.extend_from_slice(body);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    fn gray_header(count: u64) -> Header {
        Header {
            params: CodecParams::new(FrameType::gray8(16, 16), 4, 0),
            start: Rational::ZERO,
            frame_dur: r(1, 30),
            count,
        }
    }

    #[test]
    fn hostile_count_rejected_without_allocation() {
        // Regression: `read_svc` used to `Vec::with_capacity(header.count)`
        // straight from the untrusted header.
        let path = hostile_file(&gray_header(u64::MAX), &[], "hostile_count.svc");
        assert!(matches!(read_svc(&path), Err(ContainerError::BadFile(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hostile_packet_length_rejected() {
        // One packet whose tag claims a ~1 GiB payload backed by 3 bytes.
        let tag: u32 = (1 << 30) << 1;
        let mut body = tag.to_le_bytes().to_vec();
        body.extend_from_slice(&[1, 2, 3]);
        let path = hostile_file(&gray_header(1), &body, "hostile_len.svc");
        assert!(matches!(read_svc(&path), Err(ContainerError::BadFile(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn hostile_params_rejected() {
        // gop_size 0 (divide-by-zero vector), absurd dimensions (OOM
        // vector), and non-positive frame duration all arrive through
        // serde, bypassing the CodecParams constructor assertion.
        let mut zero_gop = gray_header(0);
        zero_gop.params.gop_size = 0;
        let mut giant = gray_header(0);
        giant.params.frame_ty.width = u32::MAX;
        let mut frozen = gray_header(0);
        frozen.frame_dur = Rational::ZERO;
        let mut backwards = gray_header(0);
        backwards.frame_dur = r(-1, 30);
        for (i, h) in [zero_gop, giant, frozen, backwards].iter().enumerate() {
            let path = hostile_file(h, &[], &format!("hostile_params_{i}.svc"));
            assert!(
                matches!(read_svc(&path), Err(ContainerError::BadFile(_))),
                "hostile header {i} must be rejected"
            );
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn truncation_is_bad_file_not_io() {
        // Short reads inside the packet table are a file-format problem:
        // they must classify as BadFile, not surface as a raw I/O error.
        let s = sample_stream();
        let dir = std::env::temp_dir().join("v2v_container_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc_classified.svc");
        write_svc(&s, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [bytes.len() - 1, bytes.len() - 5, bytes.len() / 2] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(read_svc(&path), Err(ContainerError::BadFile(_))),
                "cut at {cut} must be BadFile"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_stream_round_trips() {
        let ty = FrameType::gray8(16, 16);
        let params = CodecParams::new(ty, 4, 0);
        let w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        let s = w.finish().unwrap();
        let dir = std::env::temp_dir().join("v2v_container_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.svc");
        write_svc(&s, &path).unwrap();
        let back = read_svc(&path).unwrap();
        assert!(back.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
