//! The `.svc` on-disk container format.
//!
//! Layout:
//!
//! ```text
//! magic   4 bytes   "SVC1"
//! hdr_len u32 LE    JSON header byte length
//! header  JSON      {params, start, frame_dur, count}
//! packets count ×   (u32 LE: len << 1 | keyframe, payload bytes)
//! ```
//!
//! Timestamps are implied by the grid, so the packet table stores only
//! lengths and keyframe flags — the keyframe index is rebuilt on load.

use crate::stream::VideoStream;
use crate::ContainerError;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;
use v2v_codec::{CodecParams, Packet};
use v2v_time::Rational;

const MAGIC: &[u8; 4] = b"SVC1";

#[derive(Serialize, Deserialize)]
struct Header {
    params: CodecParams,
    start: Rational,
    frame_dur: Rational,
    count: u64,
}

/// Writes a stream to `path` in `.svc` format.
pub fn write_svc(stream: &VideoStream, path: impl AsRef<Path>) -> Result<(), ContainerError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    let header = Header {
        params: *stream.params(),
        start: stream.start(),
        frame_dur: stream.frame_dur(),
        count: stream.len() as u64,
    };
    let hdr = serde_json::to_vec(&header)
        .map_err(|e| ContainerError::BadFile(format!("header encode: {e}")))?;
    f.write_all(MAGIC)?;
    f.write_all(&(hdr.len() as u32).to_le_bytes())?;
    f.write_all(&hdr)?;
    for p in stream.packets() {
        let tag = (p.size() as u32) << 1 | u32::from(p.keyframe);
        f.write_all(&tag.to_le_bytes())?;
        f.write_all(&p.data)?;
    }
    f.flush()?;
    Ok(())
}

/// Reads a stream from an `.svc` file.
pub fn read_svc(path: impl AsRef<Path>) -> Result<VideoStream, ContainerError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let mut magic = [0u8; 4];
    f.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ContainerError::BadFile("bad magic".into()));
    }
    let mut len4 = [0u8; 4];
    f.read_exact(&mut len4)?;
    let hdr_len = u32::from_le_bytes(len4) as usize;
    if hdr_len > 1 << 20 {
        return Err(ContainerError::BadFile("oversized header".into()));
    }
    let mut hdr = vec![0u8; hdr_len];
    f.read_exact(&mut hdr)?;
    let header: Header = serde_json::from_slice(&hdr)
        .map_err(|e| ContainerError::BadFile(format!("header decode: {e}")))?;
    let mut packets = Vec::with_capacity(header.count as usize);
    for k in 0..header.count {
        f.read_exact(&mut len4)?;
        let tag = u32::from_le_bytes(len4);
        let keyframe = tag & 1 == 1;
        let len = (tag >> 1) as usize;
        let mut data = vec![0u8; len];
        f.read_exact(&mut data)?;
        let pts = header.start + header.frame_dur * Rational::from_int(k as i64);
        packets.push(Packet::new(pts, keyframe, Bytes::from(data)));
    }
    VideoStream::new(header.params, header.start, header.frame_dur, packets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::StreamWriter;
    use v2v_frame::{Frame, FrameType};
    use v2v_time::{r, Rational};

    fn sample_stream() -> VideoStream {
        let ty = FrameType::yuv420p(32, 32);
        let params = CodecParams::new(ty, 3, 2);
        let mut w = StreamWriter::new(params, r(5, 1), r(1, 24));
        for i in 0..7 {
            let mut f = Frame::black(ty);
            for v in f.plane_mut(0).data_mut() {
                *v = (i * 30 % 256) as u8;
            }
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn file_round_trip() {
        let s = sample_stream();
        let dir = std::env::temp_dir().join("v2v_container_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.svc");
        write_svc(&s, &path).unwrap();
        let back = read_svc(&path).unwrap();
        assert_eq!(back.len(), s.len());
        assert_eq!(back.params(), s.params());
        assert_eq!(back.start(), s.start());
        assert_eq!(back.frame_dur(), s.frame_dur());
        for (a, b) in s.packets().iter().zip(back.packets()) {
            assert_eq!(a.pts, b.pts);
            assert_eq!(a.keyframe, b.keyframe);
            assert_eq!(a.data, b.data);
        }
        // Decodes identically.
        let (fa, _) = s.decode_range(0, s.len()).unwrap();
        let (fb, _) = back.decode_range(0, back.len()).unwrap();
        assert_eq!(fa, fb);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = std::env::temp_dir().join("v2v_container_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_magic.svc");
        std::fs::write(&path, b"NOPE....").unwrap();
        assert!(matches!(read_svc(&path), Err(ContainerError::BadFile(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_rejected() {
        let s = sample_stream();
        let dir = std::env::temp_dir().join("v2v_container_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.svc");
        write_svc(&s, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(read_svc(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_stream_round_trips() {
        let ty = FrameType::gray8(16, 16);
        let params = CodecParams::new(ty, 4, 0);
        let w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        let s = w.finish().unwrap();
        let dir = std::env::temp_dir().join("v2v_container_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.svc");
        write_svc(&s, &path).unwrap();
        let back = read_svc(&path).unwrap();
        assert!(back.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
