//! The live (append-aware) `.svc` variant.
//!
//! A sealed `.svc` trusts its header `count`, so a file being appended
//! to is unreadable until the writer finishes. The live format instead
//! carries its packets in self-delimiting, checksummed batches so a
//! reader can always recover the longest committed prefix — even while
//! a writer is mid-append or after a crash truncated the tail.
//!
//! Layout:
//!
//! ```text
//! magic    4 bytes   "SVCL"
//! hdr_len  u32 LE    JSON header byte length
//! header   JSON      {params, start, frame_dur}
//! batch*   :=
//!   frames   u32 LE  packets in this batch
//!   body_len u32 LE  byte length of the packet table
//!   body     body_len bytes: frames × (u32 LE: len << 1 | keyframe, payload)
//!   commit   u64 LE  FNV-1a over (frames LE ‖ body)
//! ```
//!
//! The commit word doubles as the per-GOP footer: a batch is visible
//! only once its checksum is fully on disk. [`read_svc`] and
//! [`svc_from_bytes`](crate::svc_from_bytes) detect the magic and stop
//! at the first missing or mismatched commit, so a mid-append file
//! yields the last committed prefix, never a parse error. A batch that
//! *passes* its checksum but contains a malformed packet table was
//! corrupted (or forged) after commit, which is a [`BadFile`] like any
//! hostile sealed container.
//!
//! Every batch starts at a keyframe (enforced by [`LiveWriter`]), so
//! committed prefixes are whole GOP ranges and line up with
//! [`VideoStream::digest_index`] boundaries — appending a batch leaves
//! every earlier prefix digest unchanged.
//!
//! [`read_svc`]: crate::read_svc
//! [`BadFile`]: ContainerError::BadFile

use crate::digest::Fnv64;
use crate::stream::VideoStream;
use crate::ContainerError;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use v2v_codec::{CodecParams, Packet};
use v2v_time::Rational;

/// Magic of the live (append-aware) variant.
pub(crate) const LIVE_MAGIC: &[u8; 4] = b"SVCL";

#[derive(Serialize, Deserialize)]
struct LiveHeader {
    params: CodecParams,
    start: Rational,
    frame_dur: Rational,
}

fn batch_checksum(frames: u32, body: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(&frames.to_le_bytes());
    h.write(body);
    h.finish()
}

/// Parses the live body (everything after the 4-byte magic), returning
/// the committed packets. `remaining` is the byte count after the magic.
///
/// Truncation mid-batch stops cleanly at the previous commit; structural
/// damage *inside* a committed batch is a [`ContainerError::BadFile`].
pub(crate) fn read_live_from(
    f: &mut impl Read,
    remaining: u64,
) -> Result<VideoStream, ContainerError> {
    let mut remaining = remaining;
    let mut len4 = [0u8; 4];
    if remaining < 4 {
        return Err(ContainerError::BadFile("truncated header length".into()));
    }
    f.read_exact(&mut len4)?;
    remaining -= 4;
    let hdr_len = u64::from(u32::from_le_bytes(len4));
    if hdr_len > 1 << 20 || hdr_len > remaining {
        return Err(ContainerError::BadFile("oversized header".into()));
    }
    let mut hdr = vec![0u8; hdr_len as usize];
    f.read_exact(&mut hdr)?;
    remaining -= hdr_len;
    let header: LiveHeader = serde_json::from_slice(&hdr)
        .map_err(|e| ContainerError::BadFile(format!("header decode: {e}")))?;
    header
        .params
        .validate()
        .map_err(|e| ContainerError::BadFile(format!("bad codec params: {e}")))?;
    if !header.frame_dur.is_positive() {
        return Err(ContainerError::BadFile(
            "frame duration must be positive".into(),
        ));
    }

    let mut packets: Vec<Packet> = Vec::new();
    loop {
        // Batch header + commit word: anything short of a full batch is
        // an uncommitted tail — stop at the prefix.
        if remaining < 16 {
            break;
        }
        let mut bh = [0u8; 8];
        f.read_exact(&mut bh)?;
        let frames = u32::from_le_bytes([bh[0], bh[1], bh[2], bh[3]]);
        let body_len = u64::from(u32::from_le_bytes([bh[4], bh[5], bh[6], bh[7]]));
        if body_len + 16 > remaining || u64::from(frames) > body_len / 4 {
            break; // tail claims more than the file holds: uncommitted
        }
        let mut body = vec![0u8; body_len as usize];
        f.read_exact(&mut body)?;
        let mut commit = [0u8; 8];
        f.read_exact(&mut commit)?;
        if u64::from_le_bytes(commit) != batch_checksum(frames, &body) {
            break; // partially overwritten tail: uncommitted
        }
        remaining -= 16 + body_len;
        // Committed: the packet table must now parse exactly.
        let mut off = 0usize;
        for k in 0..frames {
            let Some(tag_bytes) = body.get(off..off + 4) else {
                return Err(ContainerError::BadFile(format!(
                    "committed batch truncated at packet {k}"
                )));
            };
            let Ok(tag_arr) = <[u8; 4]>::try_from(tag_bytes) else {
                return Err(ContainerError::BadFile(format!(
                    "committed batch truncated at packet {k}"
                )));
            };
            let tag = u32::from_le_bytes(tag_arr);
            off += 4;
            let len = (tag >> 1) as usize;
            let Some(data) = body.get(off..off + len) else {
                return Err(ContainerError::BadFile(format!(
                    "committed packet {k} length {len} exceeds its batch"
                )));
            };
            off += len;
            let idx = packets.len() as i64;
            let pts = header.start + header.frame_dur * Rational::from_int(idx);
            packets.push(Packet::new(pts, tag & 1 == 1, Bytes::copy_from_slice(data)));
        }
        if off != body.len() {
            return Err(ContainerError::BadFile(
                "committed batch has trailing garbage".into(),
            ));
        }
    }
    VideoStream::new(header.params, header.start, header.frame_dur, packets)
}

/// An appender for the live `.svc` format.
///
/// Each [`append_stream`](LiveWriter::append_stream) writes one checksummed batch and
/// syncs it to disk; readers observe whole batches or nothing. Opening
/// an existing file recovers the committed prefix and truncates any
/// crashed half-written tail before new appends land.
pub struct LiveWriter {
    file: File,
    params: CodecParams,
    start: Rational,
    frame_dur: Rational,
    committed: u64,
}

impl LiveWriter {
    /// Creates a new live container at `path` (truncating any existing
    /// file) and commits the header.
    pub fn create(
        path: impl AsRef<Path>,
        params: CodecParams,
        start: Rational,
        frame_dur: Rational,
    ) -> Result<LiveWriter, ContainerError> {
        if !frame_dur.is_positive() {
            return Err(ContainerError::BadFile(
                "frame duration must be positive".into(),
            ));
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let hdr = serde_json::to_vec(&LiveHeader {
            params,
            start,
            frame_dur,
        })
        .map_err(|e| ContainerError::BadFile(format!("header encode: {e}")))?;
        file.write_all(LIVE_MAGIC)?;
        file.write_all(&(hdr.len() as u32).to_le_bytes())?;
        file.write_all(&hdr)?;
        file.sync_data()?;
        Ok(LiveWriter {
            file,
            params,
            start,
            frame_dur,
            committed: 0,
        })
    }

    /// Opens an existing live container for appending, recovering the
    /// committed prefix and truncating any uncommitted tail.
    pub fn open(path: impl AsRef<Path>) -> Result<LiveWriter, ContainerError> {
        let path = path.as_ref();
        let prefix = read_svc_live(path)?;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let end = committed_end(&mut file)?;
        file.set_len(end)?;
        file.seek(SeekFrom::End(0))?;
        Ok(LiveWriter {
            file,
            params: *prefix.params(),
            start: prefix.start(),
            frame_dur: prefix.frame_dur(),
            committed: prefix.len() as u64,
        })
    }

    /// Frames committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// The grid instant the next appended packet must land on.
    pub fn next_pts(&self) -> Rational {
        self.start + self.frame_dur * Rational::from_int(self.committed as i64)
    }

    /// Appends a stream's packets as one committed batch, re-stamped to
    /// continue this container's grid.
    ///
    /// The stream must be codec-compatible, share the frame duration,
    /// and (by `VideoStream` invariant) start at a keyframe; empty
    /// streams commit nothing and succeed.
    pub fn append_stream(&mut self, s: &VideoStream) -> Result<(), ContainerError> {
        if !s.params().compatible_with(&self.params) || s.frame_dur() != self.frame_dur {
            return Err(ContainerError::Incompatible);
        }
        if s.is_empty() {
            return Ok(());
        }
        let packets = s.copy_packet_range(0, s.len(), self.next_pts())?;
        self.append_packets(&packets)
    }

    /// Appends pre-stamped packets as one committed batch. The head must
    /// be a keyframe and every pts must continue the grid.
    pub fn append_packets(&mut self, packets: &[Packet]) -> Result<(), ContainerError> {
        let Some(head) = packets.first() else {
            return Ok(());
        };
        if !head.keyframe {
            return Err(ContainerError::SpliceNotKeyframe);
        }
        for (i, p) in packets.iter().enumerate() {
            let expect = self.start
                + self.frame_dur * Rational::from_int((self.committed + i as u64) as i64);
            if p.pts != expect {
                return Err(ContainerError::OutOfOrder);
            }
        }
        let mut body = Vec::with_capacity(packets.iter().map(|p| 4 + p.size()).sum());
        for p in packets {
            let tag = (p.size() as u32) << 1 | u32::from(p.keyframe);
            body.extend_from_slice(&tag.to_le_bytes());
            body.extend_from_slice(&p.data);
        }
        let frames = packets.len() as u32;
        self.file.write_all(&frames.to_le_bytes())?;
        self.file.write_all(&(body.len() as u32).to_le_bytes())?;
        self.file.write_all(&body)?;
        self.file
            .write_all(&batch_checksum(frames, &body).to_le_bytes())?;
        self.file.sync_data()?;
        self.committed += packets.len() as u64;
        Ok(())
    }
}

/// Byte offset of the last committed batch's end (header-only files
/// return the offset just past the header).
fn committed_end(file: &mut File) -> Result<u64, ContainerError> {
    let file_len = file.metadata()?.len();
    file.seek(SeekFrom::Start(4))?;
    let mut len4 = [0u8; 4];
    file.read_exact(&mut len4)?;
    let mut end = 8 + u64::from(u32::from_le_bytes(len4));
    file.seek(SeekFrom::Start(end))?;
    loop {
        let remaining = file_len.saturating_sub(end);
        if remaining < 16 {
            break;
        }
        let mut bh = [0u8; 8];
        file.read_exact(&mut bh)?;
        let frames = u32::from_le_bytes([bh[0], bh[1], bh[2], bh[3]]);
        let body_len = u64::from(u32::from_le_bytes([bh[4], bh[5], bh[6], bh[7]]));
        if body_len + 16 > remaining {
            break;
        }
        let mut body = vec![0u8; body_len as usize];
        file.read_exact(&mut body)?;
        let mut commit = [0u8; 8];
        file.read_exact(&mut commit)?;
        if u64::from_le_bytes(commit) != batch_checksum(frames, &body) {
            break;
        }
        end += 16 + body_len;
    }
    Ok(end)
}

/// Reads the committed prefix of a live `.svc` file.
///
/// Equivalent to [`read_svc`](crate::read_svc) (which dispatches on the
/// magic) but rejects sealed containers, for callers that require the
/// appendable variant.
pub fn read_svc_live(path: impl AsRef<Path>) -> Result<VideoStream, ContainerError> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut f = std::io::BufReader::new(file);
    let mut magic = [0u8; 4];
    f.read_exact(&mut magic).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ContainerError::BadFile("truncated magic".into())
        } else {
            ContainerError::Io(e)
        }
    })?;
    if &magic != LIVE_MAGIC {
        return Err(ContainerError::BadFile("not a live .svc".into()));
    }
    read_live_from(&mut f, file_len - 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::read_svc;
    use crate::writer::StreamWriter;
    use v2v_frame::{Frame, FrameType};
    use v2v_time::r;

    fn gop_stream(n: usize, gop: u32, seed: usize) -> VideoStream {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, gop, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            for v in f.plane_mut(0).data_mut() {
                *v = ((seed + i) * 10 % 256) as u8;
            }
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("v2v_live_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_read_round_trip() {
        let a = gop_stream(8, 4, 0);
        let b = gop_stream(4, 4, 8);
        let path = tmp("round_trip.svcl");
        let mut w =
            LiveWriter::create(path.clone(), *a.params(), a.start(), a.frame_dur()).unwrap();
        w.append_stream(&a).unwrap();
        assert_eq!(w.committed(), 8);
        w.append_stream(&b).unwrap();
        assert_eq!(w.committed(), 12);
        // The generic reader dispatches on the magic.
        let back = read_svc(&path).unwrap();
        assert_eq!(back.len(), 12);
        let expect = VideoStream::concat(&[&a, &b]).unwrap();
        assert_eq!(back.content_digest(), expect.content_digest());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_yields_committed_prefix() {
        let a = gop_stream(8, 4, 0);
        let b = gop_stream(4, 4, 8);
        let path = tmp("trunc_tail.svcl");
        let mut w =
            LiveWriter::create(path.clone(), *a.params(), a.start(), a.frame_dur()).unwrap();
        w.append_stream(&a).unwrap();
        let committed_len = std::fs::metadata(&path).unwrap().len();
        w.append_stream(&b).unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Every cut inside the second batch must yield exactly the first.
        for cut in (committed_len as usize + 1)..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let got = read_svc(&path).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
            assert_eq!(got.len(), 8, "cut {cut} must keep the committed prefix");
            assert_eq!(got.content_digest(), a.content_digest());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_recovers_and_truncates_crashed_tail() {
        let a = gop_stream(8, 4, 0);
        let b = gop_stream(4, 4, 8);
        let path = tmp("recover.svcl");
        let mut w =
            LiveWriter::create(path.clone(), *a.params(), a.start(), a.frame_dur()).unwrap();
        w.append_stream(&a).unwrap();
        drop(w);
        // Simulate a crash: half a batch of garbage on the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[7u8; 13]);
        std::fs::write(&path, &bytes).unwrap();

        let mut w = LiveWriter::open(&path).unwrap();
        assert_eq!(w.committed(), 8);
        w.append_stream(&b).unwrap();
        let back = read_svc(&path).unwrap();
        assert_eq!(back.len(), 12);
        let expect = VideoStream::concat(&[&a, &b]).unwrap();
        assert_eq!(back.content_digest(), expect.content_digest());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_preserve_prefix_digests() {
        let a = gop_stream(8, 4, 0);
        let b = gop_stream(4, 4, 8);
        let path = tmp("prefix_digests.svcl");
        let mut w =
            LiveWriter::create(path.clone(), *a.params(), a.start(), a.frame_dur()).unwrap();
        w.append_stream(&a).unwrap();
        let before = read_svc(&path).unwrap().digest_index();
        w.append_stream(&b).unwrap();
        let after = read_svc(&path).unwrap().digest_index();
        assert!(after.len() > before.len());
        assert_eq!(
            &after[..before.len()],
            &before[..],
            "old GOP ranges keep their digests"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn incompatible_and_misaligned_appends_rejected() {
        let a = gop_stream(4, 4, 0);
        let path = tmp("reject.svcl");
        let mut w =
            LiveWriter::create(path.clone(), *a.params(), a.start(), a.frame_dur()).unwrap();
        w.append_stream(&a).unwrap();
        // Different quantizer: incompatible bitstream.
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 3);
        let mut sw = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        sw.push_frame(&Frame::black(ty)).unwrap();
        let other = sw.finish().unwrap();
        assert!(matches!(
            w.append_stream(&other),
            Err(ContainerError::Incompatible)
        ));
        // Mid-GOP packet slice: no keyframe head.
        let tail: Vec<Packet> = a.packets()[1..3].to_vec();
        assert!(matches!(
            w.append_packets(&tail),
            Err(ContainerError::SpliceNotKeyframe)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sealed_reader_still_rejects_unknown_magic() {
        let path = tmp("not_live.svc");
        std::fs::write(&path, b"SVC1....").unwrap();
        assert!(matches!(
            read_svc_live(&path),
            Err(ContainerError::BadFile(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
