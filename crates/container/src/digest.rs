//! Content digests for cache keys.
//!
//! The render cache (PR 5) keys entries by *content*, not by file path:
//! a source that is re-encoded, trimmed, or overwritten in place must
//! invalidate every cached result derived from it. [`Fnv64`] is a tiny
//! FNV-1a implementation — deterministic across platforms and runs
//! (unlike `std`'s randomized [`std::hash::DefaultHasher`]), with no
//! dependency on the unstable `Hasher` output of any particular std
//! release. It is a cache key, not a cryptographic commitment.

/// A 64-bit FNV-1a streaming hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorbs a UTF-8 string, length-prefixed so that adjacent fields
    /// cannot alias (`"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        let mut h = Fnv64::new();
        h.write(b"");
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_prevents_aliasing() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }
}
