//! The `.svf` cached-fragment format.
//!
//! A fragment is a self-contained run of compressed packets produced by
//! rendering one plan segment (or a whole query result), persisted by
//! the render cache and spliced back into later outputs by stream copy.
//! Unlike a `.svc` file it carries no absolute start instant — packets
//! are stored on a zero-based grid (`k · frame_dur`) and re-stamped by
//! whoever splices them — and it *does* carry a payload checksum,
//! because cache entries live across process lifetimes on disk where
//! bit rot and partial writes are survivable events, not bugs: a
//! corrupt entry must read back as [`ContainerError::BadFile`] so the
//! cache can evict it and re-render, never as a panic or silent garbage
//! in an output.
//!
//! Layout:
//!
//! ```text
//! magic   4 bytes   "SVF1"
//! hdr_len u32 LE    JSON header byte length
//! header  JSON      {params, frame_dur, count, payload_fnv}
//! packets count ×   (u32 LE: len << 1 | keyframe, payload bytes)
//! ```
//!
//! `payload_fnv` is the FNV-1a digest of the entire packet table
//! (tags and payloads). It is verified before any packet is parsed.

use crate::digest::Fnv64;
use crate::stream::VideoStream;
use crate::ContainerError;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use v2v_codec::{CodecParams, Packet};
use v2v_time::Rational;

const MAGIC: &[u8; 4] = b"SVF1";

/// Maximum accepted header length — far above any real header, far
/// below anything that could hurt.
const MAX_HEADER: usize = 1 << 20;

#[derive(Serialize, Deserialize)]
struct Header {
    params: CodecParams,
    frame_dur: Rational,
    count: u64,
    payload_fnv: u64,
}

/// A relocatable run of compressed packets: the unit the render cache
/// stores and splices.
///
/// Packets sit on the zero-based grid `k · frame_dur` and begin with a
/// keyframe, so the run can be spliced at any keyframe boundary of an
/// output stream via [`StreamWriter::push_copied`], which re-stamps the
/// timestamps onto the output grid.
///
/// [`StreamWriter::push_copied`]: crate::StreamWriter::push_copied
#[derive(Clone, Debug)]
pub struct Fragment {
    params: CodecParams,
    frame_dur: Rational,
    packets: Vec<Packet>,
}

impl Fragment {
    /// Assembles a fragment, validating the splice invariants: positive
    /// frame duration, keyframe-first, and zero-based grid timestamps.
    pub fn new(
        params: CodecParams,
        frame_dur: Rational,
        packets: Vec<Packet>,
    ) -> Result<Fragment, ContainerError> {
        if !frame_dur.is_positive() {
            return Err(ContainerError::BadFile(format!(
                "frame duration {frame_dur} must be positive"
            )));
        }
        if let Some(first) = packets.first() {
            if !first.keyframe {
                return Err(ContainerError::SpliceNotKeyframe);
            }
        }
        for (k, p) in packets.iter().enumerate() {
            if p.pts != frame_dur * Rational::from_int(k as i64) {
                return Err(ContainerError::OutOfOrder);
            }
        }
        Ok(Fragment {
            params,
            frame_dur,
            packets,
        })
    }

    /// Captures a stream's packets as a fragment, re-stamped onto the
    /// zero-based grid. Cost: O(packets) refcount bumps.
    pub fn from_stream(stream: &VideoStream) -> Fragment {
        let frame_dur = stream.frame_dur();
        let packets = stream
            .packets()
            .iter()
            .enumerate()
            .map(|(k, p)| p.retimed(frame_dur * Rational::from_int(k as i64)))
            .collect();
        Fragment {
            params: *stream.params(),
            frame_dur,
            packets,
        }
    }

    /// Rebuilds a stream starting at instant zero from this fragment.
    pub fn into_stream(self) -> Result<VideoStream, ContainerError> {
        VideoStream::new(self.params, Rational::ZERO, self.frame_dur, self.packets)
    }

    /// Codec parameters of the fragment's packets.
    pub fn params(&self) -> &CodecParams {
        &self.params
    }

    /// Frame duration of the fragment's grid.
    pub fn frame_dur(&self) -> Rational {
        self.frame_dur
    }

    /// The packets, keyframe-first on the zero-based grid.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// `true` when the fragment holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total compressed payload size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.packets.iter().map(|p| p.size() as u64).sum()
    }
}

/// Serializes a fragment to `.svf` bytes.
pub fn fragment_to_bytes(frag: &Fragment) -> Result<Vec<u8>, ContainerError> {
    let mut table = Vec::with_capacity(frag.byte_size() as usize + frag.len() * 4);
    for p in frag.packets() {
        let tag = (p.size() as u32) << 1 | u32::from(p.keyframe);
        table.extend_from_slice(&tag.to_le_bytes());
        table.extend_from_slice(&p.data);
    }
    let mut fnv = Fnv64::new();
    fnv.write(&table);
    let header = Header {
        params: *frag.params(),
        frame_dur: frag.frame_dur(),
        count: frag.len() as u64,
        payload_fnv: fnv.finish(),
    };
    let hdr = serde_json::to_vec(&header)
        .map_err(|e| ContainerError::BadFile(format!("header encode: {e}")))?;
    let mut out = Vec::with_capacity(8 + hdr.len() + table.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(hdr.len() as u32).to_le_bytes());
    out.extend_from_slice(&hdr);
    out.extend_from_slice(&table);
    Ok(out)
}

/// Splits `n` bytes off the front of `rest`, or reports a truncation
/// naming `what`.
fn take<'a>(rest: &'a [u8], n: usize, what: &str) -> Result<(&'a [u8], &'a [u8]), ContainerError> {
    if rest.len() < n {
        return Err(ContainerError::BadFile(format!("truncated {what}")));
    }
    Ok(rest.split_at(n))
}

/// Parses `.svf` bytes back into a fragment.
///
/// Every size is untrusted and validated against the actual byte count
/// before allocation, and the packet-table checksum is verified before
/// any packet is parsed: a flipped bit anywhere in the table yields
/// [`ContainerError::BadFile`], which the render cache treats as
/// "evict and re-render".
pub fn fragment_from_bytes(bytes: &[u8]) -> Result<Fragment, ContainerError> {
    let (magic, rest) = take(bytes, 4, "magic")?;
    if magic != MAGIC {
        return Err(ContainerError::BadFile("bad fragment magic".into()));
    }
    let (len4, rest) = take(rest, 4, "header length")?;
    let mut len_buf = [0u8; 4];
    len_buf.copy_from_slice(len4);
    let hdr_len = u32::from_le_bytes(len_buf) as usize;
    if hdr_len > MAX_HEADER {
        return Err(ContainerError::BadFile("oversized header".into()));
    }
    let (hdr, table) = take(rest, hdr_len, "header")?;
    let header: Header = serde_json::from_slice(hdr)
        .map_err(|e| ContainerError::BadFile(format!("header decode: {e}")))?;
    header
        .params
        .validate()
        .map_err(|e| ContainerError::BadFile(format!("bad codec params: {e}")))?;
    if !header.frame_dur.is_positive() {
        return Err(ContainerError::BadFile(
            "frame duration must be positive".into(),
        ));
    }
    let mut fnv = Fnv64::new();
    fnv.write(table);
    if fnv.finish() != header.payload_fnv {
        return Err(ContainerError::BadFile(
            "fragment payload checksum mismatch".into(),
        ));
    }
    // Every packet costs at least its 4-byte tag, so a truthful count
    // is bounded by the table size.
    if header.count > table.len() as u64 / 4 {
        return Err(ContainerError::BadFile(format!(
            "packet count {} exceeds what a {}-byte table can hold",
            header.count,
            table.len()
        )));
    }
    let mut packets = Vec::with_capacity(header.count as usize);
    let mut rest = table;
    for k in 0..header.count {
        let (len4, after_tag) = take(rest, 4, "packet tag")?;
        let mut tag_buf = [0u8; 4];
        tag_buf.copy_from_slice(len4);
        let tag = u32::from_le_bytes(tag_buf);
        let keyframe = tag & 1 == 1;
        let len = (tag >> 1) as usize;
        let (data, after) = take(after_tag, len, "packet payload")?;
        rest = after;
        let pts = header.frame_dur * Rational::from_int(k as i64);
        packets.push(Packet::new(pts, keyframe, Bytes::from(data.to_vec())));
    }
    if !rest.is_empty() {
        return Err(ContainerError::BadFile(format!(
            "{} trailing bytes after packet table",
            rest.len()
        )));
    }
    Fragment::new(header.params, header.frame_dur, packets)
}

/// Magic prefix of the cluster wire frame wrapping an `.svf` payload.
const WIRE_MAGIC: &[u8; 4] = b"SVW1";

/// Frames a fragment for exchange between cluster nodes: the wire magic,
/// the content key the receiver must expect, then the `.svf` bytes
/// (whose embedded checksum covers the packet table).
///
/// ```text
/// magic 4 bytes   "SVW1"
/// key   u64 LE    content-addressed fragment key
/// svf   ..        fragment_to_bytes output
/// ```
pub fn fragment_to_wire(key: u64, frag: &Fragment) -> Result<Vec<u8>, ContainerError> {
    let svf = fragment_to_bytes(frag)?;
    let mut out = Vec::with_capacity(12 + svf.len());
    out.extend_from_slice(WIRE_MAGIC);
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&svf);
    Ok(out)
}

/// Parses a cluster wire frame, rejecting it unless the embedded key
/// matches `expect_key` and the `.svf` payload passes its checksum.
///
/// A receiver that asked for fragment `expect_key` must never splice
/// bytes claiming to be anything else: a mismatched key, a flipped bit
/// in the packet table, or any truncation reads back as
/// [`ContainerError::BadFile`], which the dispatcher treats as "drop
/// and re-render", never as output bytes.
pub fn fragment_from_wire(bytes: &[u8], expect_key: u64) -> Result<Fragment, ContainerError> {
    let (magic, rest) = take(bytes, 4, "wire magic")?;
    if magic != WIRE_MAGIC {
        return Err(ContainerError::BadFile("bad fragment wire magic".into()));
    }
    let (key8, svf) = take(rest, 8, "wire key")?;
    let mut key_buf = [0u8; 8];
    key_buf.copy_from_slice(key8);
    let key = u64::from_le_bytes(key_buf);
    if key != expect_key {
        return Err(ContainerError::BadFile(format!(
            "wire fragment key {key:016x} does not match expected {expect_key:016x}"
        )));
    }
    fragment_from_bytes(svf)
}

/// Writes a fragment to `path` in `.svf` format.
pub fn write_fragment(
    frag: &Fragment,
    path: impl AsRef<std::path::Path>,
) -> Result<(), ContainerError> {
    let bytes = fragment_to_bytes(frag)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Reads a fragment from an `.svf` file.
pub fn read_fragment(path: impl AsRef<std::path::Path>) -> Result<Fragment, ContainerError> {
    let bytes = std::fs::read(path)?;
    fragment_from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::StreamWriter;
    use v2v_frame::{Frame, FrameType};
    use v2v_time::r;

    fn sample_stream(n: usize) -> VideoStream {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut w = StreamWriter::new(params, r(7, 2), r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            f.plane_mut(0).put(i % 32, 0, 200);
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn byte_round_trip() {
        let s = sample_stream(9);
        let frag = Fragment::from_stream(&s);
        let bytes = fragment_to_bytes(&frag).unwrap();
        let back = fragment_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 9);
        assert_eq!(back.params(), s.params());
        assert_eq!(back.frame_dur(), s.frame_dur());
        for (a, b) in frag.packets().iter().zip(back.packets()) {
            assert_eq!(a.pts, b.pts);
            assert_eq!(a.keyframe, b.keyframe);
            assert_eq!(a.data, b.data);
        }
        // Fragment grid is zero-based even though the source started at 7/2.
        assert_eq!(back.packets()[0].pts, Rational::ZERO);
        assert_eq!(back.packets()[1].pts, r(1, 30));
    }

    #[test]
    fn stream_round_trip_decodes_identically() {
        let s = sample_stream(8);
        let frag = Fragment::from_stream(&s);
        let bytes = fragment_to_bytes(&frag).unwrap();
        let back = fragment_from_bytes(&bytes).unwrap().into_stream().unwrap();
        let (fa, _) = s.decode_range(0, s.len()).unwrap();
        let (fb, _) = back.decode_range(0, back.len()).unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    fn every_flipped_bit_in_the_table_is_caught() {
        let s = sample_stream(5);
        let bytes = fragment_to_bytes(&Fragment::from_stream(&s)).unwrap();
        // Locate the packet table: it starts after magic+len+header.
        let hdr_len = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let table_start = 8 + hdr_len;
        for pos in table_start..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x41;
            assert!(
                matches!(fragment_from_bytes(&bad), Err(ContainerError::BadFile(_))),
                "flip at byte {pos} must fail the checksum"
            );
        }
    }

    #[test]
    fn truncation_and_trailing_junk_rejected() {
        let s = sample_stream(4);
        let bytes = fragment_to_bytes(&Fragment::from_stream(&s)).unwrap();
        for cut in [3, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                fragment_from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must be rejected"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(fragment_from_bytes(&padded).is_err());
    }

    #[test]
    fn non_keyframe_head_rejected() {
        let s = sample_stream(6);
        let frag = Fragment::from_stream(&s);
        // Rebuild with the keyframe flag stripped from packet 0 (a lying
        // tag bit in a hostile file).
        let packets: Vec<Packet> = frag
            .packets()
            .iter()
            .map(|p| Packet::new(p.pts, false, p.data.clone()))
            .collect();
        assert!(matches!(
            Fragment::new(*frag.params(), frag.frame_dur(), packets),
            Err(ContainerError::SpliceNotKeyframe)
        ));
    }

    #[test]
    fn empty_fragment_round_trips() {
        let frag = Fragment::new(
            CodecParams::new(FrameType::gray8(16, 16), 4, 0),
            r(1, 30),
            Vec::new(),
        )
        .unwrap();
        let bytes = fragment_to_bytes(&frag).unwrap();
        let back = fragment_from_bytes(&bytes).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn wire_round_trip() {
        let s = sample_stream(7);
        let frag = Fragment::from_stream(&s);
        let wire = fragment_to_wire(0xdead_beef_cafe_f00d, &frag).unwrap();
        let back = fragment_from_wire(&wire, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(back.len(), frag.len());
        for (a, b) in frag.packets().iter().zip(back.packets()) {
            assert_eq!(a.data, b.data);
            assert_eq!(a.keyframe, b.keyframe);
        }
    }

    #[test]
    fn wire_key_mismatch_rejected() {
        let frag = Fragment::from_stream(&sample_stream(3));
        let wire = fragment_to_wire(1, &frag).unwrap();
        assert!(matches!(
            fragment_from_wire(&wire, 2),
            Err(ContainerError::BadFile(_))
        ));
    }

    #[test]
    fn wire_corruption_rejected() {
        let frag = Fragment::from_stream(&sample_stream(5));
        let wire = fragment_to_wire(9, &frag).unwrap();
        // Flip one bit in the last byte (packet payload territory): the
        // inner svf checksum must catch it.
        let mut bad = wire.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(fragment_from_wire(&bad, 9).is_err());
        // Wrong wire magic is rejected before anything else is parsed.
        let mut bad_magic = wire.clone();
        bad_magic[0] = b'X';
        assert!(fragment_from_wire(&bad_magic, 9).is_err());
        // Truncations at every boundary are errors, not panics.
        for cut in [0, 3, 11, wire.len() / 2] {
            assert!(fragment_from_wire(&wire[..cut], 9).is_err());
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("v2v_fragment_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frag.svf");
        let frag = Fragment::from_stream(&sample_stream(6));
        write_fragment(&frag, &path).unwrap();
        let back = read_fragment(&path).unwrap();
        assert_eq!(back.len(), frag.len());
        std::fs::remove_file(&path).unwrap();
    }
}
