//! In-memory video streams with keyframe indexes.

use crate::ContainerError;
use v2v_codec::{CodecParams, Decoder, Packet};
use v2v_frame::Frame;
use v2v_time::{Rational, TimeRange, TimeSet};

/// An indexed, immutable video stream.
///
/// Frames sit on a uniform grid `start + k · frame_dur`; packet `k` holds
/// frame `k`. The keyframe flags form the index that seeks and smart cuts
/// consult.
#[derive(Clone)]
pub struct VideoStream {
    params: CodecParams,
    start: Rational,
    frame_dur: Rational,
    packets: Vec<Packet>,
}

impl VideoStream {
    /// Assembles a stream from parts, validating the splice invariants:
    /// the first packet must be a keyframe and timestamps must follow the
    /// grid.
    pub fn new(
        params: CodecParams,
        start: Rational,
        frame_dur: Rational,
        packets: Vec<Packet>,
    ) -> Result<VideoStream, ContainerError> {
        // An error, not an assert: the grid can arrive from an untrusted
        // container header, and a non-positive duration would corrupt
        // every downstream pts computation.
        if !frame_dur.is_positive() {
            return Err(ContainerError::BadFile(format!(
                "frame duration {frame_dur} must be positive"
            )));
        }
        if let Some(first) = packets.first() {
            if !first.keyframe {
                return Err(ContainerError::SpliceNotKeyframe);
            }
        }
        for (k, p) in packets.iter().enumerate() {
            let expect = start + frame_dur * Rational::from_int(k as i64);
            if p.pts != expect {
                return Err(ContainerError::OutOfOrder);
            }
        }
        Ok(VideoStream {
            params,
            start,
            frame_dur,
            packets,
        })
    }

    /// The stream's codec parameters.
    pub fn params(&self) -> &CodecParams {
        &self.params
    }

    /// First frame instant.
    pub fn start(&self) -> Rational {
        self.start
    }

    /// Frame duration (1 / fps).
    pub fn frame_dur(&self) -> Rational {
        self.frame_dur
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// `true` when the stream holds no frames.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// All packets, in order.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Total compressed size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.packets.iter().map(|p| p.size() as u64).sum()
    }

    /// A stable content digest of the stream: codec parameters, grid,
    /// keyframe index, and every compressed payload byte.
    ///
    /// This is the per-source fingerprint the render cache folds into
    /// its keys — re-encoding, trimming, or overwriting a source in
    /// place changes the digest and thereby invalidates every cached
    /// result derived from it, even when the file path is unchanged.
    /// Deterministic across platforms and process runs (FNV-1a, not
    /// `std`'s randomized hasher).
    ///
    /// The digest is *prefix-composable*: `content_digest()` equals
    /// [`prefix_digest`](Self::prefix_digest)`(len())`, and a prefix's
    /// digest depends only on the prefix — appending packets never
    /// changes the digest of any earlier GOP range (the invalidation
    /// property live sources rely on).
    pub fn content_digest(&self) -> u64 {
        self.prefix_digest(self.packets.len())
    }

    /// Digest of the first `n` packets (clamped to `len()`), equal to
    /// `content_digest()` of a stream sealed from that prefix alone.
    pub fn prefix_digest(&self, n: usize) -> u64 {
        let n = n.min(self.packets.len());
        let mut body = crate::digest::Fnv64::new();
        for p in self.packets.iter().take(n) {
            fold_packet(&mut body, p);
        }
        self.finish_digest(n as u64, &body)
    }

    /// Digests at every committed GOP boundary, ascending: one entry
    /// `(frames, digest)` per prefix that ends just before a keyframe,
    /// plus the full stream. Single pass over the packet bytes.
    ///
    /// Appending whole GOPs extends this index without changing any
    /// existing entry, so a cache key derived from the smallest boundary
    /// covering a segment's reads survives appends untouched.
    pub fn digest_index(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut body = crate::digest::Fnv64::new();
        for (k, p) in self.packets.iter().enumerate() {
            if k > 0 && p.keyframe {
                out.push((k as u64, self.finish_digest(k as u64, &body)));
            }
            fold_packet(&mut body, p);
        }
        let n = self.packets.len() as u64;
        out.push((n, self.finish_digest(n, &body)));
        out
    }

    /// Combines the streaming packet-body state with the header fields.
    /// `Fnv64` is `Copy`, so callers snapshot the body state at GOP
    /// boundaries and finish each prefix in O(1).
    fn finish_digest(&self, n: u64, body: &crate::digest::Fnv64) -> u64 {
        let mut h = crate::digest::Fnv64::new();
        h.write_str(&serde_json::to_string(&self.params).unwrap_or_default());
        h.write_str(&self.start.to_string());
        h.write_str(&self.frame_dur.to_string());
        h.write_u64(n);
        h.write_u64(body.finish());
        h.finish()
    }

    /// The set of instants this stream can serve — what the V2V checker
    /// compares spec requirements against.
    pub fn available(&self) -> TimeSet {
        TimeSet::from_range(TimeRange::from_parts(
            self.start,
            self.frame_dur,
            self.packets.len() as u64,
        ))
    }

    /// The grid range of this stream.
    pub fn range(&self) -> TimeRange {
        TimeRange::from_parts(self.start, self.frame_dur, self.packets.len() as u64)
    }

    /// Frame index of instant `t`, if it is on the grid.
    pub fn index_of(&self, t: Rational) -> Option<usize> {
        self.range().index_of(t).map(|k| k as usize)
    }

    /// Instant of frame `k`.
    pub fn pts_of(&self, k: usize) -> Option<Rational> {
        self.range().at(k as u64)
    }

    /// Index of the last keyframe at or before frame `k`.
    pub fn keyframe_at_or_before(&self, k: usize) -> Option<usize> {
        self.packets
            .iter()
            .enumerate()
            .take(k.saturating_add(1))
            .rev()
            .find_map(|(i, p)| p.keyframe.then_some(i))
    }

    /// Index of the first keyframe at or after frame `k`.
    pub fn next_keyframe_at_or_after(&self, k: usize) -> Option<usize> {
        self.packets
            .iter()
            .enumerate()
            .skip(k)
            .find_map(|(i, p)| p.keyframe.then_some(i))
    }

    /// All keyframe indices.
    pub fn keyframe_indices(&self) -> Vec<usize> {
        self.packets
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.keyframe.then_some(i))
            .collect()
    }

    /// Clones the compressed packets for frames `[from, to)` *without any
    /// decode*, re-stamped onto a new grid starting at `new_start`.
    ///
    /// The range must start at a keyframe (stream-copy legality; the smart
    /// cut aligns to this). Cost: O(packets) refcount bumps.
    pub fn copy_packet_range(
        &self,
        from: usize,
        to: usize,
        new_start: Rational,
    ) -> Result<Vec<Packet>, ContainerError> {
        let to = to.min(self.packets.len());
        if from >= to {
            return Ok(Vec::new());
        }
        match self.packets.get(from) {
            Some(head) if head.keyframe => {}
            _ => return Err(ContainerError::SpliceNotKeyframe),
        }
        Ok(self
            .packets
            .get(from..to)
            .unwrap_or_default()
            .iter()
            .enumerate()
            .map(|(i, p)| p.retimed(new_start + self.frame_dur * Rational::from_int(i as i64)))
            .collect())
    }

    /// Decodes the single frame at instant `t` (seeks to the preceding
    /// keyframe and rolls forward). Returns the frame and the number of
    /// packets that had to be decoded to produce it.
    pub fn decode_frame_at(&self, t: Rational) -> Result<(Frame, usize), ContainerError> {
        let k = self.index_of(t).ok_or(ContainerError::NotOnGrid(t))?;
        // Streams assembled through `new` always start with a keyframe,
        // but hostile files can reach here with the invariant broken —
        // report, don't panic.
        let kf = self
            .keyframe_at_or_before(k)
            .ok_or(ContainerError::NoKeyframe)?;
        let mut dec = Decoder::new(self.params);
        let mut frame = None;
        for p in self.packets.get(kf..=k).unwrap_or_default() {
            frame = Some(dec.decode(p)?);
        }
        frame
            .map(|f| (f, k - kf + 1))
            .ok_or(ContainerError::NoKeyframe)
    }

    /// Decodes frames `[from, to)` sequentially (one keyframe seek, then a
    /// linear roll). Returns frames and the total packets decoded.
    pub fn decode_range(
        &self,
        from: usize,
        to: usize,
    ) -> Result<(Vec<Frame>, usize), ContainerError> {
        let to = to.min(self.packets.len());
        if from >= to {
            return Ok((Vec::new(), 0));
        }
        let kf = self
            .keyframe_at_or_before(from)
            .ok_or(ContainerError::NoKeyframe)?;
        let mut dec = Decoder::new(self.params);
        let mut out = Vec::with_capacity(to - from);
        let mut decoded = 0usize;
        for (i, p) in self
            .packets
            .get(kf..to)
            .unwrap_or_default()
            .iter()
            .enumerate()
        {
            let f = dec.decode(p)?;
            decoded += 1;
            if kf + i >= from {
                out.push(f);
            }
        }
        Ok((out, decoded))
    }

    /// Concatenates compatible streams by stream copy. Each input begins
    /// with a keyframe (invariant), so decode state is self-contained at
    /// every splice point.
    pub fn concat(streams: &[&VideoStream]) -> Result<VideoStream, ContainerError> {
        let first = streams.first().ok_or(ContainerError::Incompatible)?;
        for s in streams {
            if !s.params.compatible_with(&first.params) || s.frame_dur != first.frame_dur {
                return Err(ContainerError::Incompatible);
            }
        }
        let mut packets = Vec::with_capacity(streams.iter().map(|s| s.len()).sum());
        let mut k = 0i64;
        for s in streams {
            for p in &s.packets {
                packets.push(p.retimed(first.start + first.frame_dur * Rational::from_int(k)));
                k += 1;
            }
        }
        VideoStream::new(first.params, first.start, first.frame_dur, packets)
    }
}

fn fold_packet(h: &mut crate::digest::Fnv64, p: &Packet) {
    h.write_u64(u64::from(p.keyframe));
    h.write_u64(p.size() as u64);
    h.write(&p.data);
}

impl std::fmt::Debug for VideoStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VideoStream({} frames @ {} from {}, {} bytes)",
            self.len(),
            self.frame_dur,
            self.start,
            self.byte_size()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::StreamWriter;
    use v2v_frame::FrameType;
    use v2v_time::r;

    pub(crate) fn test_stream(n: usize, gop: u32) -> VideoStream {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, gop, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        for i in 0..n {
            let mut f = Frame::black(ty);
            for v in f.plane_mut(0).data_mut() {
                *v = (i * 10 % 256) as u8;
            }
            f.plane_mut(0).put(i % 32, 0, 255);
            w.push_frame(&f).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn available_matches_grid() {
        let s = test_stream(10, 4);
        assert_eq!(s.len(), 10);
        let a = s.available();
        assert_eq!(a.count(), 10);
        assert!(a.contains(r(3, 30)));
        assert!(!a.contains(r(10, 30)));
        assert_eq!(s.index_of(r(5, 30)), Some(5));
        assert_eq!(s.index_of(r(1, 60)), None);
        assert_eq!(s.pts_of(5), Some(r(5, 30)));
    }

    #[test]
    fn keyframe_lookups() {
        let s = test_stream(10, 4); // keys at 0, 4, 8
        assert_eq!(s.keyframe_indices(), vec![0, 4, 8]);
        assert_eq!(s.keyframe_at_or_before(0), Some(0));
        assert_eq!(s.keyframe_at_or_before(3), Some(0));
        assert_eq!(s.keyframe_at_or_before(4), Some(4));
        assert_eq!(s.keyframe_at_or_before(7), Some(4));
        assert_eq!(s.next_keyframe_at_or_after(1), Some(4));
        assert_eq!(s.next_keyframe_at_or_after(8), Some(8));
        assert_eq!(s.next_keyframe_at_or_after(9), None);
    }

    #[test]
    fn decode_frame_counts_gop_cost() {
        let s = test_stream(10, 4);
        let (_, cost0) = s.decode_frame_at(r(0, 30)).unwrap();
        assert_eq!(cost0, 1);
        let (_, cost3) = s.decode_frame_at(r(3, 30)).unwrap();
        assert_eq!(cost3, 4, "mid-GOP decode rolls from the keyframe");
        let (_, cost4) = s.decode_frame_at(r(4, 30)).unwrap();
        assert_eq!(cost4, 1);
    }

    #[test]
    fn decode_range_rolls_once() {
        let s = test_stream(12, 4);
        let (frames, decoded) = s.decode_range(2, 7).unwrap();
        assert_eq!(frames.len(), 5);
        // Rolls from keyframe 0 through frame 6: 7 packets.
        assert_eq!(decoded, 7);
        // Frames are the right ones: marker pixel positions advance.
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.plane(0).get((2 + i) % 32, 0), 255);
        }
    }

    #[test]
    fn copy_range_requires_keyframe() {
        let s = test_stream(10, 4);
        assert!(s.copy_packet_range(1, 5, Rational::ZERO).is_err());
        let copied = s.copy_packet_range(4, 8, Rational::ZERO).unwrap();
        assert_eq!(copied.len(), 4);
        assert!(copied[0].keyframe);
        assert_eq!(copied[1].pts, r(1, 30));
        // Payloads are shared, not duplicated.
        assert_eq!(copied[0].data.as_ptr(), s.packets()[4].data.as_ptr());
    }

    #[test]
    fn concat_compatible_streams() {
        let a = test_stream(5, 4);
        let b = test_stream(6, 4);
        let c = VideoStream::concat(&[&a, &b]).unwrap();
        assert_eq!(c.len(), 11);
        // Decodes across the splice (frame 5 is b's frame 0).
        let (f, _) = c.decode_frame_at(r(5, 30)).unwrap();
        let (g, _) = b.decode_frame_at(r(0, 30)).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn concat_rejects_mismatched_params() {
        let a = test_stream(5, 4);
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 3); // different quantizer
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        w.push_frame(&Frame::black(ty)).unwrap();
        let b = w.finish().unwrap();
        assert!(matches!(
            VideoStream::concat(&[&a, &b]),
            Err(ContainerError::Incompatible)
        ));
        // A differing GOP cadence alone stays compatible: GOP size is an
        // encoder choice, not a bitstream property.
        let params = CodecParams::new(ty, 8, 0);
        let mut w = StreamWriter::new(params, Rational::ZERO, r(1, 30));
        w.push_frame(&Frame::black(ty)).unwrap();
        let c = w.finish().unwrap();
        assert!(VideoStream::concat(&[&a, &c]).is_ok());
    }

    #[test]
    fn new_validates_grid_and_keyframe() {
        let s = test_stream(6, 3);
        // Non-keyframe head.
        let tail: Vec<Packet> = s.packets()[1..3].to_vec();
        assert!(matches!(
            VideoStream::new(*s.params(), r(1, 30), r(1, 30), tail),
            Err(ContainerError::SpliceNotKeyframe)
        ));
        // Off-grid timestamps.
        let mut pkts: Vec<Packet> = s.packets()[0..2].to_vec();
        pkts[1] = pkts[1].retimed(r(5, 30));
        assert!(matches!(
            VideoStream::new(*s.params(), Rational::ZERO, r(1, 30), pkts),
            Err(ContainerError::OutOfOrder)
        ));
    }

    #[test]
    fn prefix_digests_match_from_scratch_seals() {
        let s = test_stream(12, 4); // keys at 0, 4, 8
        assert_eq!(s.content_digest(), s.prefix_digest(s.len()));
        let index = s.digest_index();
        assert_eq!(
            index.iter().map(|&(n, _)| n).collect::<Vec<_>>(),
            vec![4, 8, 12]
        );
        for &(n, d) in &index {
            // A stream sealed from just those packets digests identically.
            let prefix = VideoStream::new(
                *s.params(),
                s.start(),
                s.frame_dur(),
                s.packets()[..n as usize].to_vec(),
            )
            .unwrap();
            assert_eq!(prefix.content_digest(), d);
            assert_eq!(s.prefix_digest(n as usize), d);
        }
        // Distinct prefixes digest differently.
        assert_ne!(index[0].1, index[1].1);
    }

    #[test]
    fn off_grid_decode_errors() {
        let s = test_stream(5, 4);
        assert!(matches!(
            s.decode_frame_at(r(1, 7)),
            Err(ContainerError::NotOnGrid(_))
        ));
    }

    /// Builds a stream whose keyframe invariant is broken, as a hostile
    /// `.svc` file can (packet flags live in the untrusted packet table).
    fn keyframeless_stream() -> VideoStream {
        let s = test_stream(6, 3);
        let packets: Vec<Packet> = s
            .packets()
            .iter()
            .map(|p| Packet::new(p.pts, false, p.data.clone()))
            .collect();
        VideoStream {
            params: *s.params(),
            start: s.start(),
            frame_dur: s.frame_dur(),
            packets,
        }
    }

    #[test]
    fn decode_without_keyframe_errors_instead_of_panicking() {
        // Regression: `decode_frame_at` / `decode_range` used to
        // `expect("stream starts with a keyframe")`.
        let s = keyframeless_stream();
        assert!(matches!(
            s.decode_frame_at(r(2, 30)),
            Err(ContainerError::NoKeyframe)
        ));
        assert!(matches!(
            s.decode_range(1, 4),
            Err(ContainerError::NoKeyframe)
        ));
    }

    #[test]
    fn copy_packet_range_round_trip_with_broken_keyframes() {
        // The copy → decode round trip must also degrade to errors: the
        // copy itself is rejected (no keyframe head), and decoding any
        // hand-spliced keyframeless run reports NoKeyframe.
        let s = keyframeless_stream();
        assert!(matches!(
            s.copy_packet_range(0, 3, Rational::ZERO),
            Err(ContainerError::SpliceNotKeyframe)
        ));
    }

    #[test]
    fn non_positive_frame_duration_rejected() {
        // Regression: `VideoStream::new` used to assert on this, which a
        // hostile header could trigger through `read_svc`.
        let s = test_stream(3, 3);
        for bad in [Rational::ZERO, r(-1, 30)] {
            assert!(matches!(
                VideoStream::new(*s.params(), Rational::ZERO, bad, s.packets().to_vec()),
                Err(ContainerError::BadFile(_))
            ));
        }
    }
}
