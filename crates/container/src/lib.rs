#![warn(missing_docs)]

//! Indexed container for SVC video streams.
//!
//! Plays the role FFmpeg's demuxer/muxer + keyframe index play for the
//! paper's execution engine:
//!
//! * [`VideoStream`] — an in-memory stream: codec parameters, a uniform
//!   timestamp grid (`start + k · frame_dur`), and the compressed packets
//!   with their keyframe index;
//! * GOP-aware access — `keyframe_at_or_before`, `next_keyframe_at_or_after`,
//!   [`VideoStream::decode_frame_at`] (seek to keyframe, roll forward) and
//!   [`VideoStream::decode_range`];
//! * packet-level **stream copy** — [`VideoStream::copy_packet_range`]
//!   clones compressed packets without touching raster data (the paper's
//!   "fastest class of video edits");
//! * [`StreamWriter`] — encodes frames and/or splices copied packets into
//!   a new stream, enforcing the keyframe-first splice rule;
//! * [`mod@file`] — a versioned on-disk format (`.svc`) with a JSON header
//!   and length-prefixed packet table;
//! * [`mod@live`] — the append-aware variant: checksummed GOP batches a
//!   [`LiveWriter`] commits while readers recover the committed prefix.

pub mod digest;
pub mod file;
pub mod fragment;
pub mod live;
pub mod stream;
pub mod writer;

pub use digest::Fnv64;
pub use file::{read_svc, svc_from_bytes, svc_to_bytes, write_svc};
pub use fragment::{
    fragment_from_bytes, fragment_from_wire, fragment_to_bytes, fragment_to_wire, read_fragment,
    write_fragment, Fragment,
};
pub use live::{read_svc_live, LiveWriter};
pub use stream::VideoStream;
pub use writer::StreamWriter;

use v2v_time::Rational;

/// Errors raised by container operations.
#[derive(Debug, thiserror::Error)]
pub enum ContainerError {
    /// Codec-level failure while (de)coding packets.
    #[error("codec error: {0}")]
    Codec(#[from] v2v_codec::CodecError),
    /// The requested instant is not on the stream's grid.
    #[error("timestamp {0} is not a frame instant of this stream")]
    NotOnGrid(Rational),
    /// Attempted to splice streams with incompatible parameters.
    #[error("streams have incompatible codec parameters")]
    Incompatible,
    /// A spliced segment must begin with a keyframe.
    #[error("spliced packet range must start at a keyframe")]
    SpliceNotKeyframe,
    /// Packets must be appended in presentation order.
    #[error("packet timestamps must be strictly increasing on the grid")]
    OutOfOrder,
    /// A decode needed a keyframe to enter the stream and found none.
    #[error("no keyframe available to start decoding from")]
    NoKeyframe,
    /// Malformed or unsupported file contents.
    #[error("invalid container file: {0}")]
    BadFile(String),
    /// Underlying I/O failure.
    #[error("i/o error: {0}")]
    Io(#[from] std::io::Error),
}
