//! Synthetic object-detection tracks.
//!
//! The paper's data-join experiments consume *cached model results* from
//! a table (`video_objects`, model `yolov5m`). Running a real detector is
//! orthogonal to V2V's contribution; what matters to the evaluation is
//! the *density profile*: "the ToS dataset has objects on nearly every
//! frame, whereas the KABR dataset only occasionally has a zebra caught
//! by the object detector". These generators reproduce those profiles
//! with deterministic tracks.

use crate::content::DatasetSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use v2v_data::{DataArray, Table, Value};
use v2v_frame::BoxCoord;
use v2v_time::Rational;

/// Detection density profile.
#[derive(Clone, Copy, Debug)]
pub enum DetectionProfile {
    /// Objects on nearly every frame (`coverage` ≈ 0.95): the ToS case.
    Dense {
        /// Fraction of frames with at least one object.
        coverage: f64,
        /// Maximum simultaneous objects.
        max_objects: u32,
    },
    /// Occasional sightings in contiguous episodes: the KABR case.
    Sparse {
        /// Fraction of the timeline covered by episodes (≈ 0.15).
        coverage: f64,
        /// Mean episode length in seconds.
        episode_s: f64,
    },
}

impl DetectionProfile {
    /// The ToS-like profile.
    pub fn tos() -> DetectionProfile {
        DetectionProfile::Dense {
            coverage: 0.95,
            max_objects: 3,
        }
    }

    /// The KABR-like profile.
    pub fn kabr() -> DetectionProfile {
        DetectionProfile::Sparse {
            coverage: 0.15,
            episode_s: 3.0,
        }
    }
}

fn track_box(rng: &mut SmallRng, label: &str, phase: f64) -> BoxCoord {
    let w = rng.gen_range(0.06..0.18);
    let h = rng.gen_range(0.06..0.18);
    let cx = (rng.gen_range(0.15..0.85) + phase * 0.1).rem_euclid(1.0 - w);
    let cy = rng.gen_range(0.15..0.8_f64).min(1.0 - h);
    let mut b = BoxCoord::new(cx as f32, cy as f32, w as f32, h as f32, label);
    b.confidence = rng.gen_range(0.55..0.99);
    b
}

/// Generates per-frame detections for a dataset video.
///
/// Every frame of the video gets an entry (possibly an empty box list),
/// mirroring a detector that ran on every frame — the shape the paper's
/// `BoundingBox_dde` optimization needs to observe `|b| = 0` spans.
pub fn detections(spec: &DatasetSpec, profile: DetectionProfile, label: &str) -> DataArray {
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0xDE7EC7);
    let mut out = DataArray::new();
    let n = spec.n_frames();
    let dur = spec.frame_dur();
    match profile {
        DetectionProfile::Dense {
            coverage,
            max_objects,
        } => {
            for i in 0..n {
                let t = dur * Rational::from_int(i as i64);
                let boxes = if rng.gen_bool(coverage) {
                    let k = rng.gen_range(1..=max_objects);
                    (0..k)
                        .map(|j| {
                            track_box(
                                &mut rng,
                                &format!("{label}_{j}"),
                                i as f64 / spec.fps as f64,
                            )
                        })
                        .collect()
                } else {
                    Vec::new()
                };
                out.insert(t, Value::Boxes(boxes));
            }
        }
        DetectionProfile::Sparse {
            coverage,
            episode_s,
        } => {
            // Lay out alternating gap/episode spans until the timeline is
            // full, targeting the requested coverage.
            let episode_frames = (episode_s * spec.fps as f64).max(1.0) as u64;
            let gap_frames =
                ((episode_s * (1.0 - coverage) / coverage.max(0.01)) * spec.fps as f64) as u64;
            let mut i = 0u64;
            let mut visible = false;
            let mut span_left = gap_frames / 2;
            while i < n {
                if span_left == 0 {
                    visible = !visible;
                    span_left = if visible {
                        rng.gen_range(episode_frames / 2..=episode_frames * 3 / 2)
                            .max(1)
                    } else {
                        rng.gen_range(gap_frames / 2..=gap_frames * 3 / 2).max(1)
                    };
                }
                let t = dur * Rational::from_int(i as i64);
                let boxes = if visible {
                    vec![track_box(&mut rng, label, i as f64 / spec.fps as f64)]
                } else {
                    Vec::new()
                };
                out.insert(t, Value::Boxes(boxes));
                span_left -= 1;
                i += 1;
            }
        }
    }
    out
}

/// Builds the paper's `video_objects(video, model, timestamp,
/// frame_objects)` table from one or more generated detection arrays.
pub fn detections_table(entries: &[(&str, &DataArray)]) -> Table {
    let mut t = Table::new(
        "video_objects",
        vec![
            "video".into(),
            "model".into(),
            "timestamp".into(),
            "frame_objects".into(),
        ],
    );
    for (video, array) in entries {
        for (ts, v) in array.iter() {
            t.push_row(vec![
                Value::from(*video),
                Value::from("yolov5m"),
                Value::Rational(ts),
                v.clone(),
            ]);
        }
    }
    t
}

/// Fraction of frames with at least one detection.
pub fn coverage_of(array: &DataArray) -> f64 {
    if array.is_empty() {
        return 0.0;
    }
    let with = array
        .iter()
        .filter(|(_, v)| v.as_boxes().map(|b| !b.is_empty()).unwrap_or(false))
        .count();
    with as f64 / array.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kabr_sim, tos_sim, Scale};

    #[test]
    fn dense_profile_covers_nearly_all_frames() {
        let spec = tos_sim(Scale::Test, 10);
        let d = detections(&spec, DetectionProfile::tos(), "actor");
        assert_eq!(d.len() as u64, spec.n_frames());
        let cov = coverage_of(&d);
        assert!(cov > 0.88, "ToS coverage too low: {cov}");
    }

    #[test]
    fn sparse_profile_is_episodic() {
        let spec = kabr_sim(Scale::Test, 60);
        let d = detections(&spec, DetectionProfile::kabr(), "zebra");
        assert_eq!(d.len() as u64, spec.n_frames());
        let cov = coverage_of(&d);
        assert!(
            (0.05..0.40).contains(&cov),
            "KABR coverage out of band: {cov}"
        );
        // Episodes are contiguous: count visible→hidden transitions; far
        // fewer than visible frames.
        let flags: Vec<bool> = d
            .iter()
            .map(|(_, v)| v.as_boxes().map(|b| !b.is_empty()).unwrap_or(false))
            .collect();
        let transitions = flags.windows(2).filter(|w| w[0] != w[1]).count();
        let visible = flags.iter().filter(|&&f| f).count();
        assert!(transitions * 10 < visible * 2, "episodes too fragmented");
    }

    #[test]
    fn table_shape_matches_paper_query() {
        let spec = kabr_sim(Scale::Test, 2);
        let d = detections(&spec, DetectionProfile::kabr(), "zebra");
        let t = detections_table(&[("kabr_cam1", &d)]);
        assert_eq!(
            t.columns(),
            ["video", "model", "timestamp", "frame_objects"]
        );
        assert_eq!(t.len() as u64, spec.n_frames());
        // The paper's SQL runs against it.
        let mut db = v2v_data::Database::new();
        db.add_table(t);
        let q = v2v_data::Query::parse(
            "SELECT timestamp, frame_objects FROM video_objects \
             WHERE video = 'kabr_cam1' AND model = 'yolov5m'",
        )
        .unwrap();
        let arr = q.materialize(&db).unwrap();
        assert_eq!(arr.len() as u64, spec.n_frames());
    }

    #[test]
    fn detections_are_deterministic() {
        let spec = kabr_sim(Scale::Test, 3);
        let a = detections(&spec, DetectionProfile::kabr(), "zebra");
        let b = detections(&spec, DetectionProfile::kabr(), "zebra");
        assert_eq!(a, b);
    }

    #[test]
    fn boxes_are_normalized() {
        let spec = tos_sim(Scale::Test, 3);
        let d = detections(&spec, DetectionProfile::tos(), "actor");
        for (_, v) in d.iter() {
            for b in v.as_boxes().unwrap() {
                assert!(b.x >= 0.0 && b.x + b.w <= 1.05);
                assert!(b.y >= 0.0 && b.y + b.h <= 1.05);
                assert!(b.confidence > 0.0 && b.confidence <= 1.0);
            }
        }
    }
}
