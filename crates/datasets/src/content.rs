//! Video content synthesis.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use v2v_codec::CodecParams;
use v2v_container::{StreamWriter, VideoStream};
use v2v_frame::{marker, Frame, FrameType, Plane};
use v2v_time::Rational;

/// What kind of footage to synthesize.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ContentProfile {
    /// Film-like: hard scene cuts every `scene_len_s` seconds, textured
    /// backgrounds, several fast-moving blobs (`motion` of them).
    Film {
        /// Seconds per scene.
        scene_len_s: i64,
        /// Number of moving foreground blobs.
        motion: u32,
    },
    /// Drone-like: one continuous slowly panning landscape.
    Drone {
        /// Horizontal pan speed in pixels per second.
        pan_px_per_s: i64,
    },
}

/// Full description of a synthetic dataset video.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name (used for caching and table rows).
    pub name: String,
    /// Frame width.
    pub width: u32,
    /// Frame height.
    pub height: u32,
    /// Frames per second.
    pub fps: i64,
    /// Length in seconds.
    pub duration_s: i64,
    /// Keyframe interval in seconds.
    pub gop_s: Rational,
    /// Encoder quantizer.
    pub quantizer: u8,
    /// Content RNG seed.
    pub seed: u64,
    /// Footage profile.
    pub content: ContentProfile,
}

impl DatasetSpec {
    /// Total frame count.
    pub fn n_frames(&self) -> u64 {
        (self.duration_s * self.fps) as u64
    }

    /// GOP size in frames.
    pub fn gop_frames(&self) -> u32 {
        (self.gop_s * Rational::from_int(self.fps))
            .to_f64()
            .round()
            .max(1.0) as u32
    }

    /// Frame duration.
    pub fn frame_dur(&self) -> Rational {
        Rational::new(1, self.fps)
    }

    /// The stream's codec parameters.
    pub fn codec_params(&self) -> CodecParams {
        CodecParams::new(
            FrameType::yuv420p(self.width, self.height),
            self.gop_frames(),
            self.quantizer,
        )
    }
}

/// Deterministic per-scene texture parameters.
struct SceneParams {
    base: u8,
    freq_x: usize,
    freq_y: usize,
    blob_seeds: Vec<(f32, f32, f32, f32)>, // x, y, vx, vy (normalized)
}

fn scene_params(rng: &mut SmallRng, motion: u32) -> SceneParams {
    SceneParams {
        base: rng.gen_range(40..180),
        freq_x: rng.gen_range(2..9),
        freq_y: rng.gen_range(2..9),
        blob_seeds: (0..motion)
            .map(|_| {
                (
                    rng.gen_range(0.1..0.9),
                    rng.gen_range(0.1..0.9),
                    rng.gen_range(-0.2..0.2f32),
                    rng.gen_range(-0.2..0.2f32),
                )
            })
            .collect(),
    }
}

fn paint_texture(p: &mut Plane, base: u8, fx: usize, fy: usize, shift: usize) {
    let h = p.height();
    for y in 0..h {
        let row = p.row_mut(y);
        for (x, v) in row.iter_mut().enumerate() {
            let sx = (x + shift) * fx / 16;
            let sy = y * fy / 16;
            let tex = ((sx ^ sy) & 63) as i32 + (((x + shift) * fy + y * fx) % 29) as i32;
            *v = (i32::from(base) + tex - 45).clamp(0, 255) as u8;
        }
    }
}

fn paint_blob(f: &mut Frame, cx: f32, cy: f32, radius: f32, luma: u8) {
    let w = f.width() as f32;
    let h = f.height() as f32;
    let r = radius * h;
    let (px, py) = (cx * w, cy * h);
    let x0 = ((px - r).max(0.0)) as usize;
    let x1 = ((px + r).min(w - 1.0)) as usize;
    let y0 = ((py - r).max(0.0)) as usize;
    let y1 = ((py + r).min(h - 1.0)) as usize;
    for y in y0..=y1 {
        for x in x0..=x1 {
            let dx = x as f32 - px;
            let dy = y as f32 - py;
            if dx * dx + dy * dy <= r * r {
                f.plane_mut(0).put(x, y, luma);
            }
        }
    }
}

/// Renders source frame `i` of the dataset (before encoding).
///
/// Exposed so tests can compare decoded output against ground truth.
pub fn render_frame(spec: &DatasetSpec, i: u64) -> Frame {
    let ty = FrameType::yuv420p(spec.width, spec.height);
    let mut f = Frame::black(ty);
    match spec.content {
        ContentProfile::Film {
            scene_len_s,
            motion,
        } => {
            let scene_frames = (scene_len_s * spec.fps) as u64;
            let scene = i / scene_frames.max(1);
            let within = (i % scene_frames.max(1)) as f32 / spec.fps as f32;
            let mut rng = SmallRng::seed_from_u64(spec.seed ^ (scene + 1).wrapping_mul(0x9E37));
            let params = scene_params(&mut rng, motion);
            paint_texture(
                f.plane_mut(0),
                params.base,
                params.freq_x,
                params.freq_y,
                (i % scene_frames.max(1)) as usize / 2,
            );
            // Mild chroma tint per scene.
            let tint = 118 + (scene % 5) as u8 * 5;
            for v in f.plane_mut(1).data_mut() {
                *v = tint;
            }
            for (bx, by, vx, vy) in &params.blob_seeds {
                let cx = (bx + vx * within).rem_euclid(1.0);
                let cy = (by + vy * within).rem_euclid(1.0);
                paint_blob(&mut f, cx, cy, 0.08, 235);
            }
        }
        ContentProfile::Drone { pan_px_per_s } => {
            let mut rng = SmallRng::seed_from_u64(spec.seed);
            let params = scene_params(&mut rng, 0);
            let shift = (i as i64 * pan_px_per_s / spec.fps) as usize;
            paint_texture(
                f.plane_mut(0),
                params.base,
                params.freq_x,
                params.freq_y,
                shift,
            );
            // Savanna-ish chroma.
            for v in f.plane_mut(1).data_mut() {
                *v = 116;
            }
            for v in f.plane_mut(2).data_mut() {
                *v = 138;
            }
        }
    }
    marker::embed(&mut f, i as u32);
    f
}

/// Generates and encodes the dataset video.
pub fn generate(spec: &DatasetSpec) -> VideoStream {
    let params = spec.codec_params();
    let mut w = StreamWriter::new(params, Rational::ZERO, spec.frame_dur());
    for i in 0..spec.n_frames() {
        let f = render_frame(spec, i);
        w.push_frame(&f).expect("generated frames match params");
    }
    w.finish().expect("generated stream is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{kabr_sim, tos_sim, Scale};

    #[test]
    fn generated_stream_matches_spec() {
        let spec = kabr_sim(Scale::Test, 2);
        let s = generate(&spec);
        assert_eq!(s.len(), 60);
        assert_eq!(s.params().gop_size, 30);
        assert_eq!(s.keyframe_indices(), vec![0, 30]);
    }

    #[test]
    fn markers_survive_encoding() {
        let spec = kabr_sim(Scale::Test, 1);
        let s = generate(&spec);
        let (frames, _) = s.decode_range(0, s.len()).unwrap();
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(marker::read(f), Some(i as u32), "frame {i}");
        }
    }

    #[test]
    fn tos_has_sparse_keyframes() {
        let spec = tos_sim(Scale::Test, 20);
        let s = generate(&spec);
        // 20 s at 24 fps with a 10 s GOP: keyframes at 0 and 240.
        assert_eq!(s.keyframe_indices(), vec![0, 240]);
    }

    #[test]
    fn film_scene_cuts_change_content() {
        let spec = tos_sim(Scale::Test, 7);
        // Frames either side of the 3 s scene cut differ drastically.
        let before = render_frame(&spec, 71);
        let after = render_frame(&spec, 72);
        let diff = before.mean_abs_diff(&after).unwrap();
        assert!(diff > 8.0, "scene cut too subtle: {diff}");
        // Within a scene, consecutive frames are similar.
        let a = render_frame(&spec, 10);
        let b = render_frame(&spec, 11);
        let within = a.mean_abs_diff(&b).unwrap();
        assert!(within < diff, "within-scene motion exceeds scene cut");
    }

    #[test]
    fn drone_pan_is_gradual() {
        let spec = kabr_sim(Scale::Test, 2);
        let a = render_frame(&spec, 0);
        let b = render_frame(&spec, 1);
        let c = render_frame(&spec, 45);
        let step = a.mean_abs_diff(&b).unwrap();
        let far = a.mean_abs_diff(&c).unwrap();
        assert!(step < far, "pan should accumulate: {step} vs {far}");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = kabr_sim(Scale::Test, 1);
        let a = render_frame(&spec, 17);
        let b = render_frame(&spec, 17);
        assert_eq!(a, b);
    }
}
