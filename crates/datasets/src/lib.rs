#![warn(missing_docs)]

//! Synthetic evaluation datasets (paper §V "Datasets").
//!
//! The paper evaluates on two collections whose *structural properties*
//! drive every experimental observation:
//!
//! * **ToS** (Tears of Steel): 24 fps film, few keyframes over short
//!   clips (no smart cut for Q1), hard scene cuts, and detected objects
//!   on *nearly every frame* (data rewrites cannot help);
//! * **KABR**: 4K drone wildlife footage, a keyframe every second (smart
//!   cuts apply everywhere), slow global pan, and only *occasional*
//!   zebras caught by the detector (data rewrites collapse most of the
//!   timeline to stream copies).
//!
//! [`tos_sim`] and [`kabr_sim`] reproduce those properties at
//! configurable scale. Every generated frame carries a
//! [`v2v_frame::marker`] stamp of its index — the paper's "overlay frame
//! information to verify each operation was frame-exact" — and
//! [`detections()`] generates matching object tracks with each dataset's
//! density profile.

pub mod content;
pub mod detections;

pub use content::{generate, render_frame, ContentProfile, DatasetSpec};
pub use detections::{detections, detections_table, DetectionProfile};

use v2v_time::Rational;

/// Scale presets: trade fidelity for bench wall-time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny streams for unit/integration tests (128×72).
    Test,
    /// Bench scale (320×180) — the default for the figure harnesses.
    Bench,
    /// Larger scale (640×360) for longer-running sweeps.
    Full,
}

impl Scale {
    /// Frame dimensions at this scale.
    pub fn dims(self) -> (u32, u32) {
        match self {
            Scale::Test => (128, 72),
            Scale::Bench => (320, 180),
            Scale::Full => (640, 360),
        }
    }
}

/// ToS-like dataset: 24 fps, 10-second GOPs (sparse keyframes), scene
/// cuts, dense detections.
pub fn tos_sim(scale: Scale, duration_s: i64) -> DatasetSpec {
    let (w, h) = scale.dims();
    DatasetSpec {
        name: "tos_sim".into(),
        width: w,
        height: h,
        fps: 24,
        duration_s,
        gop_s: Rational::from_int(10),
        quantizer: 2,
        seed: 0x705_0001,
        content: ContentProfile::Film {
            scene_len_s: 3,
            motion: 3,
        },
    }
}

/// KABR-like dataset: 30 fps, 1-second GOPs (keyframe every second, as
/// the paper observed), slow drone pan, sparse detections.
pub fn kabr_sim(scale: Scale, duration_s: i64) -> DatasetSpec {
    let (w, h) = scale.dims();
    DatasetSpec {
        name: "kabr_sim".into(),
        width: w,
        height: h,
        fps: 30,
        duration_s,
        gop_s: Rational::ONE,
        quantizer: 2,
        seed: 0x4B41_4252, // "KABR"
        content: ContentProfile::Drone { pan_px_per_s: 12 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_structure() {
        let tos = tos_sim(Scale::Test, 4);
        assert_eq!(tos.fps, 24);
        assert_eq!(tos.gop_frames(), 240);
        let kabr = kabr_sim(Scale::Test, 4);
        assert_eq!(kabr.fps, 30);
        assert_eq!(kabr.gop_frames(), 30);
    }
}
