//! Property-based tests for the SVC codec: exactness at `quantizer = 0`,
//! bounded error otherwise, over random content and stream shapes.

use proptest::prelude::*;
use v2v_codec::{CodecParams, Decoder, Encoder, Preset};
use v2v_frame::{Frame, FrameType, PixelFormat};
use v2v_time::Rational;

/// Random frame content driven by a seed vector.
fn build_frame(ty: FrameType, seed: u64, noise: &[u8]) -> Frame {
    let mut f = Frame::black(ty);
    for pi in 0..ty.format.plane_count() {
        let p = f.plane_mut(pi);
        let w = p.width();
        for y in 0..p.height() {
            for x in 0..w {
                let base = ((x as u64 * 7 + y as u64 * 13 + seed * 29) % 256) as u8;
                let n = noise[(x + y * w) % noise.len()];
                p.put(x, y, base.wrapping_add(n / 4));
            }
        }
    }
    f
}

fn frame_ty_strategy() -> impl Strategy<Value = FrameType> {
    (8u32..40, 8u32..40, 0usize..3).prop_map(|(w, h, fmt)| {
        // Even dims keep yuv420p chroma simple in comparisons.
        let (w, h) = (w & !1, h & !1);
        let (w, h) = (w.max(8), h.max(8));
        match fmt {
            0 => FrameType::yuv420p(w, h),
            1 => FrameType::rgb24(w, h),
            _ => FrameType::gray8(w, h),
        }
    })
}

fn preset_strategy() -> impl Strategy<Value = Preset> {
    prop_oneof![Just(Preset::Ultrafast), Just(Preset::Medium)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lossless_round_trip(
        ty in frame_ty_strategy(),
        gop in 1u32..6,
        preset in preset_strategy(),
        noise in prop::collection::vec(any::<u8>(), 16..64),
        n_frames in 1usize..8,
    ) {
        let mut params = CodecParams::new(ty, gop, 0);
        params.preset = preset;
        let mut enc = Encoder::new(params);
        let mut dec = Decoder::new(params);
        for i in 0..n_frames {
            let f = build_frame(ty, i as u64, &noise);
            let pts = Rational::new(i as i64, 30);
            let p = enc.encode(&f, pts).unwrap();
            let g = dec.decode(&p).unwrap();
            prop_assert_eq!(g, f);
        }
    }

    #[test]
    fn lossy_error_bounded(
        ty in frame_ty_strategy(),
        gop in 1u32..6,
        q in 1u8..8,
        preset in preset_strategy(),
        noise in prop::collection::vec(any::<u8>(), 16..64),
        n_frames in 1usize..6,
    ) {
        let mut params = CodecParams::new(ty, gop, q);
        params.preset = preset;
        let bound = params.qstep();
        let mut enc = Encoder::new(params);
        let mut dec = Decoder::new(params);
        for i in 0..n_frames {
            let f = build_frame(ty, i as u64, &noise);
            let pts = Rational::new(i as i64, 30);
            let p = enc.encode(&f, pts).unwrap();
            let g = dec.decode(&p).unwrap();
            for (pa, pb) in f.planes().iter().zip(g.planes()) {
                for (a, b) in pa.data().iter().zip(pb.data()) {
                    prop_assert!(
                        i32::from(a.abs_diff(*b)) <= bound,
                        "error {} beyond bound {}", a.abs_diff(*b), bound
                    );
                }
            }
        }
    }

    #[test]
    fn keyframe_flags_follow_gop(
        gop in 1u32..8,
        n_frames in 1usize..20,
    ) {
        let ty = FrameType::gray8(16, 16);
        let params = CodecParams::new(ty, gop, 0);
        let mut enc = Encoder::new(params);
        let noise = vec![0u8; 16];
        for i in 0..n_frames {
            let f = build_frame(ty, i as u64, &noise);
            let p = enc.encode(&f, Rational::new(i as i64, 30)).unwrap();
            // `% == 0` rather than `is_multiple_of`: the workspace MSRV is 1.75.
            prop_assert_eq!(p.keyframe, (i as u64) % u64::from(gop) == 0);
        }
    }

    #[test]
    fn corrupt_packets_never_panic(
        data in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let ty = FrameType::yuv420p(16, 16);
        let params = CodecParams::new(ty, 4, 0);
        let mut dec = Decoder::new(params);
        let keyframe = data.first().copied() == Some(0x49);
        let pkt = v2v_codec::Packet::new(
            Rational::ZERO,
            keyframe,
            bytes::Bytes::from(data),
        );
        // Any outcome but a panic is acceptable.
        let _ = dec.decode(&pkt);
    }
}

#[test]
fn formats_cover_all_pixel_layouts() {
    // Sanity net: the strategy above can produce each format.
    let tys = [
        FrameType::yuv420p(8, 8),
        FrameType::rgb24(8, 8),
        FrameType::gray8(8, 8),
    ];
    let formats: Vec<PixelFormat> = tys.iter().map(|t| t.format).collect();
    assert_eq!(formats.len(), 3);
}
