//! Inter (delta frame) plane coding: block skip + temporal DPCM.
//!
//! The plane is tiled into 16×16 blocks. Blocks whose samples all sit
//! within a skip threshold of the reconstructed reference are *skipped*
//! (copied from the reference at zero bitstream cost) — the property that
//! makes static content nearly free and gives P-heavy GOPs their small
//! size. Changed blocks carry quantized temporal residuals.
//!
//! The kernels run over row segments: the skip decision reduces each
//! block row with a branch-free max-of-abs-diff sweep (early exit at row
//! granularity — same decision as the per-pixel scan), and residual
//! coding quantizes a whole row segment into scratch before the serial
//! entropy pass. Temporal prediction has no intra-row dependence, so
//! every sweep autovectorizes. The original per-pixel implementation
//! survives as the `tests` oracle.

// Panic-audit exemption: every index in these kernels derives from the
// block grid and plane geometry — never from a bitstream-controlled
// length. Wire-controlled lengths (the coded-block bitmap, residual
// runs) all flow through `Reader::bytes` and `RunDecoder`, which
// bounds-check, so the hot loops may stay branch-free.
#![allow(clippy::indexing_slicing)]

use crate::bitstream::{Reader, RunCoder, RunDecoder};
use crate::intra::quantize_bf;
use crate::params::Preset;
use crate::CodecError;
use v2v_frame::Plane;

/// Side of a skip/code block.
pub const BLOCK: usize = 16;

/// Skip threshold: maximum per-sample deviation tolerated when reusing
/// the reference block. Zero at `qstep == 1` keeps lossless mode exact.
fn skip_threshold(qstep: i32, preset: Preset) -> i32 {
    match preset {
        Preset::Ultrafast => qstep - 1,
        Preset::Medium => (qstep - 1) / 2,
    }
}

fn block_grid(w: usize, h: usize) -> (usize, usize) {
    (w.div_ceil(BLOCK), h.div_ceil(BLOCK))
}

/// Encodes one plane as an inter payload against `reference`; returns the
/// reconstruction.
pub fn encode_plane(
    cur: &Plane,
    reference: &Plane,
    qstep: i32,
    preset: Preset,
    out: &mut Vec<u8>,
) -> Plane {
    let mut recon = Plane::new(cur.width(), cur.height());
    encode_plane_into(cur, reference, qstep, preset, out, &mut recon);
    recon
}

/// [`encode_plane`] writing the reconstruction into an existing plane
/// (every sample is overwritten), so pooled buffers avoid a fresh
/// allocation per frame.
pub fn encode_plane_into(
    cur: &Plane,
    reference: &Plane,
    qstep: i32,
    preset: Preset,
    out: &mut Vec<u8>,
    recon: &mut Plane,
) {
    debug_assert_eq!(
        (cur.width(), cur.height()),
        (reference.width(), reference.height())
    );
    debug_assert_eq!((cur.width(), cur.height()), (recon.width(), recon.height()));
    let w = cur.width();
    let h = cur.height();
    let (bx_n, by_n) = block_grid(w, h);
    let n_blocks = bx_n * by_n;
    let thr = skip_threshold(qstep, preset);

    // Pass 1: decide skip per block. Each block row reduces to a
    // branch-free max of absolute differences; the scan stops at the
    // first row whose max exceeds the threshold (same outcome as a
    // per-pixel early exit).
    let mut coded = vec![false; n_blocks];
    for by in 0..by_n {
        let y0 = by * BLOCK;
        let y1 = (y0 + BLOCK).min(h);
        for bx in 0..bx_n {
            let x0 = bx * BLOCK;
            let x1 = (x0 + BLOCK).min(w);
            for y in y0..y1 {
                let c = &cur.row(y)[x0..x1];
                let r = &reference.row(y)[x0..x1];
                let max = c
                    .iter()
                    .zip(r)
                    .map(|(a, b)| a.abs_diff(*b))
                    .fold(0u8, u8::max);
                if i32::from(max) > thr {
                    coded[by * bx_n + bx] = true;
                    break;
                }
            }
        }
    }

    // Bitmap of coded blocks.
    let mut bitmap = vec![0u8; n_blocks.div_ceil(8)];
    for (i, c) in coded.iter().enumerate() {
        if *c {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    out.extend_from_slice(&bitmap);

    // Pass 2: residuals for coded blocks; build the reconstruction by
    // overwriting a copy of the reference block-row by block-row.
    recon.data_mut().copy_from_slice(reference.data());
    let half = qstep / 2;
    let mut coder = RunCoder::new();
    let mut qseg = [0i32; BLOCK];
    for by in 0..by_n {
        let y0 = by * BLOCK;
        let y1 = (y0 + BLOCK).min(h);
        for bx in 0..bx_n {
            if !coded[by * bx_n + bx] {
                continue;
            }
            let x0 = bx * BLOCK;
            let x1 = (x0 + BLOCK).min(w);
            let n = x1 - x0;
            for y in y0..y1 {
                let c = &cur.row(y)[x0..x1];
                let r = &reference.row(y)[x0..x1];
                let rec = &mut recon.row_mut(y)[x0..x1];
                if qstep == 1 {
                    for i in 0..n {
                        qseg[i] = i32::from(c[i]) - i32::from(r[i]);
                    }
                    rec.copy_from_slice(c);
                } else {
                    for i in 0..n {
                        let pred = i32::from(r[i]);
                        let q = quantize_bf(i32::from(c[i]) - pred, qstep, half);
                        qseg[i] = q;
                        rec[i] = (pred + q * qstep).clamp(0, 255) as u8;
                    }
                }
                for &q in &qseg[..n] {
                    coder.push(out, q);
                }
            }
        }
    }
    coder.finish(out);
}

/// Decodes an inter payload against `reference`.
pub fn decode_plane(
    reader: &mut Reader<'_>,
    reference: &Plane,
    qstep: i32,
) -> Result<Plane, CodecError> {
    let mut recon = Plane::new(reference.width(), reference.height());
    decode_plane_into(reader, reference, qstep, &mut recon)?;
    Ok(recon)
}

/// [`decode_plane`] writing into an existing plane of the reference's
/// dimensions (every sample is overwritten).
pub fn decode_plane_into(
    reader: &mut Reader<'_>,
    reference: &Plane,
    qstep: i32,
    recon: &mut Plane,
) -> Result<(), CodecError> {
    let w = reference.width();
    let h = reference.height();
    debug_assert_eq!((w, h), (recon.width(), recon.height()));
    let (bx_n, by_n) = block_grid(w, h);
    let n_blocks = bx_n * by_n;
    let bitmap = reader.bytes(n_blocks.div_ceil(8))?.to_vec();
    let coded = |i: usize| -> bool { bitmap[i / 8] & (1 << (i % 8)) != 0 };

    // Count coded samples for the run decoder.
    let mut total = 0u64;
    for by in 0..by_n {
        for bx in 0..bx_n {
            if coded(by * bx_n + bx) {
                let bw = (BLOCK).min(w - bx * BLOCK);
                let bh = (BLOCK).min(h - by * BLOCK);
                total += (bw * bh) as u64;
            }
        }
    }

    recon.data_mut().copy_from_slice(reference.data());
    let mut dec = RunDecoder::new(reader, total);
    let mut qseg = [0i32; BLOCK];
    for by in 0..by_n {
        let y0 = by * BLOCK;
        let y1 = (y0 + BLOCK).min(h);
        for bx in 0..bx_n {
            if !coded(by * bx_n + bx) {
                continue;
            }
            let x0 = bx * BLOCK;
            let x1 = (x0 + BLOCK).min(w);
            let n = x1 - x0;
            for y in y0..y1 {
                dec.next_residuals(&mut qseg[..n])?;
                let r = &reference.row(y)[x0..x1];
                let rec = &mut recon.row_mut(y)[x0..x1];
                for i in 0..n {
                    rec[i] = (i32::from(r[i]) + qseg[i] * qstep).clamp(0, 255) as u8;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The original per-pixel implementation, kept verbatim as the
    /// bit-exactness oracle for the row-segment kernels above.
    mod scalar {
        use super::super::*;
        use crate::intra::quantize;

        pub fn encode_plane(
            cur: &Plane,
            reference: &Plane,
            qstep: i32,
            preset: Preset,
            out: &mut Vec<u8>,
        ) -> Plane {
            let w = cur.width();
            let h = cur.height();
            let (bx_n, by_n) = block_grid(w, h);
            let n_blocks = bx_n * by_n;
            let thr = skip_threshold(qstep, preset);
            let mut coded = vec![false; n_blocks];
            for by in 0..by_n {
                for bx in 0..bx_n {
                    let x0 = bx * BLOCK;
                    let y0 = by * BLOCK;
                    let x1 = (x0 + BLOCK).min(w);
                    let y1 = (y0 + BLOCK).min(h);
                    'block: for y in y0..y1 {
                        let c = cur.row(y);
                        let r = reference.row(y);
                        for x in x0..x1 {
                            if i32::from(c[x]).abs_diff(i32::from(r[x])) as i32 > thr {
                                coded[by * bx_n + bx] = true;
                                break 'block;
                            }
                        }
                    }
                }
            }
            let mut bitmap = vec![0u8; n_blocks.div_ceil(8)];
            for (i, c) in coded.iter().enumerate() {
                if *c {
                    bitmap[i / 8] |= 1 << (i % 8);
                }
            }
            out.extend_from_slice(&bitmap);
            let mut recon = reference.clone();
            let mut coder = RunCoder::new();
            for by in 0..by_n {
                for bx in 0..bx_n {
                    if !coded[by * bx_n + bx] {
                        continue;
                    }
                    let x0 = bx * BLOCK;
                    let y0 = by * BLOCK;
                    let x1 = (x0 + BLOCK).min(w);
                    let y1 = (y0 + BLOCK).min(h);
                    for y in y0..y1 {
                        for x in x0..x1 {
                            let residual =
                                i32::from(cur.get(x, y)) - i32::from(reference.get(x, y));
                            let q = quantize(residual, qstep);
                            coder.push(out, q);
                            let v =
                                (i32::from(reference.get(x, y)) + q * qstep).clamp(0, 255) as u8;
                            recon.put(x, y, v);
                        }
                    }
                }
            }
            coder.finish(out);
            recon
        }

        pub fn decode_plane(
            reader: &mut Reader<'_>,
            reference: &Plane,
            qstep: i32,
        ) -> Result<Plane, CodecError> {
            let w = reference.width();
            let h = reference.height();
            let (bx_n, by_n) = block_grid(w, h);
            let n_blocks = bx_n * by_n;
            let bitmap = reader.bytes(n_blocks.div_ceil(8))?.to_vec();
            let coded = |i: usize| -> bool { bitmap[i / 8] & (1 << (i % 8)) != 0 };
            let mut total = 0u64;
            for by in 0..by_n {
                for bx in 0..bx_n {
                    if coded(by * bx_n + bx) {
                        let bw = (BLOCK).min(w - bx * BLOCK);
                        let bh = (BLOCK).min(h - by * BLOCK);
                        total += (bw * bh) as u64;
                    }
                }
            }
            let mut recon = reference.clone();
            let mut dec = RunDecoder::new(reader, total);
            for by in 0..by_n {
                for bx in 0..bx_n {
                    if !coded(by * bx_n + bx) {
                        continue;
                    }
                    let x0 = bx * BLOCK;
                    let y0 = by * BLOCK;
                    let x1 = (x0 + BLOCK).min(w);
                    let y1 = (y0 + BLOCK).min(h);
                    for y in y0..y1 {
                        for x in x0..x1 {
                            let q = dec.next_residual()?;
                            let v =
                                (i32::from(reference.get(x, y)) + q * qstep).clamp(0, 255) as u8;
                            recon.put(x, y, v);
                        }
                    }
                }
            }
            Ok(recon)
        }
    }

    fn noisy_plane(w: usize, h: usize, seed: usize) -> Plane {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.put(x, y, ((x * 7 + y * 13 + seed * 31) % 251) as u8);
            }
        }
        p
    }

    fn round_trip(cur: &Plane, reference: &Plane, qstep: i32, preset: Preset) -> (Plane, usize) {
        let mut buf = Vec::new();
        let recon = encode_plane(cur, reference, qstep, preset, &mut buf);
        let size = buf.len();
        let mut r = Reader::new(&buf);
        let dec = decode_plane(&mut r, reference, qstep).unwrap();
        assert_eq!(recon, dec);
        (dec, size)
    }

    #[test]
    fn identical_frame_costs_only_bitmap() {
        let p = noisy_plane(64, 48, 0);
        let (dec, size) = round_trip(&p, &p, 1, Preset::Ultrafast);
        assert_eq!(dec, p);
        let n_blocks: usize = 4 * 3;
        assert_eq!(size, n_blocks.div_ceil(8));
    }

    #[test]
    fn lossless_delta_round_trip() {
        let a = noisy_plane(48, 48, 1);
        let mut b = a.clone();
        // Change one block's worth of pixels.
        for y in 20..30 {
            for x in 20..30 {
                b.put(x, y, 255 - b.get(x, y));
            }
        }
        let (dec, _) = round_trip(&b, &a, 1, Preset::Ultrafast);
        assert_eq!(dec, b);
    }

    #[test]
    fn only_changed_blocks_are_coded() {
        let a = noisy_plane(64, 64, 2);
        let mut b = a.clone();
        b.put(0, 0, b.get(0, 0).wrapping_add(100));
        let mut buf = Vec::new();
        encode_plane(&b, &a, 1, Preset::Ultrafast, &mut buf);
        // 16 blocks → 2 bitmap bytes; only block 0 coded → small payload.
        assert!(buf.len() < 2 + 3 * 256, "payload too big: {}", buf.len());
        assert_eq!(buf[0] & 1, 1, "block 0 must be coded");
        assert_eq!(buf[0] & 2, 0, "block 1 must be skipped");
    }

    #[test]
    fn quantized_error_bounded_by_qstep() {
        let a = noisy_plane(32, 32, 3);
        let b = noisy_plane(32, 32, 4);
        for qstep in [2, 4, 8] {
            let (dec, _) = round_trip(&b, &a, qstep, Preset::Ultrafast);
            for (x, y) in dec.data().iter().zip(b.data()) {
                assert!(u8::abs_diff(*x, *y) as i32 <= qstep);
            }
        }
    }

    #[test]
    fn skip_threshold_scales_with_preset() {
        assert_eq!(skip_threshold(1, Preset::Ultrafast), 0);
        assert_eq!(skip_threshold(5, Preset::Ultrafast), 4);
        assert_eq!(skip_threshold(5, Preset::Medium), 2);
    }

    #[test]
    fn non_multiple_of_block_dims() {
        let a = noisy_plane(37, 23, 5);
        let b = noisy_plane(37, 23, 6);
        let (dec, _) = round_trip(&b, &a, 1, Preset::Ultrafast);
        assert_eq!(dec, b);
    }

    #[test]
    fn truncated_bitmap_errors() {
        let buf = [0u8; 1];
        let reference = Plane::new(64, 64); // 16 blocks → needs 2 bytes
        let mut r = Reader::new(&buf);
        assert!(decode_plane(&mut r, &reference, 1).is_err());
    }

    fn arb_plane_pair() -> impl Strategy<Value = (Plane, Plane)> {
        // A reference plane plus a perturbed current plane: some samples
        // nudged within the skip threshold, some blocks rewritten, so the
        // skip/code decision gets exercised both ways.
        (
            2usize..40,
            2usize..40,
            proptest::collection::vec(any::<u8>(), 40 * 40),
            proptest::collection::vec(any::<u8>(), 40 * 40),
        )
            .prop_map(|(w, h, base, delta)| {
                let reference = Plane::from_vec(w, h, base[..w * h].to_vec()).unwrap();
                let mut cur = reference.clone();
                for (i, d) in delta[..w * h].iter().enumerate() {
                    match d % 7 {
                        // Most samples untouched → skippable blocks.
                        0..=3 => {}
                        // Small nudge: within threshold for larger qsteps.
                        4 | 5 => {
                            let v = cur.data()[i];
                            cur.data_mut()[i] = v.wrapping_add(d % 3);
                        }
                        // Full rewrite: forces the block to be coded.
                        _ => cur.data_mut()[i] = d.wrapping_mul(37),
                    }
                }
                (reference, cur)
            })
    }

    proptest! {
        /// The vectorized inter coder emits the exact bytes and
        /// reconstruction of the per-pixel oracle: the same blocks skip,
        /// the same residuals code.
        #[test]
        fn vectorized_inter_matches_scalar(
            (reference, cur) in arb_plane_pair(),
            qstep in prop_oneof![Just(1i32), Just(2), Just(3), Just(5), Just(8)],
            medium in any::<bool>(),
        ) {
            let preset = if medium { Preset::Medium } else { Preset::Ultrafast };
            let mut fast_buf = Vec::new();
            let fast_recon = encode_plane(&cur, &reference, qstep, preset, &mut fast_buf);
            let mut ref_buf = Vec::new();
            let ref_recon = scalar::encode_plane(&cur, &reference, qstep, preset, &mut ref_buf);
            prop_assert_eq!(&fast_buf, &ref_buf);
            prop_assert_eq!(fast_recon, ref_recon);

            let mut r = Reader::new(&fast_buf);
            let fast_dec = decode_plane(&mut r, &reference, qstep).unwrap();
            let mut r = Reader::new(&ref_buf);
            let ref_dec = scalar::decode_plane(&mut r, &reference, qstep).unwrap();
            prop_assert_eq!(fast_dec, ref_dec);
        }
    }
}
