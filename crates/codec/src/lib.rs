#![warn(missing_docs)]

//! SVC — the Simple Video Codec.
//!
//! V2V's optimizations (paper §III-D) are profitable because of *codec
//! structure*: video is compressed in groups of pictures (GOPs) anchored
//! by self-contained keyframes (I-frames) followed by delta frames
//! (P-frames) that reference the previous frame. Re-encoding costs
//! O(pixels) of compute per frame; copying compressed packets costs a
//! memcpy. Decoding a frame mid-GOP requires decoding forward from the
//! preceding keyframe.
//!
//! The paper uses FFmpeg/H.264 for this substrate. This crate implements
//! SVC, a from-scratch codec with exactly that cost structure:
//!
//! * **I-frames** — per-plane DPCM spatial prediction (left/top
//!   predictors), uniform residual quantization, and run-length + varint
//!   entropy coding;
//! * **P-frames** — 16×16 block skip detection against the reconstructed
//!   reference plus DPCM-coded temporal residuals for changed blocks;
//! * **closed-loop quantization** — the encoder tracks the decoder's
//!   reconstruction, so there is no drift, and `quantizer = 0` is exactly
//!   lossless (which the test suite exploits for frame-exactness proofs);
//! * **presets** — [`Preset::Ultrafast`] (single predictor, matching the
//!   paper's benchmark encoder setting) vs [`Preset::Medium`] (per-row
//!   predictor search: slower, smaller output).
//!
//! The bitstream is versioned and self-describing per packet; see
//! [`bitstream`] for the wire primitives.

pub mod bitstream;
pub mod decoder;
pub mod encoder;
pub mod inter;
pub mod intra;
pub mod packet;
pub mod params;

pub use decoder::Decoder;
pub use encoder::Encoder;
pub use packet::{Packet, PacketKind};
pub use params::{CodecParams, Preset};

/// Errors raised by encode/decode operations.
#[derive(Debug, Clone, PartialEq, Eq, thiserror::Error)]
pub enum CodecError {
    /// The packet bitstream is malformed or truncated.
    #[error("corrupt bitstream: {0}")]
    Corrupt(String),
    /// A delta frame arrived with no reference (decode must start at a
    /// keyframe).
    #[error("delta frame without a reference; seek to a keyframe first")]
    MissingReference,
    /// The frame handed to the encoder does not match the configured type.
    #[error("frame type {got} does not match codec params {want}")]
    FrameTypeMismatch {
        /// Supplied frame type.
        got: v2v_frame::FrameType,
        /// Configured frame type.
        want: v2v_frame::FrameType,
    },
    /// Packet belongs to an incompatible stream.
    #[error("packet stream parameters are incompatible with this codec instance")]
    IncompatibleStream,
}
