//! The SVC encoder: GOP scheduling, packet assembly, closed-loop state.

// Panic-audit exemption: the encoder consumes trusted in-process frames,
// not untrusted bytes; its one `expect` states the is-inter ⇒
// has-reference invariant established a few lines above it.
#![allow(clippy::expect_used)]

use crate::bitstream::put_varint;
use crate::packet::{Packet, PacketKind};
use crate::params::CodecParams;
use crate::{inter, intra, CodecError};
use bytes::Bytes;
use v2v_frame::{Frame, FramePool};
use v2v_time::Rational;

/// Bitstream magic for intra packets.
const MAGIC_INTRA: u8 = 0x49; // 'I'
/// Bitstream magic for inter packets.
const MAGIC_INTER: u8 = 0x50; // 'P'

/// Stateful encoder for one SVC stream.
///
/// Frames must be fed in presentation order; every `gop_size`-th frame
/// (or any frame after [`Encoder::force_keyframe`]) becomes an I-frame.
pub struct Encoder {
    params: CodecParams,
    frame_index: u64,
    force_key: bool,
    reference: Option<Frame>,
    pool: FramePool,
    scratch: Vec<u8>,
    bytes_out: u64,
    frames_in: u64,
}

impl Encoder {
    /// Creates an encoder for the given stream parameters with its own
    /// private frame pool.
    pub fn new(params: CodecParams) -> Encoder {
        Encoder::with_pool(params, FramePool::new())
    }

    /// Creates an encoder drawing reconstruction buffers from a shared
    /// pool.
    pub fn with_pool(params: CodecParams, pool: FramePool) -> Encoder {
        Encoder {
            params,
            frame_index: 0,
            force_key: true,
            reference: None,
            pool,
            scratch: Vec::new(),
            bytes_out: 0,
            frames_in: 0,
        }
    }

    /// The stream parameters.
    pub fn params(&self) -> &CodecParams {
        &self.params
    }

    /// Forces the next frame to be a keyframe (used when splicing
    /// re-encoded segments onto stream-copied ones).
    pub fn force_keyframe(&mut self) {
        self.force_key = true;
    }

    /// Total compressed bytes produced so far.
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// Total frames consumed so far.
    pub fn frames_in(&self) -> u64 {
        self.frames_in
    }

    /// Encodes one frame stamped at `pts`.
    pub fn encode(&mut self, frame: &Frame, pts: Rational) -> Result<Packet, CodecError> {
        if frame.ty() != self.params.frame_ty {
            return Err(CodecError::FrameTypeMismatch {
                got: frame.ty(),
                want: self.params.frame_ty,
            });
        }
        let is_key = self.force_key
            || self.reference.is_none()
            || self.params.is_keyframe_index(self.frame_index);
        self.force_key = false;
        let kind = if is_key {
            PacketKind::Intra
        } else {
            PacketKind::Inter
        };
        let qstep = self.params.qstep();
        let preset = self.params.preset;

        let mut payload = Vec::with_capacity(frame.ty().frame_bytes() / 4);
        payload.push(match kind {
            PacketKind::Intra => MAGIC_INTRA,
            PacketKind::Inter => MAGIC_INTER,
        });
        // The reconstruction lands in a pooled frame; the per-plane
        // bitstream goes through a persistent scratch buffer, so the
        // steady state allocates nothing per frame.
        let mut recon = self.pool.acquire(frame.ty());
        for (pi, plane) in frame.planes().iter().enumerate() {
            self.scratch.clear();
            match kind {
                PacketKind::Intra => intra::encode_plane_into(
                    plane,
                    qstep,
                    preset,
                    &mut self.scratch,
                    recon.plane_mut(pi),
                ),
                PacketKind::Inter => {
                    let reference = self
                        .reference
                        .as_ref()
                        .expect("inter frame always has a reference");
                    inter::encode_plane_into(
                        plane,
                        reference.plane(pi),
                        qstep,
                        preset,
                        &mut self.scratch,
                        recon.plane_mut(pi),
                    );
                }
            }
            put_varint(&mut payload, self.scratch.len() as u64);
            payload.extend_from_slice(&self.scratch);
        }
        if let Some(old) = self.reference.replace(recon) {
            self.pool.release(old);
        }
        self.frame_index += 1;
        self.frames_in += 1;
        self.bytes_out += payload.len() as u64;
        Ok(Packet::new(pts, is_key, Bytes::from(payload)))
    }

    /// Resets GOP state (next frame will be a keyframe at index 0).
    pub fn reset(&mut self) {
        self.frame_index = 0;
        self.force_key = true;
        if let Some(old) = self.reference.take() {
            self.pool.release(old);
        }
    }
}

/// Parses the packet kind from a payload (first byte).
pub(crate) fn packet_kind(data: &[u8]) -> Result<PacketKind, CodecError> {
    match data.first() {
        Some(&MAGIC_INTRA) => Ok(PacketKind::Intra),
        Some(&MAGIC_INTER) => Ok(PacketKind::Inter),
        Some(b) => Err(CodecError::Corrupt(format!("bad packet magic {b:#x}"))),
        None => Err(CodecError::Corrupt("empty packet".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_frame::FrameType;
    use v2v_time::r;

    fn frame_with_luma(ty: FrameType, luma: u8) -> Frame {
        let mut f = Frame::black(ty);
        for v in f.plane_mut(0).data_mut() {
            *v = luma;
        }
        f
    }

    #[test]
    fn gop_cadence_in_packets() {
        let ty = FrameType::yuv420p(32, 32);
        let mut enc = Encoder::new(CodecParams::new(ty, 4, 0));
        let mut keys = Vec::new();
        for i in 0..10 {
            let f = frame_with_luma(ty, (i * 20) as u8);
            let p = enc.encode(&f, r(i, 30)).unwrap();
            keys.push(p.keyframe);
        }
        assert_eq!(
            keys,
            vec![true, false, false, false, true, false, false, false, true, false]
        );
    }

    #[test]
    fn force_keyframe_overrides_cadence() {
        let ty = FrameType::gray8(32, 32);
        let mut enc = Encoder::new(CodecParams::new(ty, 100, 0));
        let f = frame_with_luma(ty, 7);
        assert!(enc.encode(&f, r(0, 1)).unwrap().keyframe);
        assert!(!enc.encode(&f, r(1, 1)).unwrap().keyframe);
        enc.force_keyframe();
        assert!(enc.encode(&f, r(2, 1)).unwrap().keyframe);
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut enc = Encoder::new(CodecParams::new(FrameType::gray8(32, 32), 4, 0));
        let wrong = Frame::black(FrameType::gray8(16, 16));
        assert!(matches!(
            enc.encode(&wrong, r(0, 1)),
            Err(CodecError::FrameTypeMismatch { .. })
        ));
    }

    #[test]
    fn static_content_p_frames_are_tiny() {
        let ty = FrameType::yuv420p(64, 64);
        let mut enc = Encoder::new(CodecParams::new(ty, 30, 0));
        // Textured content: the I-frame is substantial, the repeat is an
        // all-skip P-frame.
        let mut f = Frame::black(ty);
        for y in 0..64 {
            for x in 0..64 {
                f.plane_mut(0).put(x, y, ((x * 7 + y * 13) % 256) as u8);
            }
        }
        let i_size = enc.encode(&f, r(0, 30)).unwrap().size();
        let p_size = enc.encode(&f, r(1, 30)).unwrap().size();
        assert!(p_size * 10 < i_size, "static P ({p_size}) vs I ({i_size})");
    }

    #[test]
    fn reset_restarts_gop() {
        let ty = FrameType::gray8(32, 32);
        let mut enc = Encoder::new(CodecParams::new(ty, 8, 0));
        let f = frame_with_luma(ty, 1);
        enc.encode(&f, r(0, 1)).unwrap();
        enc.encode(&f, r(1, 1)).unwrap();
        enc.reset();
        assert!(enc.encode(&f, r(2, 1)).unwrap().keyframe);
    }

    #[test]
    fn stats_accumulate() {
        let ty = FrameType::gray8(32, 32);
        let mut enc = Encoder::new(CodecParams::new(ty, 8, 0));
        let f = frame_with_luma(ty, 1);
        let p = enc.encode(&f, r(0, 1)).unwrap();
        assert_eq!(enc.frames_in(), 1);
        assert_eq!(enc.bytes_out(), p.size() as u64);
    }
}
