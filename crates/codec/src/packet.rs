//! Compressed packets: one encoded frame each.

use bytes::Bytes;
use v2v_time::Rational;

/// Kind of encoded frame a packet carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketKind {
    /// Self-contained keyframe (decodable with no reference).
    Intra,
    /// Delta frame referencing the previous decoded frame.
    Inter,
}

/// One compressed frame.
///
/// `data` is cheaply cloneable ([`Bytes`]): stream copy *is* a refcount
/// bump plus an index entry, which is what makes it the "fastest class of
/// video edits operating near the speed of a memory copy" (paper §IV-C).
#[derive(Clone, Debug, PartialEq)]
pub struct Packet {
    /// Presentation timestamp.
    pub pts: Rational,
    /// `true` for keyframes.
    pub keyframe: bool,
    /// Compressed payload.
    pub data: Bytes,
}

impl Packet {
    /// Builds a packet.
    pub fn new(pts: Rational, keyframe: bool, data: Bytes) -> Packet {
        Packet {
            pts,
            keyframe,
            data,
        }
    }

    /// Payload size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Returns the same packet re-stamped at a new timestamp (stream copy
    /// into an output at a shifted position).
    pub fn retimed(&self, pts: Rational) -> Packet {
        Packet {
            pts,
            keyframe: self.keyframe,
            data: self.data.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use v2v_time::r;

    #[test]
    fn retime_shares_payload() {
        let p = Packet::new(r(1, 30), true, Bytes::from(vec![1, 2, 3]));
        let q = p.retimed(r(2, 30));
        assert_eq!(q.pts, r(2, 30));
        assert!(q.keyframe);
        assert_eq!(q.size(), 3);
        // Same underlying buffer (Bytes pointer equality via as_ptr).
        assert_eq!(p.data.as_ptr(), q.data.as_ptr());
    }
}
