//! Bitstream primitives: LEB128 varints, zigzag signed coding, and
//! (run, value) residual coding shared by the intra and inter coders.

use crate::CodecError;

/// Encodes `v` as a LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-maps a signed value to unsigned.
#[inline]
pub fn zigzag(v: i32) -> u64 {
    ((v << 1) ^ (v >> 31)) as u32 as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i32 {
    let v = v as u32;
    ((v >> 1) as i32) ^ -((v & 1) as i32)
}

/// A cursor over packet payload bytes.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    pub fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| CodecError::Corrupt("unexpected end of packet".into()))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` bytes.
    ///
    /// `n` comes straight from the bitstream (a varint length), so the
    /// end position is computed with checked arithmetic and the slice is
    /// taken through `get`: a hostile length yields `Corrupt`, never a
    /// wrap-around or an out-of-bounds slice.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|end| *end <= self.buf.len())
            .ok_or_else(|| CodecError::Corrupt("truncated byte run".into()))?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| CodecError::Corrupt("truncated byte run".into()))?;
        self.pos = end;
        Ok(s)
    }

    /// Reads a LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err(CodecError::Corrupt("varint overflow".into()));
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }
}

/// Writes residuals with (zero-run, nonzero-value) coding.
///
/// Stream layout: repeated `(run: varint, value: zigzag varint)` pairs,
/// where `run` counts zero residuals preceding `value`; a final
/// trailing run of zeros is implied by the residual count.
pub struct RunCoder {
    run: u64,
}

impl Default for RunCoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RunCoder {
    /// A fresh coder.
    pub fn new() -> RunCoder {
        RunCoder { run: 0 }
    }

    /// Adds one residual.
    #[inline]
    pub fn push(&mut self, out: &mut Vec<u8>, residual: i32) {
        if residual == 0 {
            self.run += 1;
        } else {
            put_varint(out, self.run);
            put_varint(out, zigzag(residual));
            self.run = 0;
        }
    }

    /// Flushes; any trailing zero run is implicit.
    pub fn finish(self, _out: &mut Vec<u8>) {}
}

/// Reads residuals produced by [`RunCoder`]. Yields exactly `count`
/// residuals then stops.
pub struct RunDecoder<'a, 'b> {
    reader: &'b mut Reader<'a>,
    pending_zeroes: u64,
    pending_value: Option<i32>,
    remaining: u64,
}

impl<'a, 'b> RunDecoder<'a, 'b> {
    /// Starts decoding `count` residuals from `reader`.
    pub fn new(reader: &'b mut Reader<'a>, count: u64) -> RunDecoder<'a, 'b> {
        RunDecoder {
            reader,
            pending_zeroes: 0,
            pending_value: None,
            remaining: count,
        }
    }

    /// Next residual.
    #[inline]
    pub fn next_residual(&mut self) -> Result<i32, CodecError> {
        if self.remaining == 0 {
            return Err(CodecError::Corrupt("residual overrun".into()));
        }
        self.remaining -= 1;
        if self.pending_zeroes > 0 {
            self.pending_zeroes -= 1;
            return Ok(0);
        }
        if let Some(v) = self.pending_value.take() {
            return Ok(v);
        }
        if self.reader.remaining() == 0 {
            // Implicit trailing zeros.
            return Ok(0);
        }
        let run = self.reader.varint()?;
        let value = unzigzag(self.reader.varint()?);
        // The pair covers `run` zeroes plus one value; one residual was
        // already consumed above, so a run longer than what is left means
        // the stream lies about its own length.
        if run > self.remaining {
            return Err(CodecError::Corrupt(
                "run length exceeds residual count".into(),
            ));
        }
        if run > 0 {
            self.pending_zeroes = run - 1;
            self.pending_value = Some(value);
            Ok(0)
        } else {
            Ok(value)
        }
    }

    /// Fills `out` with the next `out.len()` residuals.
    ///
    /// Equivalent to calling [`RunDecoder::next_residual`] once per slot,
    /// but zero runs land as bulk `fill(0)` over sub-slices instead of
    /// one branchy call per sample — the fast path for the run-coded
    /// streams this codec produces.
    #[allow(clippy::indexing_slicing)] // every index is bounded by the `i < out.len()` loop condition and `n` is min'd against `out.len() - i`
    pub fn next_residuals(&mut self, out: &mut [i32]) -> Result<(), CodecError> {
        let mut i = 0usize;
        while i < out.len() {
            if self.remaining == 0 {
                return Err(CodecError::Corrupt("residual overrun".into()));
            }
            if self.pending_zeroes > 0 {
                let n = (self.pending_zeroes.min(self.remaining) as usize).min(out.len() - i);
                out[i..i + n].fill(0);
                self.pending_zeroes -= n as u64;
                self.remaining -= n as u64;
                i += n;
                continue;
            }
            if let Some(v) = self.pending_value.take() {
                out[i] = v;
                i += 1;
                self.remaining -= 1;
                continue;
            }
            if self.reader.remaining() == 0 {
                // Implicit trailing zeros up to the residual count.
                let n = (self.remaining as usize).min(out.len() - i);
                out[i..i + n].fill(0);
                self.remaining -= n as u64;
                i += n;
                continue;
            }
            let run = self.reader.varint()?;
            let value = unzigzag(self.reader.varint()?);
            // The pair covers `run + 1` residuals; nothing of it has been
            // consumed yet, so reject runs that overrun the declared
            // residual count instead of silently clamping the zero fill.
            if run >= self.remaining {
                return Err(CodecError::Corrupt(
                    "run length exceeds residual count".into(),
                ));
            }
            if run > 0 {
                self.pending_zeroes = run;
                self.pending_value = Some(value);
            } else {
                out[i] = value;
                i += 1;
                self.remaining -= 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX];
        for &v in &values {
            put_varint(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [-1000, -1, 0, 1, 7, i32::MAX, i32::MIN + 1] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes get small codes.
        assert!(zigzag(-1) < 4);
        assert!(zigzag(1) < 4);
    }

    #[test]
    fn run_coding_round_trip() {
        let residuals: Vec<i32> = vec![0, 0, 5, -3, 0, 0, 0, 7, 0, 0];
        let mut buf = Vec::new();
        let mut coder = RunCoder::new();
        for &r in &residuals {
            coder.push(&mut buf, r);
        }
        coder.finish(&mut buf);
        let mut reader = Reader::new(&buf);
        let mut dec = RunDecoder::new(&mut reader, residuals.len() as u64);
        let got: Vec<i32> = (0..residuals.len())
            .map(|_| dec.next_residual().unwrap())
            .collect();
        assert_eq!(got, residuals);
    }

    #[test]
    fn all_zero_residuals_cost_nothing() {
        let mut buf = Vec::new();
        let mut coder = RunCoder::new();
        for _ in 0..10_000 {
            coder.push(&mut buf, 0);
        }
        coder.finish(&mut buf);
        assert!(buf.is_empty(), "all-zero stream must be empty");
        let mut reader = Reader::new(&buf);
        let mut dec = RunDecoder::new(&mut reader, 10_000);
        for _ in 0..10_000 {
            assert_eq!(dec.next_residual().unwrap(), 0);
        }
        assert!(dec.next_residual().is_err(), "overrun must error");
    }

    #[test]
    fn truncated_varint_errors() {
        let buf = [0x80u8, 0x80];
        let mut r = Reader::new(&buf);
        assert!(r.varint().is_err());
    }

    #[test]
    fn huge_byte_run_request_is_corrupt() {
        // A length near usize::MAX must fail cleanly (no add overflow,
        // no out-of-bounds slice), and a failed read must not move the
        // cursor.
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        assert!(r.bytes(usize::MAX).is_err());
        assert!(r.bytes(4).is_err());
        assert_eq!(r.bytes(3).unwrap(), &buf);
    }

    #[test]
    fn lying_run_length_is_corrupt() {
        // A run claiming more zeroes than residuals remain must be
        // rejected, not silently clamped into a truncated fill.
        let mut buf = Vec::new();
        put_varint(&mut buf, 1000);
        put_varint(&mut buf, zigzag(5));

        let mut r = Reader::new(&buf);
        let mut dec = RunDecoder::new(&mut r, 4);
        let mut out = [0i32; 4];
        assert!(matches!(
            dec.next_residuals(&mut out),
            Err(CodecError::Corrupt(_))
        ));

        let mut r = Reader::new(&buf);
        let mut dec = RunDecoder::new(&mut r, 4);
        assert!(matches!(dec.next_residual(), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn exact_run_length_still_decodes() {
        // A run that exactly fills the residual count is legal: 3 zeroes
        // then a value, count 4.
        let mut buf = Vec::new();
        put_varint(&mut buf, 3);
        put_varint(&mut buf, zigzag(-7));
        let mut r = Reader::new(&buf);
        let mut dec = RunDecoder::new(&mut r, 4);
        let mut out = [99i32; 4];
        dec.next_residuals(&mut out).unwrap();
        assert_eq!(out, [0, 0, 0, -7]);
    }
}
