//! Codec configuration: stream parameters and encoder presets.

use serde::{Deserialize, Serialize};
use v2v_frame::FrameType;

/// Encoder effort preset.
///
/// Mirrors the paper's benchmark environment ("the ultrafast encoding
/// preset"): `Ultrafast` uses a fixed left predictor; `Medium` searches
/// per row between the left and top predictors, spending more compute for
/// a smaller bitstream.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Preset {
    /// Fastest: fixed spatial predictor, coarse skip detection.
    #[default]
    Ultrafast,
    /// Slower: per-row predictor selection, tighter skip detection.
    Medium,
}

/// Immutable parameters of an SVC stream.
///
/// Two streams can be spliced by stream copy only if their params are
/// identical (the concat compatibility rule, paper §III-D "multiple
/// compatible video streams in the same codec can be concatenated").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CodecParams {
    /// Frame geometry and pixel format.
    pub frame_ty: FrameType,
    /// Keyframe interval in frames: every `gop_size`-th frame is an
    /// I-frame. `1` means all-intra.
    pub gop_size: u32,
    /// Residual quantizer: `0` is lossless; larger values coarsen
    /// residuals (step `quantizer + 1`) and shrink the bitstream.
    pub quantizer: u8,
    /// Encoder effort.
    #[serde(default)]
    pub preset: Preset,
}

impl CodecParams {
    /// Convenience constructor with the default preset.
    pub fn new(frame_ty: FrameType, gop_size: u32, quantizer: u8) -> CodecParams {
        assert!(gop_size >= 1, "gop_size must be at least 1");
        CodecParams {
            frame_ty,
            gop_size,
            quantizer,
            preset: Preset::Ultrafast,
        }
    }

    /// Quantization step derived from the quantizer.
    pub fn qstep(&self) -> i32 {
        i32::from(self.quantizer) + 1
    }

    /// `true` if streams with these params can be spliced without
    /// re-encoding. GOP size is an *encoder cadence* choice, not a
    /// property of the bitstream (the decoder reacts to per-packet
    /// keyframe flags), so it does not participate in compatibility.
    pub fn compatible_with(&self, other: &CodecParams) -> bool {
        self.frame_ty == other.frame_ty
            && self.quantizer == other.quantizer
            && self.preset == other.preset
    }

    /// `true` if frame `index` (0-based) is a keyframe position.
    pub fn is_keyframe_index(&self, index: u64) -> bool {
        // `max(1)` guards against params deserialized from hostile
        // headers, which bypass the `new` assertion: a zero GOP size must
        // not turn into a divide-by-zero panic mid-decode.
        index % u64::from(self.gop_size.max(1)) == 0
    }

    /// Validates parameters arriving from untrusted sources.
    ///
    /// Serde deserialization (container headers) bypasses the
    /// [`CodecParams::new`] assertion, so hostile files can carry any
    /// field values; callers parsing untrusted bytes run this before
    /// trusting the params. Returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        /// Per-axis pixel bound for untrusted headers: caps the largest
        /// frame allocation a hostile file can demand (~768 MiB of
        /// raster for 16384×16384 yuv420p) without constraining any
        /// realistic stream.
        const MAX_DIM: u32 = 1 << 14;
        if self.gop_size == 0 {
            return Err("gop_size must be at least 1".into());
        }
        let ty = self.frame_ty;
        if ty.width == 0 || ty.height == 0 {
            return Err(format!(
                "frame dimensions {}x{} must be nonzero",
                ty.width, ty.height
            ));
        }
        if ty.width > MAX_DIM || ty.height > MAX_DIM {
            return Err(format!(
                "frame dimensions {}x{} exceed the {MAX_DIM}x{MAX_DIM} limit",
                ty.width, ty.height
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qstep_is_one_when_lossless() {
        let p = CodecParams::new(FrameType::yuv420p(64, 64), 30, 0);
        assert_eq!(p.qstep(), 1);
        assert_eq!(
            CodecParams::new(FrameType::yuv420p(64, 64), 30, 4).qstep(),
            5
        );
    }

    #[test]
    fn keyframe_cadence() {
        let p = CodecParams::new(FrameType::yuv420p(64, 64), 24, 0);
        assert!(p.is_keyframe_index(0));
        assert!(!p.is_keyframe_index(1));
        assert!(p.is_keyframe_index(24));
        assert!(p.is_keyframe_index(48));
        let all_intra = CodecParams::new(FrameType::yuv420p(64, 64), 1, 0);
        assert!(all_intra.is_keyframe_index(7));
    }

    #[test]
    fn compatibility_is_exact_equality() {
        let a = CodecParams::new(FrameType::yuv420p(64, 64), 24, 2);
        let mut b = a;
        assert!(a.compatible_with(&b));
        b.quantizer = 3;
        assert!(!a.compatible_with(&b));
    }

    #[test]
    #[should_panic]
    fn zero_gop_rejected() {
        CodecParams::new(FrameType::yuv420p(64, 64), 0, 0);
    }

    #[test]
    fn validate_rejects_hostile_params() {
        let good = CodecParams::new(FrameType::yuv420p(64, 64), 30, 0);
        assert!(good.validate().is_ok());

        // Serde bypasses the constructor assertion, so a hostile header
        // can carry gop_size = 0; validate must catch it and the cadence
        // check must not divide by zero regardless.
        let mut zero_gop = good;
        zero_gop.gop_size = 0;
        assert!(zero_gop.validate().is_err());
        assert!(zero_gop.is_keyframe_index(0), "must not panic");

        let mut flat = good;
        flat.frame_ty.height = 0;
        assert!(flat.validate().is_err());

        let mut giant = good;
        giant.frame_ty.width = u32::MAX;
        assert!(giant.validate().is_err(), "hostile dims must be capped");
    }
}
