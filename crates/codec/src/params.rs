//! Codec configuration: stream parameters and encoder presets.

use serde::{Deserialize, Serialize};
use v2v_frame::FrameType;

/// Encoder effort preset.
///
/// Mirrors the paper's benchmark environment ("the ultrafast encoding
/// preset"): `Ultrafast` uses a fixed left predictor; `Medium` searches
/// per row between the left and top predictors, spending more compute for
/// a smaller bitstream.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Preset {
    /// Fastest: fixed spatial predictor, coarse skip detection.
    #[default]
    Ultrafast,
    /// Slower: per-row predictor selection, tighter skip detection.
    Medium,
}

/// Immutable parameters of an SVC stream.
///
/// Two streams can be spliced by stream copy only if their params are
/// identical (the concat compatibility rule, paper §III-D "multiple
/// compatible video streams in the same codec can be concatenated").
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CodecParams {
    /// Frame geometry and pixel format.
    pub frame_ty: FrameType,
    /// Keyframe interval in frames: every `gop_size`-th frame is an
    /// I-frame. `1` means all-intra.
    pub gop_size: u32,
    /// Residual quantizer: `0` is lossless; larger values coarsen
    /// residuals (step `quantizer + 1`) and shrink the bitstream.
    pub quantizer: u8,
    /// Encoder effort.
    #[serde(default)]
    pub preset: Preset,
}

impl CodecParams {
    /// Convenience constructor with the default preset.
    pub fn new(frame_ty: FrameType, gop_size: u32, quantizer: u8) -> CodecParams {
        assert!(gop_size >= 1, "gop_size must be at least 1");
        CodecParams {
            frame_ty,
            gop_size,
            quantizer,
            preset: Preset::Ultrafast,
        }
    }

    /// Quantization step derived from the quantizer.
    pub fn qstep(&self) -> i32 {
        i32::from(self.quantizer) + 1
    }

    /// `true` if streams with these params can be spliced without
    /// re-encoding. GOP size is an *encoder cadence* choice, not a
    /// property of the bitstream (the decoder reacts to per-packet
    /// keyframe flags), so it does not participate in compatibility.
    pub fn compatible_with(&self, other: &CodecParams) -> bool {
        self.frame_ty == other.frame_ty
            && self.quantizer == other.quantizer
            && self.preset == other.preset
    }

    /// `true` if frame `index` (0-based) is a keyframe position.
    pub fn is_keyframe_index(&self, index: u64) -> bool {
        index % u64::from(self.gop_size) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qstep_is_one_when_lossless() {
        let p = CodecParams::new(FrameType::yuv420p(64, 64), 30, 0);
        assert_eq!(p.qstep(), 1);
        assert_eq!(
            CodecParams::new(FrameType::yuv420p(64, 64), 30, 4).qstep(),
            5
        );
    }

    #[test]
    fn keyframe_cadence() {
        let p = CodecParams::new(FrameType::yuv420p(64, 64), 24, 0);
        assert!(p.is_keyframe_index(0));
        assert!(!p.is_keyframe_index(1));
        assert!(p.is_keyframe_index(24));
        assert!(p.is_keyframe_index(48));
        let all_intra = CodecParams::new(FrameType::yuv420p(64, 64), 1, 0);
        assert!(all_intra.is_keyframe_index(7));
    }

    #[test]
    fn compatibility_is_exact_equality() {
        let a = CodecParams::new(FrameType::yuv420p(64, 64), 24, 2);
        let mut b = a;
        assert!(a.compatible_with(&b));
        b.quantizer = 3;
        assert!(!a.compatible_with(&b));
    }

    #[test]
    #[should_panic]
    fn zero_gop_rejected() {
        CodecParams::new(FrameType::yuv420p(64, 64), 0, 0);
    }
}
