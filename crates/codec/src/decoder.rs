//! The SVC decoder: GOP-aware stateful decode.

use crate::bitstream::Reader;
use crate::encoder::packet_kind;
use crate::packet::{Packet, PacketKind};
use crate::params::CodecParams;
use crate::{inter, intra, CodecError};
use std::sync::Arc;
use v2v_frame::{Frame, FramePool};

/// Stateful decoder for one SVC stream.
///
/// Decoding must begin at a keyframe; delta packets decode against the
/// previously decoded frame. To decode an arbitrary frame mid-GOP, seek
/// to the preceding keyframe and decode forward — the cost the V2V smart
/// cut avoids for all but the first and last GOP of a clip.
///
/// Decoded frames come out behind [`Arc`] (see [`Decoder::decode_shared`])
/// and their buffers are drawn from a [`FramePool`]: the decoder holds its
/// reference as another `Arc` clone of the emitted frame, so the steady
/// state does zero raster copies per frame, and a frame whose consumers
/// have all dropped it is reclaimed into the pool when the reference
/// rolls forward.
pub struct Decoder {
    params: CodecParams,
    reference: Option<Arc<Frame>>,
    pool: FramePool,
    frames_out: u64,
}

impl Decoder {
    /// Creates a decoder for the given stream parameters with its own
    /// private frame pool.
    pub fn new(params: CodecParams) -> Decoder {
        Decoder::with_pool(params, FramePool::new())
    }

    /// Creates a decoder drawing frame buffers from a shared pool.
    pub fn with_pool(params: CodecParams, pool: FramePool) -> Decoder {
        Decoder {
            params,
            reference: None,
            pool,
            frames_out: 0,
        }
    }

    /// The stream parameters.
    pub fn params(&self) -> &CodecParams {
        &self.params
    }

    /// The pool frame buffers are drawn from.
    pub fn pool(&self) -> &FramePool {
        &self.pool
    }

    /// Frames decoded so far.
    pub fn frames_out(&self) -> u64 {
        self.frames_out
    }

    /// Drops the reference (e.g. before seeking to another keyframe).
    pub fn reset(&mut self) {
        if let Some(old) = self.reference.take() {
            self.pool.release_shared(old);
        }
    }

    /// Decodes one packet into a shared frame.
    ///
    /// This is the zero-copy path: the returned `Arc` is the same
    /// allocation the decoder keeps as its prediction reference, so no
    /// raster data is duplicated per frame.
    pub fn decode_shared(&mut self, packet: &Packet) -> Result<Arc<Frame>, CodecError> {
        let mut frame = self.pool.acquire(self.params.frame_ty);
        match self.decode_into(packet, &mut frame) {
            Ok(()) => {
                let frame = Arc::new(frame);
                if let Some(old) = self.reference.replace(frame.clone()) {
                    self.pool.release_shared(old);
                }
                self.frames_out += 1;
                Ok(frame)
            }
            Err(e) => {
                self.pool.release(frame);
                Err(e)
            }
        }
    }

    /// Decodes one packet into an owned frame.
    ///
    /// Convenience wrapper over [`Decoder::decode_shared`] that deep-copies
    /// the result; prefer the shared form on hot paths.
    pub fn decode(&mut self, packet: &Packet) -> Result<Frame, CodecError> {
        self.decode_shared(packet).map(|f| (*f).clone())
    }

    /// Decodes the packet payload into `frame`, overwriting every sample.
    fn decode_into(&self, packet: &Packet, frame: &mut Frame) -> Result<(), CodecError> {
        let kind = packet_kind(&packet.data)?;
        if packet.keyframe != (kind == PacketKind::Intra) {
            return Err(CodecError::Corrupt(
                "packet keyframe flag disagrees with bitstream".into(),
            ));
        }
        let ty = self.params.frame_ty;
        let qstep = self.params.qstep();
        let mut reader = Reader::new(packet.data.get(1..).unwrap_or_default());
        for pi in 0..ty.format.plane_count() {
            let len = reader.varint()? as usize;
            let payload = reader.bytes(len)?;
            let mut plane_reader = Reader::new(payload);
            match kind {
                PacketKind::Intra => {
                    intra::decode_plane_into(
                        &mut plane_reader,
                        qstep,
                        self.params.preset,
                        frame.plane_mut(pi),
                    )?;
                }
                PacketKind::Inter => {
                    let reference = self
                        .reference
                        .as_ref()
                        .ok_or(CodecError::MissingReference)?;
                    inter::decode_plane_into(
                        &mut plane_reader,
                        reference.plane(pi),
                        qstep,
                        frame.plane_mut(pi),
                    )?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use v2v_frame::FrameType;
    use v2v_time::r;

    fn moving_frame(ty: FrameType, i: usize) -> Frame {
        let mut f = Frame::black(ty);
        let w = f.width();
        for y in 0..f.height() {
            for x in 0..w {
                f.plane_mut(0)
                    .put(x, y, (((x + i * 3) * 5 + y) % 256) as u8);
            }
        }
        f
    }

    #[test]
    fn lossless_stream_round_trip() {
        let ty = FrameType::yuv420p(48, 32);
        let params = CodecParams::new(ty, 5, 0);
        let mut enc = Encoder::new(params);
        let mut dec = Decoder::new(params);
        for i in 0..12 {
            let f = moving_frame(ty, i);
            let p = enc.encode(&f, r(i as i64, 30)).unwrap();
            let g = dec.decode(&p).unwrap();
            assert_eq!(g, f, "frame {i} must round-trip exactly at q=0");
        }
        assert_eq!(dec.frames_out(), 12);
    }

    #[test]
    fn lossy_stream_bounded_error() {
        let ty = FrameType::gray8(64, 64);
        let params = CodecParams::new(ty, 6, 4);
        let mut enc = Encoder::new(params);
        let mut dec = Decoder::new(params);
        for i in 0..12 {
            let f = moving_frame(ty, i);
            let p = enc.encode(&f, r(i as i64, 30)).unwrap();
            let g = dec.decode(&p).unwrap();
            let max_err = f
                .plane(0)
                .data()
                .iter()
                .zip(g.plane(0).data())
                .map(|(a, b)| a.abs_diff(*b))
                .max()
                .unwrap();
            assert!(max_err as i32 <= params.qstep(), "frame {i}: err {max_err}");
        }
    }

    #[test]
    fn delta_without_reference_errors() {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut enc = Encoder::new(params);
        let f = moving_frame(ty, 0);
        enc.encode(&f, r(0, 30)).unwrap(); // keyframe
        let p1 = enc.encode(&moving_frame(ty, 1), r(1, 30)).unwrap();
        let mut dec = Decoder::new(params);
        assert_eq!(dec.decode(&p1), Err(CodecError::MissingReference));
    }

    #[test]
    fn decode_from_mid_stream_keyframe() {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 3, 0);
        let mut enc = Encoder::new(params);
        let mut packets = Vec::new();
        for i in 0..7 {
            packets.push(enc.encode(&moving_frame(ty, i), r(i as i64, 30)).unwrap());
        }
        // Start decoding at the keyframe at index 3.
        assert!(packets[3].keyframe);
        let mut dec = Decoder::new(params);
        let g3 = dec.decode(&packets[3]).unwrap();
        assert_eq!(g3, moving_frame(ty, 3));
        let g4 = dec.decode(&packets[4]).unwrap();
        assert_eq!(g4, moving_frame(ty, 4));
    }

    #[test]
    fn corrupt_magic_rejected() {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut dec = Decoder::new(params);
        let bad = Packet::new(r(0, 1), true, bytes::Bytes::from(vec![0xFFu8, 0, 0]));
        assert!(matches!(dec.decode(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn flag_bitstream_disagreement_rejected() {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut enc = Encoder::new(params);
        let p = enc.encode(&moving_frame(ty, 0), r(0, 1)).unwrap();
        let lying = Packet::new(p.pts, false, p.data.clone());
        let mut dec = Decoder::new(params);
        assert!(matches!(dec.decode(&lying), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn encoder_decoder_reconstruction_agree_when_lossy() {
        // The encoder's closed-loop reference must equal the decoder's
        // output, otherwise P-frames drift.
        let ty = FrameType::gray8(48, 48);
        let params = CodecParams::new(ty, 4, 6);
        let mut enc = Encoder::new(params);
        let mut dec = Decoder::new(params);
        let mut last = None;
        for i in 0..8 {
            let p = enc.encode(&moving_frame(ty, i), r(i as i64, 30)).unwrap();
            last = Some(dec.decode(&p).unwrap());
        }
        // Re-encode the decoder's last output: if references agree, the
        // delta against it is all-skip (tiny packet).
        let mut enc2 = Encoder::new(params);
        let p = enc2.encode(&last.unwrap(), r(100, 30)).unwrap();
        assert!(p.keyframe); // fresh encoder starts with a keyframe
    }

    #[test]
    fn pooled_decode_matches_unpooled() {
        // A decoder recycling buffers through a shared pool must produce
        // byte-identical frames to a fresh one.
        let ty = FrameType::yuv420p(48, 32);
        let params = CodecParams::new(ty, 4, 3);
        let mut enc = Encoder::new(params);
        let packets: Vec<_> = (0..10)
            .map(|i| enc.encode(&moving_frame(ty, i), r(i as i64, 30)).unwrap())
            .collect();

        let pool = FramePool::new();
        let mut pooled = Decoder::with_pool(params, pool.clone());
        let mut plain = Decoder::new(params);
        for p in &packets {
            let a = pooled.decode_shared(p).unwrap();
            let b = plain.decode(p).unwrap();
            assert_eq!(*a, b);
            // Dropping `a` here leaves the pooled decoder's reference as
            // the only owner, so the next roll recycles the buffer.
        }
        assert!(
            pool.pooled() > 0,
            "dropped frames must return to the pool as the reference rolls"
        );
    }

    #[test]
    fn reset_releases_reference_to_pool() {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut enc = Encoder::new(params);
        let p = enc.encode(&moving_frame(ty, 0), r(0, 30)).unwrap();
        let pool = FramePool::new();
        let mut dec = Decoder::with_pool(params, pool.clone());
        drop(dec.decode_shared(&p).unwrap());
        assert_eq!(pool.pooled(), 0, "reference still pins the buffer");
        dec.reset();
        assert_eq!(pool.pooled(), 1, "reset must reclaim the sole owner");
    }
}
