//! The SVC decoder: GOP-aware stateful decode.

use crate::bitstream::Reader;
use crate::encoder::packet_kind;
use crate::packet::{Packet, PacketKind};
use crate::params::CodecParams;
use crate::{inter, intra, CodecError};
use v2v_frame::{Frame, Plane};

/// Stateful decoder for one SVC stream.
///
/// Decoding must begin at a keyframe; delta packets decode against the
/// previously decoded frame. To decode an arbitrary frame mid-GOP, seek
/// to the preceding keyframe and decode forward — the cost the V2V smart
/// cut avoids for all but the first and last GOP of a clip.
pub struct Decoder {
    params: CodecParams,
    reference: Option<Frame>,
    frames_out: u64,
}

impl Decoder {
    /// Creates a decoder for the given stream parameters.
    pub fn new(params: CodecParams) -> Decoder {
        Decoder {
            params,
            reference: None,
            frames_out: 0,
        }
    }

    /// The stream parameters.
    pub fn params(&self) -> &CodecParams {
        &self.params
    }

    /// Frames decoded so far.
    pub fn frames_out(&self) -> u64 {
        self.frames_out
    }

    /// Drops the reference (e.g. before seeking to another keyframe).
    pub fn reset(&mut self) {
        self.reference = None;
    }

    /// Decodes one packet into a frame.
    pub fn decode(&mut self, packet: &Packet) -> Result<Frame, CodecError> {
        let kind = packet_kind(&packet.data)?;
        if packet.keyframe != (kind == PacketKind::Intra) {
            return Err(CodecError::Corrupt(
                "packet keyframe flag disagrees with bitstream".into(),
            ));
        }
        let ty = self.params.frame_ty;
        let qstep = self.params.qstep();
        let mut reader = Reader::new(&packet.data[1..]);
        let mut planes: Vec<Plane> = Vec::with_capacity(ty.format.plane_count());
        for pi in 0..ty.format.plane_count() {
            let (w, h) = ty
                .format
                .plane_dims(pi, ty.width as usize, ty.height as usize);
            let len = reader.varint()? as usize;
            let payload = reader.bytes(len)?;
            let mut plane_reader = Reader::new(payload);
            let plane = match kind {
                PacketKind::Intra => {
                    intra::decode_plane(&mut plane_reader, w, h, qstep, self.params.preset)?
                }
                PacketKind::Inter => {
                    let reference = self
                        .reference
                        .as_ref()
                        .ok_or(CodecError::MissingReference)?;
                    inter::decode_plane(&mut plane_reader, reference.plane(pi), qstep)?
                }
            };
            planes.push(plane);
        }
        let frame = Frame::from_planes(ty, planes)
            .map_err(|e| CodecError::Corrupt(format!("decoded planes invalid: {e}")))?;
        self.reference = Some(frame.clone());
        self.frames_out += 1;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::Encoder;
    use v2v_frame::FrameType;
    use v2v_time::r;

    fn moving_frame(ty: FrameType, i: usize) -> Frame {
        let mut f = Frame::black(ty);
        let w = f.width();
        for y in 0..f.height() {
            for x in 0..w {
                f.plane_mut(0).put(x, y, (((x + i * 3) * 5 + y) % 256) as u8);
            }
        }
        f
    }

    #[test]
    fn lossless_stream_round_trip() {
        let ty = FrameType::yuv420p(48, 32);
        let params = CodecParams::new(ty, 5, 0);
        let mut enc = Encoder::new(params);
        let mut dec = Decoder::new(params);
        for i in 0..12 {
            let f = moving_frame(ty, i);
            let p = enc.encode(&f, r(i as i64, 30)).unwrap();
            let g = dec.decode(&p).unwrap();
            assert_eq!(g, f, "frame {i} must round-trip exactly at q=0");
        }
        assert_eq!(dec.frames_out(), 12);
    }

    #[test]
    fn lossy_stream_bounded_error() {
        let ty = FrameType::gray8(64, 64);
        let params = CodecParams::new(ty, 6, 4);
        let mut enc = Encoder::new(params);
        let mut dec = Decoder::new(params);
        for i in 0..12 {
            let f = moving_frame(ty, i);
            let p = enc.encode(&f, r(i as i64, 30)).unwrap();
            let g = dec.decode(&p).unwrap();
            let max_err = f
                .plane(0)
                .data()
                .iter()
                .zip(g.plane(0).data())
                .map(|(a, b)| a.abs_diff(*b))
                .max()
                .unwrap();
            assert!(max_err as i32 <= params.qstep(), "frame {i}: err {max_err}");
        }
    }

    #[test]
    fn delta_without_reference_errors() {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut enc = Encoder::new(params);
        let f = moving_frame(ty, 0);
        enc.encode(&f, r(0, 30)).unwrap(); // keyframe
        let p1 = enc.encode(&moving_frame(ty, 1), r(1, 30)).unwrap();
        let mut dec = Decoder::new(params);
        assert_eq!(dec.decode(&p1), Err(CodecError::MissingReference));
    }

    #[test]
    fn decode_from_mid_stream_keyframe() {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 3, 0);
        let mut enc = Encoder::new(params);
        let mut packets = Vec::new();
        for i in 0..7 {
            packets.push(enc.encode(&moving_frame(ty, i), r(i as i64, 30)).unwrap());
        }
        // Start decoding at the keyframe at index 3.
        assert!(packets[3].keyframe);
        let mut dec = Decoder::new(params);
        let g3 = dec.decode(&packets[3]).unwrap();
        assert_eq!(g3, moving_frame(ty, 3));
        let g4 = dec.decode(&packets[4]).unwrap();
        assert_eq!(g4, moving_frame(ty, 4));
    }

    #[test]
    fn corrupt_magic_rejected() {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut dec = Decoder::new(params);
        let bad = Packet::new(r(0, 1), true, bytes::Bytes::from(vec![0xFFu8, 0, 0]));
        assert!(matches!(dec.decode(&bad), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn flag_bitstream_disagreement_rejected() {
        let ty = FrameType::gray8(32, 32);
        let params = CodecParams::new(ty, 4, 0);
        let mut enc = Encoder::new(params);
        let p = enc.encode(&moving_frame(ty, 0), r(0, 1)).unwrap();
        let lying = Packet::new(p.pts, false, p.data.clone());
        let mut dec = Decoder::new(params);
        assert!(matches!(dec.decode(&lying), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn encoder_decoder_reconstruction_agree_when_lossy() {
        // The encoder's closed-loop reference must equal the decoder's
        // output, otherwise P-frames drift.
        let ty = FrameType::gray8(48, 48);
        let params = CodecParams::new(ty, 4, 6);
        let mut enc = Encoder::new(params);
        let mut dec = Decoder::new(params);
        let mut last = None;
        for i in 0..8 {
            let p = enc.encode(&moving_frame(ty, i), r(i as i64, 30)).unwrap();
            last = Some(dec.decode(&p).unwrap());
        }
        // Re-encode the decoder's last output: if references agree, the
        // delta against it is all-skip (tiny packet).
        let mut enc2 = Encoder::new(params);
        let p = enc2.encode(&last.unwrap(), r(100, 30)).unwrap();
        assert!(p.keyframe); // fresh encoder starts with a keyframe
    }
}
