//! Intra (keyframe) plane coding: spatial DPCM + quantization + run coding.
//!
//! Prediction is closed-loop (from *reconstructed* neighbours), so encoder
//! and decoder stay bit-identical at any quantizer and there is no spatial
//! drift.
//!
//! The kernels iterate over row slices: top-predicted rows are
//! data-parallel (every prediction reads the previous reconstructed
//! row), so their quantize + reconstruct sweep is branch-free and
//! autovectorizable, with entropy coding as a separate pass over a
//! scratch row. Left-predicted rows carry a loop dependence (each pixel
//! predicts from the one just reconstructed) and stay serial, but still
//! run over row slices instead of per-pixel accessors. The original
//! per-pixel implementation survives as the `tests` oracle.

// Panic-audit exemption: every index in these kernels derives from plane
// geometry (`w`, `h`, row slices) — never from a bitstream-controlled
// length. Wire-controlled lengths all flow through `Reader::bytes` and
// `RunDecoder`, which bounds-check, so the hot loops may stay
// branch-free.
#![allow(clippy::indexing_slicing)]

use crate::bitstream::{Reader, RunCoder, RunDecoder};
use crate::params::Preset;
use crate::CodecError;
use v2v_frame::Plane;

/// Quantizes a residual with symmetric rounding.
#[inline]
pub(crate) fn quantize(r: i32, qstep: i32) -> i32 {
    if qstep == 1 {
        r
    } else if r >= 0 {
        (r + qstep / 2) / qstep
    } else {
        -((-r + qstep / 2) / qstep)
    }
}

/// Branch-free [`quantize`] for vector sweeps (`qstep > 1` only): the
/// sign is folded in arithmetically instead of branched on.
#[inline]
pub(crate) fn quantize_bf(r: i32, qstep: i32, half: i32) -> i32 {
    let s = r >> 31;
    let a = (r ^ s) - s;
    let q = (a + half) / qstep;
    (q ^ s) - s
}

/// Per-row spatial predictor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum RowMode {
    /// Predict from the reconstructed left neighbour.
    Left,
    /// Predict from the reconstructed top neighbour.
    Top,
}

/// Chooses a predictor for row `y` by comparing SADs on the *source*
/// pixels (a deterministic heuristic; the choice is carried in the
/// bitstream so the decoder never repeats it).
fn choose_mode(plane: &Plane, y: usize) -> RowMode {
    let row = plane.row(y);
    let w = row.len();
    if w == 0 {
        return RowMode::Left;
    }
    let mut sad_left = u64::from(row[0].abs_diff(128));
    for x in 1..w {
        sad_left += u64::from(row[x].abs_diff(row[x - 1]));
    }
    let sad_top: u64 = if y > 0 {
        let prev = plane.row(y - 1);
        row.iter()
            .zip(prev)
            .map(|(a, b)| u64::from(a.abs_diff(*b)))
            .sum()
    } else {
        row.iter().map(|&v| u64::from(v.abs_diff(128))).sum()
    };
    if sad_top < sad_left {
        RowMode::Top
    } else {
        RowMode::Left
    }
}

fn pick_modes(plane: &Plane, preset: Preset, out: &mut Vec<u8>) -> Vec<RowMode> {
    let h = plane.height();
    let mut modes = vec![RowMode::Left; h];
    if preset == Preset::Medium {
        for (y, m) in modes.iter_mut().enumerate() {
            *m = choose_mode(plane, y);
        }
        // Row-mode bitmap: bit set = Top.
        let mut bitmap = vec![0u8; h.div_ceil(8)];
        for (y, m) in modes.iter().enumerate() {
            if *m == RowMode::Top {
                bitmap[y / 8] |= 1 << (y % 8);
            }
        }
        out.extend_from_slice(&bitmap);
    }
    modes
}

/// Encodes one plane as an intra payload; returns the reconstruction the
/// decoder will produce.
pub fn encode_plane(plane: &Plane, qstep: i32, preset: Preset, out: &mut Vec<u8>) -> Plane {
    let mut recon = Plane::new(plane.width(), plane.height());
    encode_plane_into(plane, qstep, preset, out, &mut recon);
    recon
}

/// [`encode_plane`] writing the reconstruction into an existing plane
/// (every sample is overwritten), so pooled buffers avoid a fresh
/// allocation per frame.
pub fn encode_plane_into(
    plane: &Plane,
    qstep: i32,
    preset: Preset,
    out: &mut Vec<u8>,
    recon: &mut Plane,
) {
    let w = plane.width();
    let h = plane.height();
    debug_assert_eq!((recon.width(), recon.height()), (w, h));
    let modes = pick_modes(plane, preset, out);
    let half = qstep / 2;
    let mut coder = RunCoder::new();
    let mut qrow = vec![0i32; w];
    for (y, &mode) in modes.iter().enumerate() {
        let src = plane.row(y);
        if mode == RowMode::Top && y > 0 {
            let (prev, rec) = recon.row_pair_mut(y);
            if qstep == 1 {
                for x in 0..w {
                    qrow[x] = i32::from(src[x]) - i32::from(prev[x]);
                    rec[x] = src[x];
                }
            } else {
                for x in 0..w {
                    let pred = i32::from(prev[x]);
                    let q = quantize_bf(i32::from(src[x]) - pred, qstep, half);
                    qrow[x] = q;
                    rec[x] = (pred + q * qstep).clamp(0, 255) as u8;
                }
            }
            for &q in &qrow {
                coder.push(out, q);
            }
        } else {
            // Serial DPCM chain: pixel x predicts from the value just
            // reconstructed at x-1 (row 0 of either mode, and every
            // left-predicted row).
            let (mut pred, rec) = if y > 0 {
                let (prev, rec) = recon.row_pair_mut(y);
                (i32::from(prev[0]), rec)
            } else {
                (128, recon.row_mut(0))
            };
            for x in 0..w {
                let q = quantize(i32::from(src[x]) - pred, qstep);
                coder.push(out, q);
                let v = (pred + q * qstep).clamp(0, 255) as u8;
                rec[x] = v;
                pred = i32::from(v);
            }
        }
    }
    coder.finish(out);
}

/// Decodes an intra payload into a plane.
pub fn decode_plane(
    reader: &mut Reader<'_>,
    width: usize,
    height: usize,
    qstep: i32,
    preset: Preset,
) -> Result<Plane, CodecError> {
    let mut recon = Plane::new(width, height);
    decode_plane_into(reader, qstep, preset, &mut recon)?;
    Ok(recon)
}

/// [`decode_plane`] writing into an existing plane of the target
/// dimensions (every sample is overwritten).
pub fn decode_plane_into(
    reader: &mut Reader<'_>,
    qstep: i32,
    preset: Preset,
    recon: &mut Plane,
) -> Result<(), CodecError> {
    let width = recon.width();
    let height = recon.height();
    let mut modes = vec![RowMode::Left; height];
    if preset == Preset::Medium {
        let bitmap = reader.bytes(height.div_ceil(8))?.to_vec();
        for (y, m) in modes.iter_mut().enumerate() {
            if bitmap[y / 8] & (1 << (y % 8)) != 0 {
                *m = RowMode::Top;
            }
        }
    }
    let mut dec = RunDecoder::new(reader, (width * height) as u64);
    let mut qrow = vec![0i32; width];
    for (y, &mode) in modes.iter().enumerate() {
        if mode == RowMode::Top && y > 0 {
            dec.next_residuals(&mut qrow)?;
            let (prev, rec) = recon.row_pair_mut(y);
            for x in 0..width {
                rec[x] = (i32::from(prev[x]) + qrow[x] * qstep).clamp(0, 255) as u8;
            }
        } else {
            let (mut pred, rec) = if y > 0 {
                let (prev, rec) = recon.row_pair_mut(y);
                (i32::from(prev[0]), rec)
            } else {
                (128, recon.row_mut(y))
            };
            for r in rec.iter_mut().take(width) {
                let q = dec.next_residual()?;
                let v = (pred + q * qstep).clamp(0, 255) as u8;
                *r = v;
                pred = i32::from(v);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The original per-pixel implementation, kept verbatim as the
    /// bit-exactness oracle for the row-sliced kernels above.
    mod scalar {
        use super::super::*;

        #[inline]
        fn predict(recon: &Plane, x: usize, y: usize, mode: RowMode) -> i32 {
            match mode {
                RowMode::Left => {
                    if x > 0 {
                        i32::from(recon.get(x - 1, y))
                    } else if y > 0 {
                        i32::from(recon.get(x, y - 1))
                    } else {
                        128
                    }
                }
                RowMode::Top => {
                    if y > 0 {
                        i32::from(recon.get(x, y - 1))
                    } else if x > 0 {
                        i32::from(recon.get(x - 1, y))
                    } else {
                        128
                    }
                }
            }
        }

        fn choose_mode(plane: &Plane, y: usize) -> RowMode {
            let w = plane.width();
            let mut sad_left = 0u64;
            let mut sad_top = 0u64;
            for x in 0..w {
                let v = i32::from(plane.get(x, y));
                let left = if x > 0 {
                    i32::from(plane.get(x - 1, y))
                } else {
                    128
                };
                let top = if y > 0 {
                    i32::from(plane.get(x, y - 1))
                } else {
                    128
                };
                sad_left += v.abs_diff(left) as u64;
                sad_top += v.abs_diff(top) as u64;
            }
            if sad_top < sad_left {
                RowMode::Top
            } else {
                RowMode::Left
            }
        }

        pub fn encode_plane(plane: &Plane, qstep: i32, preset: Preset, out: &mut Vec<u8>) -> Plane {
            let w = plane.width();
            let h = plane.height();
            let mut modes = vec![RowMode::Left; h];
            if preset == Preset::Medium {
                for (y, m) in modes.iter_mut().enumerate() {
                    *m = choose_mode(plane, y);
                }
                let mut bitmap = vec![0u8; h.div_ceil(8)];
                for (y, m) in modes.iter().enumerate() {
                    if *m == RowMode::Top {
                        bitmap[y / 8] |= 1 << (y % 8);
                    }
                }
                out.extend_from_slice(&bitmap);
            }
            let mut recon = Plane::new(w, h);
            let mut coder = RunCoder::new();
            for (y, &mode) in modes.iter().enumerate() {
                for x in 0..w {
                    let pred = predict(&recon, x, y, mode);
                    let residual = i32::from(plane.get(x, y)) - pred;
                    let q = quantize(residual, qstep);
                    coder.push(out, q);
                    let value = (pred + q * qstep).clamp(0, 255) as u8;
                    recon.put(x, y, value);
                }
            }
            coder.finish(out);
            recon
        }

        pub fn decode_plane(
            reader: &mut Reader<'_>,
            width: usize,
            height: usize,
            qstep: i32,
            preset: Preset,
        ) -> Result<Plane, CodecError> {
            let mut modes = vec![RowMode::Left; height];
            if preset == Preset::Medium {
                let bitmap = reader.bytes(height.div_ceil(8))?.to_vec();
                for (y, m) in modes.iter_mut().enumerate() {
                    if bitmap[y / 8] & (1 << (y % 8)) != 0 {
                        *m = RowMode::Top;
                    }
                }
            }
            let mut recon = Plane::new(width, height);
            let mut dec = RunDecoder::new(reader, (width * height) as u64);
            for (y, &mode) in modes.iter().enumerate() {
                for x in 0..width {
                    let pred = predict(&recon, x, y, mode);
                    let q = dec.next_residual()?;
                    let value = (pred + q * qstep).clamp(0, 255) as u8;
                    recon.put(x, y, value);
                }
            }
            Ok(recon)
        }
    }

    fn gradient_plane(w: usize, h: usize) -> Plane {
        let mut p = Plane::new(w, h);
        for y in 0..h {
            for x in 0..w {
                p.put(x, y, ((x * 3 + y * 5) % 256) as u8);
            }
        }
        p
    }

    fn round_trip(p: &Plane, qstep: i32, preset: Preset) -> (Plane, usize) {
        let mut buf = Vec::new();
        let recon = encode_plane(p, qstep, preset, &mut buf);
        let size = buf.len();
        let mut r = Reader::new(&buf);
        let dec = decode_plane(&mut r, p.width(), p.height(), qstep, preset).unwrap();
        assert_eq!(recon, dec, "encoder recon must equal decoder output");
        (dec, size)
    }

    #[test]
    fn lossless_at_qstep_one() {
        let p = gradient_plane(33, 17);
        for preset in [Preset::Ultrafast, Preset::Medium] {
            let (dec, _) = round_trip(&p, 1, preset);
            assert_eq!(dec, p);
        }
    }

    #[test]
    fn quantized_error_is_bounded() {
        let p = gradient_plane(32, 32);
        for qstep in [2, 3, 5, 9] {
            let (dec, _) = round_trip(&p, qstep, Preset::Ultrafast);
            for (a, b) in p.data().iter().zip(dec.data()) {
                assert!(
                    i32::from(*a).abs_diff(i32::from(*b)) as i32 <= qstep,
                    "error beyond qstep bound"
                );
            }
        }
    }

    #[test]
    fn smooth_content_compresses() {
        // Flat rows have zero left-residuals after the first pixel: the
        // run coder collapses them to almost nothing.
        let mut p = Plane::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                p.put(x, y, (y * 4) as u8);
            }
        }
        let (_, size) = round_trip(&p, 1, Preset::Ultrafast);
        assert!(size < 64 * 64 / 4, "flat rows should compress well: {size}");
        // A gradient still beats raw size even with per-pixel residuals.
        let mut g = Plane::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                g.put(x, y, (x * 4) as u8);
            }
        }
        // Dense nonzero residuals cost (run, value) pairs — bounded by
        // 2 bytes per sample, and quantization recovers the win.
        let (_, gsize) = round_trip(&g, 1, Preset::Ultrafast);
        assert!(
            gsize <= 2 * 64 * 64 + 16,
            "gradient blew the bound: {gsize}"
        );
        let (_, gq) = round_trip(&g, 5, Preset::Ultrafast);
        assert!(
            gq < gsize,
            "quantized gradient must shrink: {gq} vs {gsize}"
        );
    }

    #[test]
    fn medium_beats_ultrafast_on_vertical_structure() {
        // Vertical stripes: the left predictor misses on every pixel, the
        // top predictor is perfect from row 1 on. Medium should pick Top.
        let mut p = Plane::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                p.put(x, y, ((x * 16) % 256) as u8);
            }
        }
        let (_, fast) = round_trip(&p, 1, Preset::Ultrafast);
        let (_, medium) = round_trip(&p, 1, Preset::Medium);
        assert!(
            medium < fast,
            "medium {medium} should beat ultrafast {fast}"
        );
    }

    #[test]
    fn quantize_is_symmetric() {
        for q in [2, 3, 5] {
            for r in -20..=20 {
                assert_eq!(quantize(-r, q), -quantize(r, q));
            }
        }
        assert_eq!(quantize(7, 1), 7);
    }

    #[test]
    fn quantize_bf_matches_quantize() {
        for q in [2, 3, 4, 5, 8, 13] {
            for r in -600..=600 {
                assert_eq!(quantize_bf(r, q, q / 2), quantize(r, q), "r={r} q={q}");
            }
        }
    }

    #[test]
    fn truncated_payload_errors() {
        let p = gradient_plane(16, 16);
        let mut buf = Vec::new();
        encode_plane(&p, 1, Preset::Ultrafast, &mut buf);
        // Chop a byte in the middle of the stream: decoding may hit a
        // malformed varint; it must not panic.
        if buf.len() > 4 {
            let cut = &buf[..buf.len() / 2];
            let mut r = Reader::new(cut);
            let _ = decode_plane(&mut r, 16, 16, 1, Preset::Ultrafast);
        }
    }

    fn arb_plane() -> impl Strategy<Value = Plane> {
        // Dimensions and a max-size sample buffer (no flat_map needed:
        // the buffer is truncated to w*h).
        (
            1usize..48,
            1usize..48,
            proptest::collection::vec(any::<u8>(), 48 * 48),
        )
            .prop_map(|(w, h, data)| Plane::from_vec(w, h, data[..w * h].to_vec()).unwrap())
    }

    proptest! {
        /// The vectorized encoder emits the exact bytes and
        /// reconstruction of the per-pixel oracle, for every plane,
        /// quantizer, and preset.
        #[test]
        fn vectorized_encode_matches_scalar(
            p in arb_plane(),
            qstep in prop_oneof![Just(1i32), Just(2), Just(3), Just(5), Just(8), Just(13)],
            medium in any::<bool>(),
        ) {
            let preset = if medium { Preset::Medium } else { Preset::Ultrafast };
            let mut fast_buf = Vec::new();
            let fast_recon = encode_plane(&p, qstep, preset, &mut fast_buf);
            let mut ref_buf = Vec::new();
            let ref_recon = scalar::encode_plane(&p, qstep, preset, &mut ref_buf);
            prop_assert_eq!(&fast_buf, &ref_buf);
            prop_assert_eq!(fast_recon, ref_recon);

            let mut r = Reader::new(&fast_buf);
            let fast_dec = decode_plane(&mut r, p.width(), p.height(), qstep, preset).unwrap();
            let mut r = Reader::new(&ref_buf);
            let ref_dec =
                scalar::decode_plane(&mut r, p.width(), p.height(), qstep, preset).unwrap();
            prop_assert_eq!(fast_dec, ref_dec);
        }
    }
}
